"""Social-network monitoring over a StackOverflow-like interaction stream.

The paper's motivating scenario: a platform ingests user interactions
(answers, comments) as a streaming graph and keeps persistent navigational
queries registered — e.g. "notify me of users reachable through a chain of
answer interactions within the last window".

This example:

* generates a StackOverflow-like stream (three labels, dense and cyclic);
* registers three persistent queries from the real-world workload
  (Table 2) under arbitrary path semantics;
* processes the stream with latency measurement enabled;
* prints throughput, tail latency and Delta-index sizes per query —
  a miniature of Figure 4(c) and Figure 5.

Run with::

    python examples/social_network_monitoring.py
"""

from __future__ import annotations

from repro import StreamingRPQEngine, WindowSpec
from repro.datasets import StackOverflowGenerator, build_workload

NUM_EDGES = 4000
WINDOW = WindowSpec(size=60, slide=6)
MONITORED_QUERIES = ["Q1", "Q2", "Q7"]


def main() -> None:
    generator = StackOverflowGenerator(seed=3)
    stream = generator.generate(NUM_EDGES)
    workload = build_workload("stackoverflow")

    engine = StreamingRPQEngine(WINDOW, measure_latency=True)
    for name in MONITORED_QUERIES:
        engine.register(name, workload[name])

    print(f"processing {NUM_EDGES} interaction tuples " f"(|W|={WINDOW.size}, beta={WINDOW.slide}) ...\n")

    notification_counts = {name: 0 for name in MONITORED_QUERIES}

    def count_notification(query_name: str, source, target, timestamp: int) -> None:
        notification_counts[query_name] += 1

    engine.process_stream(stream, on_result=count_notification)

    print(f"{'query':<6} {'expression':<28} {'results':>8} {'notifs':>8} "
          f"{'p99 (us)':>10} {'edges/s':>10} {'index nodes':>12}")
    for name, summary in engine.summary().items():
        latency = summary.get("latency", {})
        print(
            f"{name:<6} {workload[name]:<28} {summary['distinct_results']:>8} "
            f"{notification_counts[name]:>8} "
            f"{latency.get('tail_us', 0.0):>10.1f} "
            f"{latency.get('throughput_eps', 0.0):>10.0f} "
            f"{summary['index']['nodes']:>12}"
        )

    print("\nObservations (compare with Figure 4(c) / Figure 5 of the paper):")
    print(" * recursive queries over the dense SO-like graph build large tree indexes;")
    print(" * the larger the Delta index, the lower the sustained throughput;")
    print(" * the non-recursive query (if registered) is the cheapest to maintain.")


if __name__ == "__main__":
    main()
