"""Quickstart: persistent RPQ evaluation on the paper's running example.

This script reproduces Figure 1 of the paper: a small social-network
streaming graph, the query ``Q1 : (follows mentions)+`` and a sliding
window of 15 time units.  It shows the three levels of the public API:

1. compiling a query to its minimal DFA (:func:`repro.compile_query`);
2. driving a single evaluator directly (:class:`repro.RAPQEvaluator`);
3. the multi-query engine (:class:`repro.StreamingRPQEngine`) with a
   result callback — the "real-time notification" use case from the
   paper's introduction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RAPQEvaluator, StreamingRPQEngine, WindowSpec, analyze, compile_query, sgt
from repro.datasets import QUERY_TEMPLATES, build_workload

# The streaming graph of Figure 1(a): (timestamp, source, target, label).
FIGURE1_STREAM = [
    sgt(4, "y", "u", "mentions"),
    sgt(6, "x", "z", "follows"),
    sgt(9, "u", "v", "follows"),
    sgt(11, "z", "w", "follows"),
    sgt(13, "x", "y", "follows"),
    sgt(14, "z", "u", "mentions"),
    sgt(15, "u", "x", "mentions"),
    sgt(18, "v", "y", "mentions"),
    sgt(19, "w", "u", "follows"),
]

QUERY = "(follows mentions)+"


def show_query_compilation() -> None:
    """Compile the query and print its automaton (Figure 1(c))."""
    print("== 1. Query registration ==")
    dfa = compile_query(QUERY)
    print(f"query      : {QUERY}")
    print(f"automaton  : {dfa}")
    analysis = analyze(QUERY)
    print(f"conflict-free by query alone: {analysis.conflict_free_by_query()}")
    print()


def show_single_evaluator() -> None:
    """Drive an RAPQ evaluator tuple by tuple (Figure 1 / Example 3.1)."""
    print("== 2. Incremental evaluation with Algorithm RAPQ ==")
    evaluator = RAPQEvaluator(QUERY, WindowSpec(size=15, slide=1))
    for tup in FIGURE1_STREAM:
        new_pairs = evaluator.process(tup)
        if new_pairs:
            print(f"  t={tup.timestamp:>2}  new results: {sorted(new_pairs)}")
    print(f"all results : {sorted(evaluator.answer_pairs())}")
    print(f"Delta index : {evaluator.index_size()}")
    print()


def show_engine_with_notifications() -> None:
    """Register several queries on the engine and receive notifications."""
    print("== 3. Multi-query engine with notifications ==")
    engine = StreamingRPQEngine(WindowSpec(size=15, slide=1), measure_latency=True)
    engine.register("alternating", QUERY)
    engine.register("followers", "follows+")
    engine.register("simple-path", QUERY, semantics="simple")

    def notify(query_name: str, source, target, timestamp: int) -> None:
        print(f"  [notify] {query_name}: {source} ~> {target} at t={timestamp}")

    engine.process_stream(FIGURE1_STREAM, on_result=notify)

    print("\nper-query summary:")
    for name, summary in engine.summary().items():
        print(
            f"  {name:<12} semantics={summary['semantics']:<9} "
            f"k={summary['states']} results={summary['distinct_results']}"
        )
    print()


def show_real_world_workload() -> None:
    """Print the Table 2 workload instantiated for the StackOverflow graph."""
    print("== 4. The real-world query workload (Table 2 / Table 3) ==")
    workload = build_workload("stackoverflow")
    for name in QUERY_TEMPLATES:
        expression = workload.get(name, "(not expressible on this graph)")
        print(f"  {name:<4} {expression}")
    print()


def main() -> None:
    show_query_compilation()
    show_single_evaluator()
    show_engine_with_notifications()
    show_real_world_workload()


if __name__ == "__main__":
    main()
