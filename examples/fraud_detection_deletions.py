"""Fraud-ring monitoring with explicit deletions and simple-path semantics.

An e-commerce platform models users, payment instruments and merchants as a
streaming graph.  A persistent RPQ watches for *indirect sharing chains*
("a user pays with an instrument that was used by a user who pays with an
instrument ..."), a standard collusion signal.  Two features of the paper
beyond plain insert-only evaluation matter here:

* **explicit deletions** (§3.2): when a payment is charged back or a link
  is found to be mistaken, the platform retracts the edge with a negative
  tuple, and previously reported suspicious pairs may be invalidated;
* **simple path semantics** (§4): a chain that re-visits the same user is
  usually a benign loop, so the analyst wants each account to appear at
  most once on the path.

Run with::

    python examples/fraud_detection_deletions.py
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro import ConflictBudgetExceeded, RAPQEvaluator, RSPQEvaluator, StreamingGraphTuple, WindowSpec

#: Chain of "user pays-with instrument used-by user ..." of length >= 2 hops.
FRAUD_QUERY = "(paysWith usedBy)+"
WINDOW = WindowSpec(size=200, slide=20)


def build_payment_stream(num_users: int = 300, num_instruments: int = 320,
                         num_events: int = 1500, seed: int = 5) -> List[StreamingGraphTuple]:
    """Simulate a payment stream in which a small collusion ring shares cards.

    Honest users overwhelmingly pay with their own card (card index == user
    index), so instrument sharing — the signal the query looks for — is rare
    outside the planted ring.  That keeps the graph realistic *and* keeps
    simple-path evaluation tractable.
    """
    rng = random.Random(seed)
    tuples: List[StreamingGraphTuple] = []
    ring_users = [f"user{i}" for i in range(5)]
    ring_cards = [f"card{i}" for i in range(3)]
    timestamp = 0
    for event in range(num_events):
        if event % 4 == 0:
            timestamp += 1
        roll = rng.random()
        if roll < 0.12:
            # Collusive activity: ring users rotate through shared cards.
            user = rng.choice(ring_users)
            card = rng.choice(ring_cards)
        elif roll < 0.17:
            # Occasional legitimate sharing (family member borrows a card).
            index = rng.randrange(5, num_users)
            user = f"user{index}"
            card = f"card{min(num_instruments - 1, index + 1)}"
        else:
            index = rng.randrange(5, num_users)
            user = f"user{index}"
            card = f"card{min(num_instruments - 1, index)}"
        tuples.append(StreamingGraphTuple(timestamp, user, card, "paysWith"))
        tuples.append(StreamingGraphTuple(timestamp, card, user, "usedBy"))
    return tuples


def inject_chargebacks(tuples: List[StreamingGraphTuple], ratio: float, seed: int = 9
                       ) -> List[StreamingGraphTuple]:
    """Retract a fraction of the payment edges shortly after they arrive."""
    rng = random.Random(seed)
    output: List[StreamingGraphTuple] = []
    for tup in tuples:
        output.append(tup)
        if tup.label == "paysWith" and rng.random() < ratio:
            output.append(tup.as_delete(tup.timestamp + 1))
    output.sort(key=lambda item: item.timestamp)
    return output


def main() -> None:
    stream = build_payment_stream()
    stream_with_retractions = inject_chargebacks(stream, ratio=0.05)

    print(f"query: {FRAUD_QUERY}   window: |W|={WINDOW.size}, beta={WINDOW.slide}")
    print(f"stream: {len(stream)} insertions, "
          f"{len(stream_with_retractions) - len(stream)} chargebacks (negative tuples)\n")

    arbitrary = RAPQEvaluator(FRAUD_QUERY, WINDOW)
    simple: Optional[RSPQEvaluator] = RSPQEvaluator(FRAUD_QUERY, WINDOW, max_nodes_per_tree=200_000)
    for tup in stream_with_retractions:
        arbitrary.process(tup)
        if simple is not None:
            try:
                simple.process(tup)
            except ConflictBudgetExceeded as exc:
                # RSPQ evaluation is NP-hard in general; on a graph with this
                # much instrument sharing the analyst falls back to arbitrary
                # path semantics (exactly the trade-off Table 4 documents).
                print(f"simple-path evaluation abandoned: {exc}\n")
                simple = None

    arbitrary_pairs = arbitrary.answer_pairs()
    simple_pairs = simple.answer_pairs() if simple is not None else set()
    ring_pairs = {
        pair for pair in simple_pairs
        if str(pair[0]).startswith("user") and int(str(pair[0])[4:]) < 5
        and str(pair[1]).startswith("user") and int(str(pair[1])[4:]) < 5
        and pair[0] != pair[1]
    }

    print(f"pairs connected by a sharing chain (arbitrary semantics): {len(arbitrary_pairs)}")
    print(f"pairs connected by a *simple* sharing chain             : {len(simple_pairs)}")
    print(f"  of which within the planted collusion ring            : {len(ring_pairs)}")
    print(f"invalidation events caused by chargebacks (arbitrary)   : "
          f"{len(arbitrary.results.negatives())}")
    if simple is not None:
        print(f"conflicts detected by the simple-path algorithm         : "
              f"{int(simple.stats['conflicts_detected'])}")

    print("\nSample of flagged ring pairs:")
    for pair in sorted(ring_pairs)[:8]:
        print(f"  {pair[0]} <-> {pair[1]}")

    print("\nNotes:")
    print(" * negative tuples reuse the window-expiry machinery (Algorithm Delete),")
    print("   so chargebacks only slow processing moderately (Figure 10);")
    print(" * simple-path semantics stays tractable here because instrument sharing is")
    print("   rare outside the ring; on denser sharing graphs it can blow up (Table 4).")


if __name__ == "__main__":
    main()
