"""Crash recovery: kill a durable service mid-stream, rebuild it, verify parity.

A production deployment cannot afford to lose every tuple since the last
coordinated checkpoint when a machine dies.  This example runs the same
workload twice:

* an **uninterrupted oracle** — the plain sharded service over the whole
  stream;
* a **durable run** — the same service with ``wal_dir`` set, so the
  coordinator write-ahead-logs every routed tuple (one log per shard) and
  takes periodic incremental checkpoints.  Two thirds of the way through
  we simulate ``kill -9``: the service object is abandoned with no drain,
  no stop and no final checkpoint.

:class:`repro.runtime.RecoveryManager` then folds the base checkpoint and
its delta chain, replays each shard's WAL tail in parallel, and returns a
service plus the exact stream index to resume from.  After feeding it the
rest of the stream, the example asserts the recovered run's result stream
is *bit-identical* — order, content, deletions included — to the oracle.

Run with::

    python examples/crash_recovery.py                   # threads
    python examples/crash_recovery.py multiprocessing   # real cores
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile

from repro import RuntimeConfig, StreamingQueryService, WindowSpec
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.runtime import RecoveryManager

WINDOW = WindowSpec(size=60, slide=6)
NUM_EVENTS = 6000

QUERIES = {
    "follow-chains": "follows+",
    "influence": "(follows mentions)+",
}


def build_stream(seed: int = 19):
    """A labelled interaction stream with 5% explicit deletions."""
    generator = UniformStreamGenerator(
        num_vertices=120,
        labels=("follows", "mentions", "views"),  # 'views' matches no query
        edges_per_timestamp=6,
        seed=seed,
    )
    return with_deletions(list(generator.generate(NUM_EVENTS)), 0.05, seed=seed)


def result_events(service):
    """Per-query full event streams: order, content and deletions."""
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in QUERIES
    }


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "threading"
    stream = build_stream()
    crash_at = (2 * len(stream)) // 3
    print(f"{len(stream)} tuples, crash scheduled after tuple {crash_at}\n")

    # --- the uninterrupted oracle -------------------------------------- #
    oracle = StreamingQueryService(WINDOW, RuntimeConfig(shards=2, batch_size=64, backend=backend))
    for name, expression in QUERIES.items():
        oracle.register(name, expression)
    with oracle:
        oracle.ingest(stream)
        oracle.drain()
        expected = result_events(oracle)
    print("oracle run      :", {name: len(events) for name, events in expected.items()})

    # --- the durable run, killed mid-stream ---------------------------- #
    wal_dir = tempfile.mkdtemp(prefix="repro-crash-recovery-")
    config = RuntimeConfig(
        shards=2,
        batch_size=64,
        backend=backend,
        wal_dir=wal_dir,
        checkpoint_interval=1500,  # delta checkpoint every 1500 routed tuples
    )
    victim = StreamingQueryService(WINDOW, config)
    for name, expression in QUERIES.items():
        victim.register(name, expression)
    victim.start()
    for position, tup in enumerate(stream, start=1):
        if position > crash_at:
            break
        victim.ingest_one(tup)
    if backend == "multiprocessing":
        for worker in victim.workers:  # a genuine kill -9 of every shard child
            os.kill(worker._process.pid, signal.SIGKILL)
    print(f"killed the service after {crash_at} tuples (no drain, no checkpoint)")

    # --- recovery ------------------------------------------------------- #
    result = RecoveryManager(wal_dir).recover(backend=backend)
    print(
        f"recovered       : checkpoint {result.checkpoint_id} + "
        f"{sum(result.replayed_tuples.values())} WAL tuples replayed; "
        f"resume at index {result.next_index}"
    )
    recovered = result.service
    with recovered:
        recovered.ingest(stream[result.next_index - 1 :])
        recovered.drain()
        got = result_events(recovered)

    assert got == expected, "recovered stream diverged from the uninterrupted run"
    print("recovered run   :", {name: len(events) for name, events in got.items()})
    print("\nparity: the recovered result stream is bit-identical to the oracle's")


if __name__ == "__main__":
    main()
