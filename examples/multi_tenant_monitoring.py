"""Multi-tenant monitoring: shared window, property predicates, out-of-order input.

A monitoring service evaluates many persistent path queries from different
tenants over the *same* interaction stream.  This example combines the
extension modules (the paper's future-work directions):

* :class:`repro.SharedSnapshotEngine` stores the window content once for all
  registered queries (multi-query optimization);
* :class:`repro.PropertyGraphEngine` applies per-tenant attribute predicates
  ("only count transfers above $1,000");
* :func:`repro.reorder_stream` repairs the slightly out-of-order arrival
  produced by parallel collectors.

Run with::

    python examples/multi_tenant_monitoring.py
"""

from __future__ import annotations

import random
from typing import List

from repro import (
    EdgePredicate,
    PropertyEdge,
    PropertyGraphEngine,
    SharedSnapshotEngine,
    StreamingGraphTuple,
    WindowSpec,
    reorder_stream,
)

WINDOW = WindowSpec(size=120, slide=12)
NUM_EVENTS = 3000


def build_transfer_stream(seed: int = 21) -> List[PropertyEdge]:
    """Payments between accounts, with amounts, arriving slightly out of order."""
    rng = random.Random(seed)
    accounts = [f"acct{i}" for i in range(120)]
    edges: List[PropertyEdge] = []
    for event in range(NUM_EVENTS):
        timestamp = event // 10 + rng.choice([0, 0, 0, 1, -1])  # jitter
        source, target = rng.sample(accounts, 2)
        label = "transfer" if rng.random() < 0.7 else "invoice"
        amount = round(rng.expovariate(1 / 800), 2)
        edges.append(PropertyEdge(max(0, timestamp), source, target, label, {"amount": amount}))
    return edges


def demo_shared_snapshot(ordered: List[StreamingGraphTuple]) -> None:
    print("== Shared-snapshot multi-query engine ==")
    engine = SharedSnapshotEngine(WINDOW)
    engine.register("transfer-chains", "transfer+")
    engine.register("invoice-then-transfers", "invoice transfer*")
    engine.register("two-hop", "transfer transfer")
    engine.process_stream(ordered)
    summary = engine.memory_summary()
    print(f"  window content stored once: {summary['snapshot_edges']} edges, "
          f"{summary['snapshot_vertices']} vertices")
    for name in engine.queries():
        print(f"  {name:<24} results={len(engine.answer_pairs(name)):>6} "
              f"index nodes={summary[f'index_nodes[{name}]']}")
    print()


def demo_property_predicates(edges: List[PropertyEdge]) -> None:
    print("== Per-tenant attribute predicates ==")
    engine = PropertyGraphEngine(WINDOW)
    from repro import PropertyPathQuery

    engine.register("all-chains", PropertyPathQuery("transfer+"))
    engine.register(
        "large-chains",
        PropertyPathQuery(
            "transfer+",
            predicates=[EdgePredicate("transfer", lambda p: p.get("amount", 0) >= 1000, "amount >= 1000")],
        ),
    )
    for edge in edges:
        engine.process(edge)
    for name, summary in engine.summary().items():
        print(f"  {name:<14} results={summary['results']:>6} "
              f"edges filtered={summary['edges_filtered']:>5} predicates={summary['predicates']}")
    print()


def main() -> None:
    edges = build_transfer_stream()
    print(f"generated {len(edges)} transfer events (timestamps arrive with jitter)\n")

    # Repair the slightly out-of-order arrival before feeding the evaluators.
    plain_tuples = [edge.to_tuple() for edge in edges]
    ordered = list(reorder_stream(plain_tuples, max_lateness=3))
    dropped = len(plain_tuples) - len(ordered)
    print(f"reordering buffer released {len(ordered)} tuples in order " f"({dropped} dropped as too late)\n")

    demo_shared_snapshot(ordered)

    # Property predicates need the attribute payload, so they consume the
    # property edges directly (sorted, since the jitter is small).
    demo_property_predicates(sorted(edges, key=lambda e: e.timestamp))

    print("Notes:")
    print(" * the shared snapshot removes per-query window maintenance — the paper's")
    print("   multi-query future-work direction;")
    print(" * predicates rewrite failing edges to a label outside the query alphabet,")
    print("   so the core algorithms run unchanged (property-graph future work).")


if __name__ == "__main__":
    main()
