"""Streaming RDF / knowledge-graph querying (Yago-like workload).

Knowledge bases such as Yago are updated continuously; the paper emulates a
streaming scenario by assigning timestamps to triples at a fixed rate and
sliding a window over them.  This example:

* generates a Yago-like triple stream (about a hundred predicates, of which
  only a handful are relevant to the registered queries);
* registers two navigational queries — transitive location containment and
  "events reachable from a person through participation and location" —
  under arbitrary path semantics;
* compares the incremental engine against the snapshot-recomputation
  baseline (the paper's Virtuoso emulation, §5.6) on the same stream;
* saves the generated stream to CSV and loads it back, showing the
  persistence helpers.

Run with::

    python examples/knowledge_graph_provenance.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import WindowSpec
from repro.datasets import YagoLikeGenerator
from repro.experiments import compare_runs, run_query
from repro.graph.stream import read_csv, write_csv

NUM_TRIPLES = 3000
WINDOW = WindowSpec(size=40, slide=4)

QUERIES = {
    "located-in-plus": "isLocatedIn+",
    "event-reach": "participatedIn happenedIn isLocatedIn*",
}


def main() -> None:
    generator = YagoLikeGenerator(seed=13)
    stream = generator.generate(NUM_TRIPLES)

    print(f"generated {len(stream)} triples, " f"{len({t.label for t in stream})} distinct predicates\n")

    # ------------------------------------------------------------------ #
    # Incremental evaluation vs per-tuple recomputation
    # ------------------------------------------------------------------ #
    print(f"{'query':<16} {'mode':<12} {'results':>8} {'edges/s':>10} {'p99 (us)':>10}")
    for name, expression in QUERIES.items():
        incremental = run_query(expression, stream, WINDOW,
                                semantics="arbitrary", query_name=name, dataset="yago")
        baseline = run_query(expression, stream, WINDOW,
                             semantics="baseline", query_name=name, dataset="yago")
        for mode, result in (("incremental", incremental), ("recompute", baseline)):
            print(f"{name:<16} {mode:<12} {result.distinct_results:>8} "
                  f"{result.throughput_eps:>10.0f} {result.tail_latency_us:>10.1f}")
        speedup = compare_runs(incremental, baseline)
        print(f"{'':<16} -> incremental is {speedup.get('throughput_speedup', 0):.0f}x faster "
              f"({speedup.get('tail_latency_speedup', 0):.0f}x lower tail latency)\n")

    # ------------------------------------------------------------------ #
    # Persisting and replaying a stream
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "yago_stream.csv"
        written = write_csv(path, stream)
        replayed = read_csv(path)
        print(f"persisted {written} tuples to CSV and read back {len(replayed)} "
              f"({'identical' if list(replayed) == list(stream) else 'DIFFERENT'})")

    print("\nThe throughput gap grows with the window size: the baseline re-explores")
    print("the whole window for every triple, while Algorithm RAPQ only explores the")
    print("part of the snapshot graph reached through the new edge (Figure 11).")


if __name__ == "__main__":
    main()
