"""Sharded monitoring: one service, many persistent queries, live stats.

A monitoring deployment keeps several persistent path queries standing over
one interaction stream.  Instead of driving a single-threaded engine, this
example runs them on the sharded runtime:

* a :class:`repro.StreamingQueryService` with four shard workers, each
  owning a private engine;
* the ``label_affinity`` policy co-locates queries listening to the same
  labels, so each tuple fans out to few shards;
* an ``on_result`` callback counts alerts live — workers ship result
  events back over their response queues and the coordinator invokes the
  callback while pumping them;
* between ingestion waves the service reports aggregated per-shard stats,
  and at the end the merged global result stream.

Run with::

    python examples/sharded_monitoring.py                   # threads
    python examples/sharded_monitoring.py multiprocessing   # real cores
"""

from __future__ import annotations

import itertools
import random
import sys
import threading
from collections import Counter
from typing import List

from repro import RuntimeConfig, StreamingGraphTuple, StreamingQueryService, WindowSpec, sgt

WINDOW = WindowSpec(size=90, slide=9)
NUM_EVENTS = 4000
WAVES = 4

QUERIES = {
    "follow-chains": "follows+",
    "influence": "(follows mentions)+",
    "payments": "pays pays+",
    "endorsement": "likes follows*",
}


def build_interaction_stream(seed: int = 17) -> List[StreamingGraphTuple]:
    """Social interactions plus payment edges, in timestamp order."""
    rng = random.Random(seed)
    users = [f"user{i}" for i in range(150)]
    labels = ["follows", "mentions", "likes", "pays", "views"]  # 'views' matches no query
    weights = [4, 3, 2, 2, 4]
    stream = []
    for event in range(NUM_EVENTS):
        timestamp = event // 8 + 1
        source, target = rng.sample(users, 2)
        label = rng.choices(labels, weights)[0]
        stream.append(sgt(timestamp, source, target, label))
    return stream


def main() -> None:
    stream = build_interaction_stream()
    print(f"generated {len(stream)} interaction events over " f"{stream[-1].timestamp} timestamps\n")

    alerts = Counter()
    lock = threading.Lock()

    def on_result(query: str, source, target, timestamp: int) -> None:
        with lock:
            alerts[query] += 1

    backend = sys.argv[1] if len(sys.argv) > 1 else "threading"
    config = RuntimeConfig(shards=4, batch_size=128, sharding="label_affinity", backend=backend)
    service = StreamingQueryService(WINDOW, config, on_result=on_result)
    for name, expression in QUERIES.items():
        shard = service.register(name, expression)
        print(f"registered {name!r} ({expression}) on shard {shard}")
    print()

    wave_size = len(stream) // WAVES
    with service:
        for wave in range(WAVES):
            service.ingest(itertools.islice(iter(stream), wave * wave_size, (wave + 1) * wave_size))
            service.drain()
            totals = service.summary()["totals"]
            with lock:
                live = dict(alerts)
            print(f"wave {wave + 1}/{WAVES}: ingested={totals['tuples_ingested']} "
                  f"dropped={totals['tuples_dropped_unroutable']} live alerts={live}")

        print("\nper-shard load:")
        for stats in service.shard_metrics():
            print(f"  shard {int(stats['shard'])}: queries={int(stats['queries'])} "
                  f"tuples={int(stats['tuples'])} batches={int(stats['batches'])} "
                  f"busy={stats['busy_seconds']:.3f}s")

        print("\nper-query results:")
        for name, stats in sorted(service.summary()["queries"].items()):
            print(f"  {name:<14} shard={stats['shard']} distinct={stats['distinct_results']:>6} "
                  f"index nodes={stats['index']['nodes']:>6}")

        merged = list(service.global_events())

    print(f"\nglobal result stream: {len(merged)} events, timestamp-ordered "
          f"({'yes' if [e.timestamp for e in merged] == sorted(e.timestamp for e in merged) else 'NO'})")
    print("first events:", ", ".join(str(event) for event in merged[:4]))


if __name__ == "__main__":
    main()
