"""Unit tests for the Thompson NFA construction."""

from __future__ import annotations

import pytest

from repro.regex.ast import Concat, Label, Star
from repro.regex.nfa import build_nfa


class TestAcceptance:
    @pytest.mark.parametrize(
        "expression, word, expected",
        [
            ("a", ["a"], True),
            ("a", ["b"], False),
            ("a", [], False),
            ("a b", ["a", "b"], True),
            ("a b", ["a"], False),
            ("a | b", ["a"], True),
            ("a | b", ["b"], True),
            ("a | b", ["a", "b"], False),
            ("a*", [], True),
            ("a*", ["a", "a", "a"], True),
            ("a*", ["a", "b"], False),
            ("a+", [], False),
            ("a+", ["a"], True),
            ("a+", ["a", "a"], True),
            ("a?", [], True),
            ("a?", ["a"], True),
            ("a?", ["a", "a"], False),
            ("(a b)+", ["a", "b"], True),
            ("(a b)+", ["a", "b", "a", "b"], True),
            ("(a b)+", ["a", "b", "a"], False),
            ("a b* c", ["a", "c"], True),
            ("a b* c", ["a", "b", "b", "c"], True),
            ("a b* c", ["b", "c"], False),
            ("()", [], True),
            ("()", ["a"], False),
        ],
    )
    def test_accepts(self, expression, word, expected):
        assert build_nfa(expression).accepts(word) is expected

    def test_accepts_long_repetition(self):
        nfa = build_nfa("(a | b)*")
        assert nfa.accepts(["a", "b"] * 50)

    def test_multicharacter_labels(self):
        nfa = build_nfa("follows mentions")
        assert nfa.accepts(["follows", "mentions"])
        assert not nfa.accepts(["follows", "follows"])


class TestStructure:
    def test_alphabet(self):
        nfa = build_nfa("a b* | c")
        assert nfa.alphabet == {"a", "b", "c"}

    def test_states_nonempty_and_contain_endpoints(self):
        nfa = build_nfa("a b")
        states = nfa.states
        assert nfa.start in states
        assert nfa.accept in states
        assert len(states) >= 4

    def test_accepts_from_ast(self):
        node = Star(Concat(Label("x"), Label("y")))
        nfa = build_nfa(node)
        assert nfa.accepts([])
        assert nfa.accepts(["x", "y", "x", "y"])

    def test_epsilon_closure_contains_seed(self):
        nfa = build_nfa("a*")
        closure = nfa.epsilon_closure({nfa.start})
        assert nfa.start in closure
        # for a star the accept state is epsilon-reachable from the start
        assert nfa.accept in closure

    def test_move_on_unknown_label_is_empty(self):
        nfa = build_nfa("a")
        assert nfa.move({nfa.start}, "zzz") == frozenset()
