"""Smoke tests ensuring every shipped example runs end to end.

The examples double as integration tests of the public API: each one is run
in a subprocess (so import side effects and ``__main__`` guards behave as
for a real user) and must exit cleanly and print its headline output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def run_example(name: str, timeout: int = 240) -> str:
    """Run an example script in a subprocess and return its stdout."""
    env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert completed.returncode == 0, f"{name} failed:\n{completed.stderr}"
    return completed.stdout


def test_examples_directory_contents():
    """The repository ships at least the documented example scenarios."""
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "social_network_monitoring.py", "fraud_detection_deletions.py",
            "knowledge_graph_provenance.py", "multi_tenant_monitoring.py",
            "sharded_monitoring.py", "crash_recovery.py"} <= names


def test_quickstart_example():
    output = run_example("quickstart.py")
    assert "Incremental evaluation with Algorithm RAPQ" in output
    assert "('x', 'y')" in output  # the paper's headline result at t=18
    assert "Q11" in output


def test_social_network_monitoring_example():
    output = run_example("social_network_monitoring.py")
    assert "Q1" in output and "index nodes" in output


def test_fraud_detection_example():
    output = run_example("fraud_detection_deletions.py")
    assert "collusion ring" in output
    assert "chargebacks" in output


def test_knowledge_graph_example():
    output = run_example("knowledge_graph_provenance.py")
    assert "incremental" in output and "recompute" in output
    assert "identical" in output  # CSV round trip check printed by the example


def test_multi_tenant_example():
    output = run_example("multi_tenant_monitoring.py")
    assert "Shared-snapshot multi-query engine" in output
    assert "edges filtered" in output


def test_sharded_monitoring_example():
    output = run_example("sharded_monitoring.py")
    assert "on shard" in output
    assert "live alerts" in output
    assert "per-shard load" in output
    assert "timestamp-ordered (yes)" in output


def test_crash_recovery_example():
    output = run_example("crash_recovery.py")
    assert "killed the service" in output
    assert "WAL tuples replayed" in output
    assert "bit-identical" in output
