"""Tests for Algorithm RSPQ: streaming evaluation under simple path semantics (§4)."""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, RSPQEvaluator, WindowSpec, sgt
from repro.regex.dfa import compile_query

from helpers import insert_stream, streaming_oracle


class TestSimplePathSemantics:
    def test_single_edge(self):
        evaluator = RSPQEvaluator("knows", WindowSpec(size=10))
        assert evaluator.process(sgt(1, "a", "b", "knows")) == [("a", "b")]

    def test_chain_is_a_simple_path(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [(1, "p1", "p2", "a"), (2, "p2", "p3", "a"), (3, "p3", "p4", "a")]
        ))
        expected = {(f"p{i}", f"p{j}") for i in range(1, 5) for j in range(i + 1, 5)}
        assert evaluator.answer_pairs() == expected

    def test_cycle_pairs_excluded(self):
        """x -> y -> x: the pairs (x,x)/(y,y) need a repeated vertex, so only
        the two cross pairs are answers under simple path semantics."""
        evaluator = RSPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream([(1, "x", "y", "a"), (2, "y", "x", "a")]))
        assert evaluator.answer_pairs() == {("x", "y"), ("y", "x")}

    def test_results_are_subset_of_arbitrary_semantics(self, figure1_stream, figure1_query, figure1_window):
        rapq = RAPQEvaluator(figure1_query, figure1_window)
        rspq = RSPQEvaluator(figure1_query, figure1_window)
        for tup in figure1_stream:
            rapq.process(tup)
            rspq.process(tup)
        assert rspq.answer_pairs() <= rapq.answer_pairs()

    def test_figure1_example_simple_path_answers(self, figure1_stream, figure1_query, figure1_window):
        """On the Figure 1 graph, (w, u) is only witnessed by a non-simple path,
        so simple path semantics must exclude it while keeping (x, y)."""
        evaluator = RSPQEvaluator(figure1_query, figure1_window)
        for tup in figure1_stream:
            evaluator.process(tup)
        answers = evaluator.answer_pairs()
        assert ("x", "y") in answers
        assert ("w", "u") not in answers
        assert ("w", "y") not in answers

    def test_matches_simple_path_oracle_on_figure1(self, figure1_stream, figure1_query, figure1_window):
        evaluator = RSPQEvaluator(figure1_query, figure1_window)
        for tup in figure1_stream:
            evaluator.process(tup)
        expected = streaming_oracle(
            figure1_stream, compile_query(figure1_query), figure1_window.size, simple_paths=True
        )
        assert evaluator.answer_pairs() == expected


class TestConflictHandling:
    def test_example_4_2_conflict_recovery(self, figure1_stream, figure1_query, figure1_window):
        """Example 4.2: (x, y) is only found through the simple path <x,z,u,v,y>,
        which requires detecting the conflict at vertex v and unmarking."""
        evaluator = RSPQEvaluator(figure1_query, figure1_window)
        reported_at = {}
        for tup in figure1_stream:
            for pair in evaluator.process(tup):
                reported_at.setdefault(pair, tup.timestamp)
        assert reported_at.get(("x", "y")) == 18
        assert evaluator.stats["conflicts_detected"] >= 1
        assert evaluator.stats["unmark_operations"] >= 1

    def test_no_conflicts_for_containment_property_query(self):
        """Queries with the suffix-containment property never trigger Unmark."""
        evaluator = RSPQEvaluator("a*", WindowSpec(size=100))
        stream = insert_stream([(t, f"v{t % 6}", f"v{(t * 2 + 1) % 6}", "a") for t in range(1, 30)])
        evaluator.process_stream(stream)
        assert evaluator.stats["conflicts_detected"] == 0
        assert evaluator.stats["unmark_operations"] == 0

    def test_node_occurs_once_per_tree_without_conflicts(self):
        evaluator = RSPQEvaluator("a*", WindowSpec(size=100))
        stream = insert_stream([(t, f"v{t % 5}", f"v{(t * 3 + 2) % 5}", "a") for t in range(1, 25)])
        evaluator.process_stream(stream)
        for tree in evaluator.trees.values():
            keys = [node.key for node in tree.nodes()]
            assert len(keys) == len(set(keys)), "duplicate (vertex, state) without conflicts"

    def test_diamond_with_conflict_query_matches_oracle(self):
        """A diamond graph where the short branch blocks the long one unless
        conflicts are handled: classic failure mode of naive pruning."""
        window = WindowSpec(size=100)
        stream = insert_stream(
            [
                (1, "s", "a", "x"),
                (2, "a", "m", "y"),
                (3, "s", "m", "x"),   # direct edge creating the early visit of m
                (4, "m", "a2", "x"),
                (5, "a2", "t", "y"),
            ]
        )
        query = "(x y)+"
        evaluator = RSPQEvaluator(query, window)
        evaluator.process_stream(stream)
        expected = streaming_oracle(stream, compile_query(query), window.size, simple_paths=True)
        assert evaluator.answer_pairs() == expected


class TestBudget:
    def test_budget_exceeded_raises(self):
        from repro.errors import ConflictBudgetExceeded

        evaluator = RSPQEvaluator("(a b)+", WindowSpec(size=1000), max_nodes_per_tree=10)
        # densely interconnected bipartite graph => exponential simple paths
        stream = []
        ts = 0
        for i in range(4):
            for j in range(4):
                ts += 1
                stream.append(sgt(ts, f"u{i}", f"c{j}", "a"))
                ts += 1
                stream.append(sgt(ts, f"c{j}", f"u{(i + 1) % 4}", "b"))
        with pytest.raises(ConflictBudgetExceeded):
            for tup in stream:
                evaluator.process(tup)

    def test_budget_not_triggered_for_easy_query(self):
        evaluator = RSPQEvaluator("a*", WindowSpec(size=100), max_nodes_per_tree=10_000)
        stream = insert_stream([(t, f"v{t}", f"v{t+1}", "a") for t in range(1, 40)])
        evaluator.process_stream(stream)  # must not raise
        assert len(evaluator.answer_pairs()) > 0


class TestBasicsSharedWithRAPQ:
    def test_irrelevant_labels_discarded(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "zzz"))
        assert evaluator.stats["tuples_discarded"] == 1
        assert evaluator.answer_pairs() == set()

    def test_window_separation_prevents_joins(self):
        evaluator = RSPQEvaluator("a b", WindowSpec(size=5, slide=1))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(10, "v", "w", "b"))
        assert evaluator.answer_pairs() == set()

    def test_timestamps_must_be_non_decreasing(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(5, "u", "v", "a"))
        with pytest.raises(ValueError):
            evaluator.process(sgt(4, "v", "w", "a"))

    def test_index_size_reports_trees_nodes_markings(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        summary = evaluator.index_size()
        assert summary["trees"] == 1
        assert summary["nodes"] >= 2
        assert summary["markings"] >= 1
