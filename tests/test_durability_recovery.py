"""Crash recovery: kill-and-recover parity, crash injection, reconciliation.

The acceptance property of the durability subsystem: a service killed
mid-stream — whatever was in flight, including partitioned queries,
migrations and splits — is rebuilt from base + deltas + WAL replay and
its subsequent result stream is *bit-identical* (order, content,
deletions included) to an uninterrupted run, on both backends.
"""

from __future__ import annotations

import os
import signal
import struct
import subprocess
import sys
import time

import pytest

from repro import WindowSpec
from repro.datasets.synthetic import UniformStreamGenerator
from repro.errors import RuntimeStateError, ShardWorkerError
from repro.graph.stream import with_deletions
from conftest import ALL_BACKENDS
from repro.runtime import BACKENDS, RecoveryManager, RuntimeConfig, StreamingQueryService

WINDOW = WindowSpec(size=40, slide=4)

QUERIES = {"whale": "a+", "alt": "(a b)+", "pair": "b c"}


def make_stream(count, seed=11, deletions=0.1):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c", "noise"), edges_per_timestamp=5, seed=seed
    )
    return with_deletions(list(generator.generate(count)), deletions, seed=seed)


def all_events(service, names=QUERIES):
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in names
    }


def reference_run(stream, config, partitioned=("pair",), actions=()):
    """The uninterrupted oracle: same registrations, same mid-stream actions."""
    service = StreamingQueryService(WINDOW, config)
    for name, expression in QUERIES.items():
        service.register(name, expression, partitions=2 if name in partitioned else 1)
    with service:
        for position, tup in enumerate(stream, start=1):
            service.ingest_one(tup)
            for at, action in actions:
                if at == position:
                    action(service)
        service.drain()
        return all_events(service)


def crash_run(
    stream,
    wal_dir,
    crash_at,
    backend="threading",
    interval=900,
    partitioned=("pair",),
    actions=(),
    worker_addresses=None,
    standby_addresses=None,
):
    """Run with durability, then die without any shutdown courtesy."""
    config = RuntimeConfig(
        shards=3,
        batch_size=32,
        backend=backend,
        wal_dir=str(wal_dir),
        checkpoint_interval=interval,
        worker_addresses=worker_addresses,
        standby_addresses=standby_addresses,
    )
    service = StreamingQueryService(WINDOW, config)
    for name, expression in QUERIES.items():
        service.register(name, expression, partitions=2 if name in partitioned else 1)
    service.start()
    for position, tup in enumerate(stream, start=1):
        if position > crash_at:
            break
        service.ingest_one(tup)
        for at, action in actions:
            if at == position:
                action(service)
    if backend == "multiprocessing":
        # a real kill -9 of the whole worker fleet
        for worker in service.workers:
            os.kill(worker._process.pid, signal.SIGKILL)
    elif backend == "tcp":
        # sever every coordinator connection mid-session: the remote
        # hosts see the links drop with no drain, no STOP, no courtesy
        for worker in service.workers:
            worker._conn.close_socket()
    return service  # abandoned: no drain, no stop, no final checkpoint


def resume_and_collect(result, stream):
    recovered = result.service
    with recovered:
        recovered.ingest(stream[result.next_index - 1 :])
        recovered.drain()
        return all_events(recovered)


class TestKillAndRecoverParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bit_identical_stream_with_partitioned_query_and_deletions(
        self, tmp_path, backend, tcp_worker_farm, standby_farm
    ):
        """Acceptance: kill -9 mid-stream, recover, identical results."""
        stream = make_stream(5_000)
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32))
        standbys = standby_farm(3) if backend == "tcp+standby" else None
        backend = "tcp" if backend == "tcp+standby" else backend
        addresses = tcp_worker_farm(3) if backend == "tcp" else None
        crash_run(
            stream,
            tmp_path / "wal",
            crash_at=3_211,
            backend=backend,
            worker_addresses=addresses,
            standby_addresses=standbys,
        )
        # a tcp recovery re-homes the shards onto replacement hosts — the
        # WAL replays onto a fresh fleet, not the one that died
        replacements = tcp_worker_farm(3) if backend == "tcp" else None
        result = RecoveryManager(tmp_path / "wal").recover(backend=backend, worker_addresses=replacements)
        assert result.next_index <= 3_212
        assert result.service.partitions_of("pair") == 2
        assert resume_and_collect(result, stream) == expected

    def test_crash_between_checkpoints_replays_the_wal_tail(self, tmp_path):
        stream = make_stream(3_000, seed=31)
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32))
        crash_run(stream, tmp_path / "wal", crash_at=2_500, interval=900)
        result = RecoveryManager(tmp_path / "wal").recover()
        assert sum(result.replayed_tuples.values()) > 0  # the tail was real
        assert resume_and_collect(result, stream) == expected

    def test_graceful_stop_recovers_without_replay(self, tmp_path):
        stream = make_stream(2_000, seed=37)
        config = RuntimeConfig(shards=3, batch_size=32, wal_dir=str(tmp_path / "wal"))
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream[:1_400])
        # the final stop checkpoint covers everything: nothing to replay
        result = RecoveryManager(tmp_path / "wal").recover()
        assert sum(result.replayed_tuples.values()) == 0
        assert result.next_index == 1_401
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32), partitioned=())
        recovered = result.service
        with recovered:
            recovered.ingest(stream[1_400:])
            recovered.drain()
            assert all_events(recovered) == expected

    def test_migration_and_split_survive_the_crash(self, tmp_path):
        stream = make_stream(4_000, seed=23)
        actions = (
            (900, lambda svc: svc.split("whale", 2)),
            (1_500, lambda svc: svc.migrate("alt", 0)),
        )
        expected = reference_run(
            stream, RuntimeConfig(shards=3, batch_size=32), partitioned=(), actions=actions
        )
        crash_run(
            stream, tmp_path / "wal", crash_at=2_600, interval=700, partitioned=(), actions=actions
        )
        result = RecoveryManager(tmp_path / "wal").recover()
        assert result.service.partitions_of("whale") == 2
        assert resume_and_collect(result, stream) == expected

    def test_double_crash_with_resumed_durability(self, tmp_path):
        """recover(resume=True) re-arms the WAL; a second crash recovers too."""
        stream = make_stream(4_000, seed=43)
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32))
        crash_run(stream, tmp_path / "wal", crash_at=1_700)
        first = RecoveryManager(tmp_path / "wal").recover(resume=True)
        service = first.service
        service.start()
        for position, tup in enumerate(stream, start=1):
            if position < first.next_index:
                continue
            if position > 3_100:
                break
            service.ingest_one(tup)
        # crash again, recover again
        second = RecoveryManager(tmp_path / "wal").recover()
        assert second.next_index > first.next_index
        assert resume_and_collect(second, stream) == expected


class TestProcessWorkerCrashInjection:
    def test_killed_shard_worker_mid_ingestion_recovers_with_parity(self, tmp_path):
        """kill -9 one ProcessShardWorker child; the WAL covers the gap."""
        stream = make_stream(3_000, seed=7)
        expected = reference_run(stream, RuntimeConfig(shards=2, batch_size=16), partitioned=())
        config = RuntimeConfig(
            shards=2,
            batch_size=16,
            backend="multiprocessing",
            wal_dir=str(tmp_path / "wal"),
            checkpoint_interval=600,
        )
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        service.start()
        attempted = 0
        try:
            for position, tup in enumerate(stream, start=1):
                attempted = position  # ingest_one may log the tuple, then raise
                service.ingest_one(tup)
                if position == 1_500:
                    os.kill(service.workers[0]._process.pid, signal.SIGKILL)
                if position >= 1_700:
                    break  # the coordinator may or may not have hit the dead shard yet
        except ShardWorkerError:
            pass  # backpressure surfaced the death — either way the WAL is intact
        result = RecoveryManager(tmp_path / "wal").recover(backend="multiprocessing")
        assert result.next_index <= attempted + 1
        assert resume_and_collect(result, stream) == expected


def _drop_last_record(log_dir):
    """Truncate the final record of a shard log (simulates a torn write)."""
    segment = sorted(log_dir.glob("seg-*.wal"))[-1]
    data = segment.read_bytes()
    offset, last_start = 0, None
    while offset < len(data):
        length, _ = struct.unpack_from("<II", data, offset)
        last_start = offset
        offset += 8 + length
    assert last_start is not None, "segment has no record to drop"
    segment.write_bytes(data[:last_start])


class TestCrashedMidMoveReconciliation:
    def test_crash_between_restore_and_deregister_of_a_migration(self, tmp_path):
        """The torn window where a query transiently lives on two shards."""
        stream = make_stream(2_500, seed=61)

        def migrate_somewhere(svc):
            svc.migrate("alt", (svc.shard_of("alt") + 1) % 3)

        actions = ((1_200, migrate_somewhere),)
        expected = reference_run(
            stream, RuntimeConfig(shards=3, batch_size=32), partitioned=(), actions=actions
        )
        service = crash_run(
            stream, tmp_path / "wal", crash_at=1_200, interval=0, partitioned=(), actions=actions
        )
        # The migration logged RESTORE@target then DEREGISTER@source; tear
        # off the source's DEREGISTER as if the crash hit between the two.
        move = service.migrations[-1]
        _drop_last_record(tmp_path / "wal" / "wal" / f"shard-{move['source']}")
        result = RecoveryManager(tmp_path / "wal").recover()
        # reconciliation dropped the stale source copy, kept the target's
        assert f"alt@shard{move['source']}" in result.dropped_queries
        assert result.service.shard_of("alt") == move["target"]
        assert resume_and_collect(result, stream) == expected

    def test_crash_before_the_split_commits_keeps_the_whole_query(self, tmp_path):
        """Members landed but the original was never deregistered: roll back."""
        stream = make_stream(2_500, seed=67)
        actions = ((1_000, lambda svc: svc.split("whale", 2)),)
        # the oracle never splits: recovery must roll the half-split back
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32), partitioned=())
        service = crash_run(
            stream, tmp_path / "wal", crash_at=1_000, interval=0, partitioned=(), actions=actions
        )
        split_from = service.splits[-1]["source"]
        _drop_last_record(tmp_path / "wal" / "wal" / f"shard-{split_from}")
        result = RecoveryManager(tmp_path / "wal").recover()
        assert result.service.partitions_of("whale") == 1
        assert any("whale::p" in name for name in result.dropped_queries)
        assert resume_and_collect(result, stream) == expected


class TestRobustness:
    def test_corrupt_delta_falls_back_to_longer_wal_replay(self, tmp_path):
        stream = make_stream(3_000, seed=71)
        expected = reference_run(stream, RuntimeConfig(shards=3, batch_size=32))
        crash_run(stream, tmp_path / "wal", crash_at=2_600, interval=500)
        deltas = sorted((tmp_path / "wal" / "checkpoints").glob("delta-*.json"))
        assert deltas, "the interval scheduler took no delta checkpoint"
        deltas[-1].write_bytes(deltas[-1].read_bytes()[:-40])  # tear the newest delta
        result = RecoveryManager(tmp_path / "wal").recover()
        assert result.skipped_checkpoints, "the torn delta should be reported"
        assert resume_and_collect(result, stream) == expected

    def test_fresh_service_refuses_a_populated_directory(self, tmp_path):
        stream = make_stream(500, seed=73)
        config = RuntimeConfig(shards=2, batch_size=32, wal_dir=str(tmp_path / "wal"))
        service = StreamingQueryService(WINDOW, config)
        service.register("edges", "a+")
        with service:
            service.ingest(stream)
        second = StreamingQueryService(WINDOW, config)
        second.register("edges", "a+")
        with pytest.raises(RuntimeStateError, match="already holds a log"):
            second.start()

    def test_same_service_restarts_over_its_own_directory(self, tmp_path):
        stream = make_stream(800, seed=79)
        config = RuntimeConfig(shards=2, batch_size=32, wal_dir=str(tmp_path / "wal"))
        service = StreamingQueryService(WINDOW, config)
        service.register("edges", "a+")
        with service:
            service.ingest(stream[:400])
        with service:  # stop/start cycle of one service object is fine
            service.ingest(stream[400:])
            service.drain()
            assert service.results("edges").distinct_pairs

    def test_failed_shutdown_keeps_the_directory_as_crash_evidence(self, tmp_path):
        """After an error-path stop, a retried start() must not wipe the WAL."""
        stream = make_stream(1_200, seed=83)
        config = RuntimeConfig(
            shards=2, batch_size=16, backend="multiprocessing", wal_dir=str(tmp_path / "wal")
        )
        service = StreamingQueryService(WINDOW, config)
        service.register("edges", "a+")
        service.start()
        for position, tup in enumerate(stream, start=1):
            try:
                service.ingest_one(tup)
            except ShardWorkerError:
                break
            if position == 600:
                os.kill(service.workers[service.shard_of("edges")]._process.pid, signal.SIGKILL)
        with pytest.raises(ShardWorkerError):
            service.stop()  # the final checkpoint cannot be taken
        segments_before = sorted((tmp_path / "wal" / "wal").rglob("*.wal"))
        with pytest.raises(RuntimeStateError, match="already holds a log"):
            service.start()  # refused — the directory is evidence, not garbage
        assert sorted((tmp_path / "wal" / "wal").rglob("*.wal")) == segments_before
        # and the evidence is actually recoverable
        result = RecoveryManager(tmp_path / "wal").recover()
        assert "edges" in result.service.queries()

    def test_durable_service_rejects_non_arbitrary_semantics(self, tmp_path):
        config = RuntimeConfig(shards=2, wal_dir=str(tmp_path / "wal"))
        service = StreamingQueryService(WINDOW, config)
        with pytest.raises(ValueError, match="durable service"):
            service.register("simple", "a+", semantics="simple")

    def test_recovering_a_non_durability_directory_fails_cleanly(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError, match="not a durability directory"):
            RecoveryManager(tmp_path).recover()


class TestGracefulShutdownSignal:
    def test_sigterm_drains_checkpoints_and_exits_zero(self, tmp_path):
        """`repro serve` under SIGTERM: exit 0 and a recoverable directory."""
        csv_path = tmp_path / "stream.csv"
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "--dataset", "yago",
             "--edges", "60000", "--output", str(csv_path)],
            check=True,
            env=env,
        )
        wal_dir = tmp_path / "state"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--input", str(csv_path),
             "--window", "40", "--shards", "2", "--query", "places=isLocatedIn+",
             "--wal", str(wal_dir), "--batch-size", "16"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        time.sleep(2.5)  # let it register and start ingesting
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=120)
        assert process.returncode == 0, output
        # whether the signal landed mid-stream or after the last tuple, the
        # directory must hold a complete, recoverable chain
        result = RecoveryManager(wal_dir).recover()
        assert "places" in result.service.queries()
        assert sum(result.replayed_tuples.values()) == 0  # the stop checkpointed
