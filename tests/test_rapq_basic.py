"""Tests for Algorithm RAPQ on append-only streams (§3.1).

Includes the paper's running example (Figure 1 / Example 3.1) and a set of
hand-constructed streams whose answers are verified against the batch
oracle and the union-over-windows streaming oracle.
"""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, WindowSpec, sgt
from repro.regex.dfa import compile_query

from helpers import insert_stream, streaming_oracle


class TestFigure1Example:
    def test_results_match_paper(self, figure1_stream, figure1_query, figure1_window):
        evaluator = RAPQEvaluator(figure1_query, figure1_window)
        reported_at = {}
        for tup in figure1_stream:
            for pair in evaluator.process(tup):
                reported_at.setdefault(pair, tup.timestamp)
        # The paper highlights that (x, y) is connected at t = 18.
        assert reported_at.get(("x", "y")) == 18
        # (x, u) is already connected at t = 13 through <x,y,u> wait no:
        # x -follows-> y (t=13), y -mentions-> u (t=4): both in the window.
        assert reported_at.get(("x", "u")) == 13

    def test_answer_set_matches_streaming_oracle(self, figure1_stream, figure1_query, figure1_window):
        evaluator = RAPQEvaluator(figure1_query, figure1_window)
        evaluator.process_stream(figure1_stream)
        dfa = compile_query(figure1_query)
        expected = streaming_oracle(figure1_stream, dfa, figure1_window.size)
        assert evaluator.answer_pairs() == expected

    def test_spanning_tree_shape_at_t18(self, figure1_stream, figure1_query, figure1_window):
        """Example 3.1: the tree rooted at (x, 0) contains the nodes of Figure 2(a)."""
        evaluator = RAPQEvaluator(figure1_query, figure1_window)
        for tup in figure1_stream:
            if tup.timestamp > 18:
                break
            evaluator.process(tup)
        tree = evaluator.index.get("x")
        assert tree is not None
        keys = set(tree.node_keys())
        # The product-graph nodes reachable from (x, s0) by t = 18 involve the
        # vertices x, y, z, u and v (w is only reachable via two consecutive
        # 'follows' edges, which the automaton does not allow).  We check
        # vertex membership rather than raw state numbers because
        # minimization may renumber states.
        vertices_in_tree = {vertex for vertex, _ in keys}
        assert vertices_in_tree == {"x", "y", "z", "u", "v"}
        # The paper's Figure 2(a) draws (y, accepting) with path timestamp 4
        # (through the edge y->u at t=4).  Our implementation additionally
        # propagates timestamp refreshes, so the node carries the *freshest*
        # derivation <x,z,u,v,y> whose oldest edge is (x,z) at t=6 — a valid
        # path timestamp in the window (6 > 18 - 15).
        accepting_states = evaluator.dfa.finals
        y_final_nodes = [tree.get((v, s)) for (v, s) in keys if v == "y" and s in accepting_states]
        assert y_final_nodes and y_final_nodes[0].timestamp == 6


class TestBasicCorrectness:
    def test_single_edge_query(self):
        evaluator = RAPQEvaluator("knows", WindowSpec(size=10))
        assert evaluator.process(sgt(1, "a", "b", "knows")) == [("a", "b")]
        assert evaluator.answer_pairs() == {("a", "b")}

    def test_two_hop_concatenation(self):
        evaluator = RAPQEvaluator("a b", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        new = evaluator.process(sgt(2, "v", "w", "b"))
        assert ("u", "w") in new
        assert evaluator.answer_pairs() == {("u", "w")}

    def test_out_of_order_edge_arrival_still_finds_path(self):
        """The second hop may arrive before the first (Algorithm Insert line 8)."""
        evaluator = RAPQEvaluator("a b", WindowSpec(size=10))
        evaluator.process(sgt(1, "v", "w", "b"))
        new = evaluator.process(sgt(2, "u", "v", "a"))
        assert ("u", "w") in new

    def test_kleene_star_transitive_closure(self):
        evaluator = RAPQEvaluator("knows+", WindowSpec(size=100))
        stream = insert_stream([(i, f"p{i}", f"p{i+1}", "knows") for i in range(1, 6)])
        evaluator.process_stream(stream)
        pairs = evaluator.answer_pairs()
        # every ordered pair (p_i, p_j) with i < j along the chain
        expected = {(f"p{i}", f"p{j}") for i in range(1, 7) for j in range(i + 1, 7)}
        assert pairs == expected

    def test_cycle_under_arbitrary_semantics(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=100))
        stream = insert_stream([(1, "x", "y", "a"), (2, "y", "x", "a")])
        evaluator.process_stream(stream)
        assert evaluator.answer_pairs() == {("x", "y"), ("y", "x"), ("x", "x"), ("y", "y")}

    def test_irrelevant_labels_are_discarded(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "zzz"))
        assert evaluator.stats["tuples_discarded"] == 1
        assert evaluator.stats["tuples_processed"] == 0
        assert evaluator.answer_pairs() == set()
        assert evaluator.snapshot.num_edges == 0

    def test_duplicate_edges_do_not_duplicate_results(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        again = evaluator.process(sgt(2, "u", "v", "a"))
        assert again == []
        assert len(evaluator.results) == 1

    def test_empty_word_queries_do_not_report_trivial_pairs(self):
        """a* accepts the empty word but the algorithms report only paths >= 1 edge."""
        evaluator = RAPQEvaluator("a*", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        assert ("u", "u") not in evaluator.answer_pairs()
        assert ("v", "v") not in evaluator.answer_pairs()
        assert ("u", "v") in evaluator.answer_pairs()

    def test_alternation_query(self):
        evaluator = RAPQEvaluator("a | b", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "v", "w", "b"))
        assert evaluator.answer_pairs() == {("u", "v"), ("v", "w")}

    def test_optional_prefix_query(self):
        evaluator = RAPQEvaluator("a? b", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "v", "w", "b"))
        evaluator.process(sgt(3, "x", "y", "b"))
        assert evaluator.answer_pairs() == {("u", "w"), ("v", "w"), ("x", "y")}

    def test_timestamps_must_be_non_decreasing(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(5, "u", "v", "a"))
        with pytest.raises(ValueError):
            evaluator.process(sgt(4, "v", "w", "a"))


class TestWindowSemantics:
    def test_edges_too_far_apart_do_not_join(self):
        """Two edges more than |W| apart never form a result path (Definition 9)."""
        evaluator = RAPQEvaluator("a b", WindowSpec(size=5, slide=1))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(10, "v", "w", "b"))
        assert evaluator.answer_pairs() == set()

    def test_edges_within_window_join(self):
        evaluator = RAPQEvaluator("a b", WindowSpec(size=5, slide=1))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(5, "v", "w", "b"))
        assert evaluator.answer_pairs() == {("u", "w")}

    def test_results_are_monotone_across_windows(self):
        """Implicit windows: results reported in earlier windows remain reported."""
        evaluator = RAPQEvaluator("a", WindowSpec(size=3, slide=1))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(50, "p", "q", "a"))
        assert evaluator.answer_pairs() == {("u", "v"), ("p", "q")}

    def test_path_respects_window_at_join_time(self):
        """A stale first hop cannot be joined with a fresh second hop.

        With |W| = 4 the window at time 6 is the interval (2, 6]: the edge at
        timestamp 3 is still inside, the edges at timestamps 1 and 2 are not.
        """
        evaluator = RAPQEvaluator("a b", WindowSpec(size=4, slide=1))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "p", "q", "a"))
        evaluator.process(sgt(3, "x", "y", "a"))
        evaluator.process(sgt(6, "v", "w", "b"))   # first hop at 1: outside (2, 6]
        evaluator.process(sgt(6, "q", "r", "b"))   # first hop at 2: outside (2, 6]
        evaluator.process(sgt(6, "y", "z", "b"))   # first hop at 3: inside (2, 6]
        assert evaluator.answer_pairs() == {("x", "z")}


class TestAgainstOracle:
    @pytest.mark.parametrize(
        "query",
        ["a", "a b", "a+", "(a b)+", "a b*", "a* b*", "(a | b)*", "a | b c"],
    )
    def test_dense_small_graph(self, query):
        """Exhaustively compare against the union-over-windows oracle."""
        edges = []
        timestamp = 0
        labels = ["a", "b"]
        vertices = ["v0", "v1", "v2", "v3"]
        # a deterministic dense-ish stream covering many label/vertex combos
        for i in range(24):
            timestamp += 1
            source = vertices[i % 4]
            target = vertices[(i * 2 + 1) % 4]
            label = labels[i % 2]
            edges.append((timestamp, source, target, label))
        stream = insert_stream(edges)
        window = WindowSpec(size=7, slide=2)
        evaluator = RAPQEvaluator(query, window)
        evaluator.process_stream(stream)
        expected = streaming_oracle(stream, compile_query(query), window.size)
        assert evaluator.answer_pairs() == expected
