"""Intra-query data parallelism in the runtime ("split the whale").

The acceptance property: one query split across K root partitions —
whether registered pre-split or split live mid-stream — reproduces the
single-threaded engine's result stream *bit-identically* (order and
content, deletions included) on both worker backends; and every
whale-splitting failure path fails clean with the query still live.
"""

from __future__ import annotations

import pytest

from repro import RuntimeStateError, StreamingRPQEngine, WindowSpec, sgt
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from conftest import ALL_BACKENDS
from repro.runtime import (
    BACKENDS,
    LoadAwarePolicy,
    MigrationPlan,
    RuntimeConfig,
    ShardLoad,
    SplitPlan,
    StreamingQueryService,
)

WINDOW = WindowSpec(size=40, slide=4)
QUERY = "a b* a"


def synthetic_stream(num_edges, deletion_ratio=0.05, seed=11):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c"), edges_per_timestamp=5, seed=seed
    )
    return with_deletions(list(generator.generate(num_edges)), deletion_ratio, seed=seed)


def engine_events(stream, query=QUERY, window=WINDOW):
    engine = StreamingRPQEngine(window)
    engine.register("q", query)
    engine.process_stream(stream)
    return [(e.source, e.target, e.timestamp, e.positive) for e in engine.query("q").results.events]


def service_query_events(service, name="q"):
    return [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]


class TestPartitionedParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_four_partitions_match_engine_on_10k_tuples(self, backend, make_runtime_config):
        """The headline acceptance criterion: K=4, 10k tuples, deletions."""
        stream = synthetic_stream(10_000)
        expected = engine_events(stream)
        service = StreamingQueryService(WINDOW, make_runtime_config(backend=backend, shards=4))
        service.register("q", QUERY, partitions=4)
        with service:
            service.ingest(stream)
            service.drain()
            events = service_query_events(service)
            summary = service.summary()
        assert events == expected
        assert summary["partitioned"]["q"] == {f"q::p{i}": i for i in range(4)}

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_live_split_mid_stream_matches_engine(self, backend, make_runtime_config):
        stream = synthetic_stream(10_000)
        expected = engine_events(stream)
        service = StreamingQueryService(WINDOW, make_runtime_config(backend=backend, shards=4))
        service.register("q", QUERY)
        with service:
            half = len(stream) // 2
            service.ingest(stream[:half])
            targets = service.split("q", 4)
            assert sorted(targets) == [0, 1, 2, 3]
            service.ingest(stream[half:])
            service.drain()
            events = service_query_events(service)
        assert events == expected

    def test_partitioned_query_coexists_with_regular_queries(self):
        stream = synthetic_stream(4_000)
        engine = StreamingRPQEngine(WINDOW)
        engine.register("whale", QUERY)
        engine.register("small", "c+")
        engine.process_stream(stream)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("whale", QUERY, partitions=3)
        service.register("small", "c+")
        with service:
            service.ingest(stream)
            service.drain()
            whale = service.results("whale").events
            small = service.results("small").events
        assert whale == engine.query("whale").results.events
        assert small == engine.query("small").results.events
        assert service.partitions_of("whale") == 3
        assert service.partitions_of("small") == 1

    def test_partition_member_migration_keeps_parity(self):
        stream = synthetic_stream(6_000)
        expected = engine_events(stream)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=4))
        service.register("q", QUERY, partitions=3)
        with service:
            third = len(stream) // 3
            service.ingest(stream[:third])
            # move partition 1 to the idle shard, then back
            idle = [s for s in range(4) if s not in service.summary()["partitioned"]["q"].values()][0]
            service.migrate("q", idle, partition=1)
            service.ingest(stream[third : 2 * third])
            service.migrate("q", 1, partition=1)
            service.ingest(stream[2 * third :])
            service.drain()
            events = service_query_events(service)
        assert events == expected

    def test_split_then_checkpoint_restore_continues_exactly(self):
        stream = synthetic_stream(6_000)
        expected = engine_events(stream)
        half = len(stream) // 2
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("q", QUERY, partitions=3)
        with service:
            service.ingest(stream[:half])
            service.drain()
            state = service.checkpoint()
        restored = StreamingQueryService.restore(state)
        assert restored.partitions_of("q") == 3
        with restored:
            restored.ingest(stream[half:])
            restored.drain()
            events = service_query_events(restored)
        assert events == expected

    def test_deregister_removes_every_member(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("q", QUERY, partitions=3)
        service.deregister("q")
        assert service.queries() == []
        assert all(view.queries == set() for view in service.router.shards())

    def test_deregister_with_a_failing_member_never_wedges_the_name(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("q", QUERY, partitions=3)
        broken = service.workers[service.shard_of("q", partition=1)]
        original = broken.deregister_query

        def boom(name, **kwargs):
            raise RuntimeError("worker refused the removal")

        broken.deregister_query = boom
        try:
            with pytest.raises(RuntimeError, match="refused"):
                service.deregister("q")
        finally:
            broken.deregister_query = original
        # the error surfaced, but the coordinator is fully torn down: the
        # name is gone, nothing routes to stale members, and later calls
        # (summary, checkpoint, register) never trip over missing members
        assert "q" not in service
        assert all("q" not in member for view in service.router.shards() for member in view.queries)
        with pytest.raises(KeyError):
            service.results("q")
        assert service.checkpoint()["queries"] == []
        assert service.register("other", QUERY, partitions=2) in range(3)

    def test_shard_of_resolves_partitions(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("q", QUERY, partitions=2)
        service.register("plain", "c+")
        assert service.shard_of("plain") == service.router.shard_of("plain")
        shards = {service.shard_of("q", partition=i) for i in range(2)}
        assert len(shards) == 2
        with pytest.raises(RuntimeStateError, match="partition"):
            service.shard_of("q")
        with pytest.raises(ValueError, match="not partitioned"):
            service.shard_of("plain", partition=0)
        with pytest.raises(KeyError):
            service.shard_of("ghost")


class TestSplitFailurePaths:
    def ingest_probe(self, service, name="q"):
        """The query still answers after a refused operation."""
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.ingest_one(sgt(2, "v", "w", "a"))
            service.drain()
            pairs = service.answer_pairs(name)
        assert ("u", "w") in pairs or ("u", "v") in pairs

    def test_split_on_single_shard_service_fails_clean(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=1))
        service.register("q", QUERY)
        with pytest.raises(RuntimeStateError, match="single-shard"):
            service.split("q", 2)
        assert "q" in service
        self.ingest_probe(service)

    def test_register_partitions_beyond_shards_fails_clean(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with pytest.raises(ValueError, match="cannot exceed shards"):
            service.register("q", QUERY, partitions=3)
        assert "q" not in service
        assert all(view.queries == set() for view in service.router.shards())

    def test_split_of_non_arbitrary_query_fails_clean(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a a*", semantics="simple")
        with pytest.raises(RuntimeStateError, match="simple"):
            service.split("q", 2)
        assert "q" in service
        self.ingest_probe(service)

    def test_register_partitioned_non_arbitrary_fails_clean(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with pytest.raises(ValueError, match="arbitrary"):
            service.register("q", QUERY, semantics="simple", partitions=2)
        assert "q" not in service

    def test_re_split_during_in_flight_ingestion_fails_clean(self):
        stream = synthetic_stream(2_000)
        expected = engine_events(stream)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=4))
        service.register("q", QUERY)
        with service:
            service.ingest(stream[:500])
            service.split("q", 2)
            service.ingest(stream[500:1000])
            # re-splitting mid-ingestion is refused; the query stays live
            with pytest.raises(RuntimeStateError, match="already split"):
                service.split("q", 4)
            with pytest.raises(RuntimeStateError, match="already split"):
                service.split("q", 2)
            service.ingest(stream[1000:])
            service.drain()
            events = service_query_events(service)
        assert events == expected

    def test_split_of_unknown_query_raises_key_error(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with pytest.raises(KeyError, match="nope"):
            service.split("nope", 2)

    def test_split_partition_count_out_of_range(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", QUERY)
        for bad in (1, 3):
            with pytest.raises(ValueError, match="between 2 and"):
                service.split("q", bad)
        assert "q" in service

    def test_whole_partitioned_query_cannot_migrate(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", QUERY, partitions=2)
        with pytest.raises(RuntimeStateError, match="partition="):
            service.migrate("q", 1)

    def test_reserved_name_is_refused(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with pytest.raises(ValueError, match="reserved"):
            service.register("a::p0", QUERY)

    def test_failed_member_restore_rolls_the_split_back(self):
        stream = synthetic_stream(2_000)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        service.register("q", QUERY)
        source = service.router.shard_of("q")
        with service:
            service.ingest(stream[:800])
            # sabotage one target worker's restore path
            victims = [w for w in service.workers if w.shard_id != source]
            broken = victims[-1]
            original = broken.restore_query

            def boom(name, blob, semantics="arbitrary", **kwargs):
                raise RuntimeError("target shard exploded")

            broken.restore_query = boom
            try:
                with pytest.raises(RuntimeError, match="exploded"):
                    service.split("q", 3)
            finally:
                broken.restore_query = original
            # rolled back: still unsplit, still on its shard, still answering
            assert service.partitions_of("q") == 1
            assert service.router.shard_of("q") == source
            service.ingest(stream[800:])
            service.drain()
            events = service_query_events(service)
        assert events == engine_events(stream)


class TestWhaleSplittingPolicy:
    def shard(self, shard_id, query_loads=None, pinned=0.0, splittable=()):
        return ShardLoad(
            shard_id=shard_id,
            query_loads=dict(query_loads or {}),
            pinned_load=pinned,
            splittable=set(splittable),
        )

    def test_whale_triggers_a_split_plan(self):
        shards = [
            self.shard(0, {"whale": 1000.0, "minnow": 10.0}, splittable=("whale", "minnow")),
            self.shard(1, {"small": 50.0}, splittable=("small",)),
        ]
        plans = LoadAwarePolicy().propose(shards)
        assert plans, "a dominating whale must produce a proposal"
        split = plans[-1]
        assert isinstance(split, SplitPlan)
        assert split.query == "whale"
        assert split.source == 0
        assert split.parts == 2

    def test_movable_imbalance_still_prefers_migration(self):
        shards = [
            self.shard(0, {"a": 300.0, "b": 280.0}, splittable=("a", "b")),
            self.shard(1, {"c": 50.0}, splittable=("c",)),
        ]
        plans = LoadAwarePolicy().propose(shards)
        assert plans and all(isinstance(plan, MigrationPlan) for plan in plans)

    def test_unsplittable_whale_stays_pinned(self):
        shards = [
            self.shard(0, {"whale": 1000.0}),  # not marked splittable
            self.shard(1, {"small": 50.0}, splittable=("small",)),
        ]
        assert LoadAwarePolicy().propose(shards) == []

    def test_split_whales_flag_restores_legacy_behaviour(self):
        shards = [
            self.shard(0, {"whale": 1000.0}, splittable=("whale",)),
            self.shard(1, {"small": 50.0}),
        ]
        assert LoadAwarePolicy(split_whales=False).propose(shards) == []

    def test_balanced_shards_propose_nothing(self):
        shards = [
            self.shard(0, {"a": 100.0}, splittable=("a",)),
            self.shard(1, {"b": 90.0}, splittable=("b",)),
        ]
        assert LoadAwarePolicy().propose(shards) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_load_aware_service_splits_the_whale_live(self, backend, make_runtime_config):
        """End to end: a skewed service splits its whale and stays exact."""
        stream = synthetic_stream(8_000)
        expected = engine_events(stream)
        config = make_runtime_config(
            backend=backend,
            shards=2,
            rebalance_policy="load_aware",
            rebalance_interval=1_000,
        )
        service = StreamingQueryService(WINDOW, config)
        service.register("q", QUERY)  # the only (whale) query: nothing to migrate
        with service:
            service.ingest(stream)
            service.drain()
            events = service_query_events(service)
            summary = service.summary()
        assert events == expected
        assert summary["totals"]["splits"] == 1, "load_aware should have split the whale"
        assert service.partitions_of("q") == 2

    def test_member_loads_are_split_across_partitions(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", QUERY, partitions=2)
        with service:
            for tup in synthetic_stream(200, deletion_ratio=0.0):
                service.ingest_one(tup)
            loads = service._shard_loads()
        members = {name for load in loads for name in load.query_loads}
        assert members == {"q::p0", "q::p1"}
        assert all(not load.splittable for load in loads), "members must not be re-splittable"
