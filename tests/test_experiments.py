"""Smoke tests for the experiment harness, figures and tables (micro scale).

These tests run every experiment function end-to-end on tiny inputs: they
verify the plumbing (series present, rows well-formed, expected qualitative
shape) rather than absolute performance numbers, which belong to the
benchmarks.
"""

from __future__ import annotations

import pytest

from repro import WindowSpec
from repro.datasets import build_workload
from repro.experiments import (
    compare_runs,
    dataset_config,
    dataset_stream,
    figure5,
    figure7,
    figure9,
    figure11,
    render_table1,
    render_table4,
    run_evaluator,
    run_query,
    table1_complexity_check,
    table4_simple_path,
)
from repro.experiments.figures import figure4, figure6, figure8, figure10
from repro.experiments.harness import RunResult
from repro.core.rapq import RAPQEvaluator

from helpers import insert_stream


class TestWorkloads:
    def test_dataset_config_known_datasets(self):
        for name in ("yago", "ldbc", "stackoverflow", "gmark"):
            config = dataset_config(name, scale="tiny")
            assert config.num_edges > 0
            assert config.window.size > config.window.slide

    def test_dataset_config_unknown(self):
        with pytest.raises(KeyError):
            dataset_config("nope", scale="tiny")
        with pytest.raises(KeyError):
            dataset_config("yago", scale="galactic")

    def test_dataset_stream_materializes(self):
        stream = dataset_stream("ldbc", scale="tiny")
        assert len(list(stream)) == dataset_config("ldbc", scale="tiny").num_edges


class TestHarness:
    def test_run_query_produces_metrics(self):
        stream = insert_stream([(t, f"v{t % 4}", f"v{(t + 1) % 4}", "a") for t in range(1, 60)])
        result = run_query("a+", stream, WindowSpec(size=10, slide=2), query_name="Qx", dataset="unit")
        assert result.completed
        assert result.relevant_tuples == 59
        assert result.distinct_results > 0
        assert result.throughput_eps > 0
        assert result.tail_latency_us >= result.mean_latency_us * 0.5
        assert result.automaton_states >= 1
        row = result.as_row()
        assert row[0] == "Qx" and row[1] == "unit"

    def test_run_query_baseline_and_simple(self):
        stream = insert_stream([(t, f"v{t % 3}", f"v{(t + 1) % 3}", "a") for t in range(1, 30)])
        window = WindowSpec(size=8, slide=2)
        arbitrary = run_query("a+", stream, window)
        baseline = run_query("a+", stream, window, semantics="baseline")
        simple = run_query("a+", stream, window, semantics="simple")
        assert arbitrary.distinct_results == baseline.distinct_results
        assert simple.distinct_results <= arbitrary.distinct_results
        speedups = compare_runs(arbitrary, baseline)
        assert speedups["throughput_speedup"] > 0

    def test_run_query_budget_failure_is_reported_not_raised(self):
        edges = []
        ts = 0
        for i in range(4):
            for j in range(4):
                ts += 1
                edges.append((ts, f"u{i}", f"c{j}", "a"))
                ts += 1
                edges.append((ts, f"c{j}", f"u{(i + 1) % 4}", "b"))
        stream = insert_stream(edges)
        result = run_query("(a b)+", stream, WindowSpec(size=1000), semantics="simple", max_nodes_per_tree=20)
        assert not result.completed
        assert result.error is not None

    def test_run_evaluator_irrelevant_tuples_not_timed(self):
        stream = insert_stream([(1, "a", "b", "x"), (2, "a", "b", "zzz")])
        evaluator = RAPQEvaluator("x", WindowSpec(size=10))
        result = run_evaluator(evaluator, stream)
        assert result.num_tuples == 2
        assert result.relevant_tuples == 1

    def test_expiry_time_per_run(self):
        result = RunResult("q", "d", "arbitrary", True, expiry_seconds=2.0, expiry_runs=4)
        assert result.expiry_time_per_run_us() == pytest.approx(0.5e6)
        assert RunResult("q", "d", "arbitrary", True).expiry_time_per_run_us() == 0.0


class TestFigures:
    def test_figure4_structure(self):
        figures = figure4(scale="tiny", datasets=["ldbc"])
        figure = figures["ldbc"]
        assert set(figure.series.keys()) == {"throughput_eps", "tail_latency_us"}
        assert len(figure.get("throughput_eps")) >= 5
        assert all(value > 0 for value in figure.get("throughput_eps").values())

    def test_figure5_index_size_anticorrelated_with_throughput(self):
        figure = figure5(scale="tiny")
        nodes = figure.get("num_nodes")
        throughput = figure.get("throughput_eps")
        assert set(nodes) == set(throughput)
        # the query with the largest index should not be the fastest one
        largest = max(nodes, key=nodes.get)
        fastest = max(throughput, key=throughput.get)
        assert largest != fastest

    def test_figure6_structure(self):
        figures = figure6(scale="tiny", queries=["Q1", "Q7"], window_sizes=[10, 20], slide_intervals=[2, 4])
        assert set(figures) == {
            "latency_vs_window",
            "expiry_vs_window",
            "latency_vs_slide",
            "expiry_vs_slide",
        }
        assert set(figures["latency_vs_window"].get("Q1")) == {10, 20}

    def test_figure7_dfa_growth_is_moderate(self):
        figure = figure7(num_queries=40, min_size=2, max_size=12)
        means = figure.get("mean_states")
        assert means
        # DFA size stays within a small factor of the query size (no blow-up)
        assert all(states <= 3 * size + 2 for size, states in means.items())

    def test_figure8_structure(self):
        figure = figure8(scale="tiny", num_queries=6)
        assert figure.get("mean_throughput_eps")

    def test_figure9_structure(self):
        figure = figure9(scale="tiny", num_queries=8)
        assert "throughput_eps" in figure.series or figure.series == {}

    def test_figure10_deletions(self):
        figure = figure10(scale="tiny", queries=["Q1"], deletion_ratios=(0.0, 0.05))
        assert set(figure.get("Q1")) == {0.0, 0.05}

    def test_figure11_speedup_above_one(self):
        figure = figure11(scale="tiny", queries=["Q1", "Q11"])
        for value in figure.get("relative_throughput").values():
            assert value > 1.0, "incremental evaluation must beat per-tuple recomputation"


class TestTables:
    def test_table1_rows_and_rendering(self):
        rows = table1_complexity_check(scale="tiny", queries=["Q1"], window_multipliers=(1.0, 2.0))
        assert len(rows) == 2
        text = render_table1(rows)
        assert "Q1" in text and "|W|" in text

    def test_table1_latency_grows_with_window(self):
        rows = table1_complexity_check(scale="tiny", queries=["Q2"], window_multipliers=(0.5, 2.0))
        small, large = rows[0], rows[1]
        assert large.window_size > small.window_size
        # Larger windows hold more state, so the mean latency should not shrink
        # drastically.  The tiny scale makes individual timings noisy, so the
        # tolerance is generous; the benchmark suite checks the trend at a
        # larger scale.
        assert large.mean_latency_us >= small.mean_latency_us * 0.2

    def test_table4_restricted_queries_succeed(self):
        rows = table4_simple_path(scale="tiny", datasets=["stackoverflow"], queries=["Q1", "Q4", "Q11"])
        assert all(row.successful for row in rows)
        text = render_table4(rows)
        assert "Q11" in text and "overhead" in text

    def test_table4_overhead_text(self):
        from repro.experiments.tables import Table4Row

        ok = Table4Row("d", "Q1", True, 10.0, 18.0, 1.8)
        failed = Table4Row("d", "Q2", False, 10.0, 0.0, None)
        assert ok.overhead_text == "1.8x"
        assert failed.overhead_text == "-"


class TestWorkloadQueriesRunEndToEnd:
    @pytest.mark.parametrize("dataset", ["yago", "ldbc", "stackoverflow"])
    def test_full_workload_on_tiny_streams(self, dataset):
        """Every Table 2 query runs end-to-end on its dataset without errors."""
        config = dataset_config(dataset, scale="tiny")
        stream = config.stream()
        workload = build_workload(dataset)
        for name, expression in workload.items():
            result = run_query(expression, stream, config.window, query_name=name, dataset=dataset)
            assert result.completed
            assert result.num_tuples == config.num_edges
