"""Tests for the batch (static snapshot) RPQ evaluators."""

from __future__ import annotations

import pytest

from repro.core.batch import batch_rapq, batch_rspq, product_graph_edges
from repro.graph.snapshot import SnapshotGraph
from repro.regex.dfa import compile_query


def graph_from_edges(edges):
    snapshot = SnapshotGraph()
    for index, (u, v, label) in enumerate(edges, start=1):
        snapshot.insert(u, v, label, index)
    return snapshot


class TestBatchRAPQ:
    def test_single_edge(self):
        snapshot = graph_from_edges([("a", "b", "x")])
        assert batch_rapq(snapshot, compile_query("x")) == {("a", "b")}

    def test_two_hop(self):
        snapshot = graph_from_edges([("a", "b", "x"), ("b", "c", "y")])
        assert batch_rapq(snapshot, compile_query("x y")) == {("a", "c")}

    def test_transitive_closure(self):
        snapshot = graph_from_edges([("a", "b", "x"), ("b", "c", "x"), ("c", "d", "x")])
        assert batch_rapq(snapshot, compile_query("x+")) == {
            ("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")
        }

    def test_cycle_produces_self_pairs(self):
        snapshot = graph_from_edges([("a", "b", "x"), ("b", "a", "x")])
        assert batch_rapq(snapshot, compile_query("x+")) == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_no_empty_path_results(self):
        snapshot = graph_from_edges([("a", "b", "x")])
        answers = batch_rapq(snapshot, compile_query("x*"))
        assert ("a", "a") not in answers
        assert ("b", "b") not in answers

    def test_labels_outside_query_ignored(self):
        snapshot = graph_from_edges([("a", "b", "zzz")])
        assert batch_rapq(snapshot, compile_query("x")) == set()

    def test_figure1_snapshot(self, figure1_stream):
        snapshot = SnapshotGraph()
        for tup in figure1_stream:
            if tup.timestamp > 3:  # window (3, 18] of the paper's example
                snapshot.insert_tuple(tup)
        snapshot.expire(3)
        answers = batch_rapq(snapshot, compile_query("(follows mentions)+"))
        assert ("x", "y") in answers
        assert ("x", "u") in answers


class TestBatchRSPQ:
    def test_chain(self):
        snapshot = graph_from_edges([("a", "b", "x"), ("b", "c", "x")])
        assert batch_rspq(snapshot, compile_query("x+")) == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_cycle_excludes_self_pairs(self):
        snapshot = graph_from_edges([("a", "b", "x"), ("b", "a", "x")])
        assert batch_rspq(snapshot, compile_query("x+")) == {("a", "b"), ("b", "a")}

    def test_subset_of_arbitrary(self):
        edges = [("a", "b", "x"), ("b", "c", "y"), ("c", "a", "x"), ("a", "c", "y"), ("c", "b", "x")]
        snapshot = graph_from_edges(edges)
        dfa = compile_query("(x y)+")
        assert batch_rspq(snapshot, dfa) <= batch_rapq(snapshot, dfa)

    def test_non_simple_only_pair_excluded(self):
        """s->a->b->a->t style: every accepting walk repeats the vertex a."""
        snapshot = graph_from_edges([("s", "a", "x"), ("a", "b", "y"), ("b", "a", "x"), ("a", "t", "y")])
        dfa = compile_query("x y x y")
        # arbitrary semantics finds walks such as s,a,b,a,t / s,a,b,a,b and the
        # ones starting at b that loop through a twice
        assert batch_rapq(snapshot, dfa) == {("s", "t"), ("s", "b"), ("b", "t"), ("b", "b")}
        # none of those walks is simple (each visits a twice)
        assert batch_rspq(snapshot, dfa) == set()

    def test_expansion_budget(self):
        # complete bipartite-ish graph with many simple paths
        edges = []
        for i in range(6):
            for j in range(6):
                edges.append((f"u{i}", f"v{j}", "x"))
                edges.append((f"v{j}", f"u{i}", "y"))
        snapshot = graph_from_edges(edges)
        with pytest.raises(RuntimeError):
            batch_rspq(snapshot, compile_query("(x y)+"), max_paths=500)


class TestProductGraph:
    def test_product_graph_edges(self):
        snapshot = graph_from_edges([("a", "b", "follows"), ("b", "c", "mentions")])
        dfa = compile_query("(follows mentions)+")
        edges = product_graph_edges(snapshot, dfa)
        # 'follows' has transitions from the start state and from the accepting
        # state; 'mentions' from the middle state only.
        follows_edges = [e for e in edges if e[0][0] == "a"]
        mentions_edges = [e for e in edges if e[0][0] == "b"]
        assert len(follows_edges) == 2
        assert len(mentions_edges) == 1

    def test_empty_graph(self):
        assert product_graph_edges(SnapshotGraph(), compile_query("a")) == []
