"""Shared pytest fixtures for the streaming RPQ test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the package importable even when it has not been pip-installed
# (e.g. running the suite from a fresh checkout without network access), and
# make the shared test helpers importable as a plain module.
_SRC = Path(__file__).resolve().parents[1] / "src"
_TESTS = Path(__file__).resolve().parent
for path in (_SRC, _TESTS):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from repro import WindowSpec, sgt  # noqa: E402  (import after path fix)


@pytest.fixture
def tcp_worker_farm():
    """Factory starting loopback TCP shard workers: ``farm(n) -> addresses``.

    Each call spins up ``n`` fresh :class:`TcpWorkerServer` instances on
    ``127.0.0.1:0`` (ephemeral ports — no races between parallel test
    runs) and returns their ``host:port`` strings, ready to feed into
    ``RuntimeConfig(backend="tcp", worker_addresses=...)``.  All servers
    started through the factory are stopped at test teardown.
    """
    from repro.runtime import TcpWorkerServer

    servers = []

    def farm(count):
        addresses = []
        for _ in range(count):
            server = TcpWorkerServer("127.0.0.1", 0)
            port = server.start_in_background()
            servers.append(server)
            addresses.append(f"127.0.0.1:{port}")
        return tuple(addresses)

    yield farm
    for server in servers:
        server.stop()


@pytest.fixture
def make_runtime_config(tcp_worker_farm):
    """RuntimeConfig factory that provisions loopback workers for ``tcp``.

    ``make_runtime_config(backend=..., shards=N, **kwargs)`` behaves like
    the plain constructor for in-process backends; for ``backend="tcp"``
    it first starts ``N`` loopback workers via :func:`tcp_worker_farm`
    and injects their addresses, so backend-parametrized tests can treat
    all three transports uniformly.
    """
    from repro.runtime import RuntimeConfig

    def _make(backend="threading", shards=1, **kwargs):
        if backend == "tcp" and not kwargs.get("worker_addresses"):
            kwargs["worker_addresses"] = tcp_worker_farm(shards)
        return RuntimeConfig(shards=shards, backend=backend, **kwargs)

    return _make


@pytest.fixture
def figure1_stream():
    """The streaming graph of Figure 1(a) of the paper."""
    return [
        sgt(4, "y", "u", "mentions"),
        sgt(6, "x", "z", "follows"),
        sgt(9, "u", "v", "follows"),
        sgt(11, "z", "w", "follows"),
        sgt(13, "x", "y", "follows"),
        sgt(14, "z", "u", "mentions"),
        sgt(15, "u", "x", "mentions"),
        sgt(18, "v", "y", "mentions"),
        sgt(19, "w", "u", "follows"),
    ]


@pytest.fixture
def figure1_query():
    """The query Q1 of Figure 1(c): (follows . mentions)+."""
    return "(follows mentions)+"


@pytest.fixture
def figure1_window():
    """The |W| = 15, beta = 1 window used throughout the paper's example."""
    return WindowSpec(size=15, slide=1)
