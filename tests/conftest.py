"""Shared pytest fixtures for the streaming RPQ test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the package importable even when it has not been pip-installed
# (e.g. running the suite from a fresh checkout without network access), and
# make the shared test helpers importable as a plain module.
_SRC = Path(__file__).resolve().parents[1] / "src"
_TESTS = Path(__file__).resolve().parent
for path in (_SRC, _TESTS):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from repro import WindowSpec, sgt  # noqa: E402  (import after path fix)
from repro.runtime import BACKENDS  # noqa: E402

# The worker backends every backend-parametrized suite should cover: the
# three RuntimeConfig backends plus the pseudo-backend ``tcp+standby``
# (TCP workers with a hot standby armed per shard).  ``make_runtime_config``
# translates the pseudo-backend into ``backend="tcp"`` plus
# ``standby_addresses``; it is deliberately *not* part of
# ``repro.runtime.BACKENDS``.
ALL_BACKENDS = tuple(BACKENDS) + ("tcp+standby",)


@pytest.fixture
def tcp_worker_farm():
    """Factory starting loopback TCP shard workers: ``farm(n) -> addresses``.

    Each call spins up ``n`` fresh :class:`TcpWorkerServer` instances on
    ``127.0.0.1:0`` (ephemeral ports — no races between parallel test
    runs) and returns their ``host:port`` strings, ready to feed into
    ``RuntimeConfig(backend="tcp", worker_addresses=...)``.  All servers
    started through the factory are stopped at test teardown.
    """
    from repro.runtime import TcpWorkerServer

    servers = []

    def farm(count):
        addresses = []
        for _ in range(count):
            server = TcpWorkerServer("127.0.0.1", 0)
            port = server.start_in_background()
            servers.append(server)
            addresses.append(f"127.0.0.1:{port}")
        return tuple(addresses)

    yield farm
    for server in servers:
        server.stop()


@pytest.fixture
def standby_farm(tcp_worker_farm):
    """Factory starting loopback standby workers: ``farm(n) -> addresses``.

    Identical to :func:`tcp_worker_farm` (same server class, same
    teardown) but kept as a separate fixture so a test reads as "these
    workers are the standbys" — and so suites can size the two fleets
    independently.
    """
    return tcp_worker_farm


@pytest.fixture
def make_runtime_config(tcp_worker_farm, standby_farm):
    """RuntimeConfig factory that provisions loopback workers for ``tcp``.

    ``make_runtime_config(backend=..., shards=N, **kwargs)`` behaves like
    the plain constructor for in-process backends; for ``backend="tcp"``
    it first starts ``N`` loopback workers via :func:`tcp_worker_farm`
    and injects their addresses, so backend-parametrized tests can treat
    all transports uniformly.  The pseudo-backend ``"tcp+standby"``
    (see :data:`ALL_BACKENDS`) maps to ``backend="tcp"`` with a second
    fleet of ``N`` loopback workers injected as ``standby_addresses`` —
    every shard runs hot-standby replication with no per-test
    boilerplate.
    """
    from repro.runtime import RuntimeConfig

    def _make(backend="threading", shards=1, **kwargs):
        if backend == "tcp+standby":
            backend = "tcp"
            if not kwargs.get("standby_addresses"):
                kwargs["standby_addresses"] = standby_farm(shards)
        if backend == "tcp" and not kwargs.get("worker_addresses"):
            kwargs["worker_addresses"] = tcp_worker_farm(shards)
        return RuntimeConfig(shards=shards, backend=backend, **kwargs)

    return _make


@pytest.fixture
def figure1_stream():
    """The streaming graph of Figure 1(a) of the paper."""
    return [
        sgt(4, "y", "u", "mentions"),
        sgt(6, "x", "z", "follows"),
        sgt(9, "u", "v", "follows"),
        sgt(11, "z", "w", "follows"),
        sgt(13, "x", "y", "follows"),
        sgt(14, "z", "u", "mentions"),
        sgt(15, "u", "x", "mentions"),
        sgt(18, "v", "y", "mentions"),
        sgt(19, "w", "u", "follows"),
    ]


@pytest.fixture
def figure1_query():
    """The query Q1 of Figure 1(c): (follows . mentions)+."""
    return "(follows mentions)+"


@pytest.fixture
def figure1_window():
    """The |W| = 15, beta = 1 window used throughout the paper's example."""
    return WindowSpec(size=15, slide=1)
