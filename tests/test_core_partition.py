"""Root partitioning of the RAPQ evaluator (repro.core.partition).

The contract under test: K root-partitioned evaluators fed the same tuple
stream produce, after the exact k-way merge, *bit-for-bit* the
unpartitioned evaluator's result stream — order and content, deletions
included — and an evaluator split mid-stream by partitioning its
checkpoint continues that stream seamlessly.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    RAPQEvaluator,
    RootPartition,
    checkpoint_rapq,
    make_evaluator,
    partition_checkpoint,
    restore_rapq,
    root_partition,
    vertex_sort_key,
)
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime.merger import merge_partition_events

WINDOW = WindowSpec(size=40, slide=4)
QUERY = "a b* a"


def synthetic_stream(num_edges=4000, deletion_ratio=0.05, seed=11):
    generator = UniformStreamGenerator(
        num_vertices=60, labels=("a", "b", "c"), edges_per_timestamp=5, seed=seed
    )
    return with_deletions(list(generator.generate(num_edges)), deletion_ratio, seed=seed)


def run_full(stream, query=QUERY, window=WINDOW):
    evaluator = RAPQEvaluator(query, window)
    evaluator.process_stream(stream)
    return evaluator


def merge_parts(parts):
    return merge_partition_events([(p.results.events, p.emission_keys) for p in parts])


class TestOwnershipFunctions:
    def test_root_partition_is_stable_and_in_range(self):
        for vertex in ("alice", "bob", 7, 123456, "v-42"):
            first = root_partition(vertex, 4)
            assert first == root_partition(vertex, 4)
            assert 0 <= first < 4
        assert root_partition("x", 1) == 0

    def test_root_partition_rejects_bad_count(self):
        with pytest.raises(ValueError, match="count"):
            root_partition("x", 0)

    def test_partitions_cover_all_roots_disjointly(self):
        vertices = [f"v{i}" for i in range(200)] + list(range(200))
        filters = [RootPartition(i, 3) for i in range(3)]
        for vertex in vertices:
            assert sum(f.admits(vertex) for f in filters) == 1

    def test_vertex_sort_key_totally_orders_mixed_types(self):
        vertices = ["b", 10, "a", 2, ("t", 1), "c", 1]
        ordered = sorted(vertices, key=vertex_sort_key)
        assert sorted(ordered, key=vertex_sort_key) == ordered
        # ints sort before strings, exotic types last
        assert ordered[:3] == [1, 2, 10]

    def test_root_partition_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            RootPartition(3, 3)
        with pytest.raises(ValueError, match="count"):
            RootPartition(0, 0)
        assert RootPartition.coerce((1, 4)) == RootPartition(1, 4)
        assert RootPartition.coerce(None) is None


class TestPartitionedEvaluation:
    @pytest.mark.parametrize("k", [2, 4])
    def test_union_of_partitions_is_bit_identical(self, k):
        stream = synthetic_stream()
        full = run_full(stream)
        parts = [RAPQEvaluator(QUERY, WINDOW, partition=(i, k)) for i in range(k)]
        for tup in stream:
            for part in parts:
                part.process(tup)
        merged = merge_parts(parts)
        assert merged.events == full.results.events
        assert merged.distinct_pairs == full.results.distinct_pairs
        assert merged.active_pairs == full.results.active_pairs

    def test_partitions_materialize_only_owned_trees(self):
        stream = synthetic_stream(num_edges=1500)
        parts = [RAPQEvaluator(QUERY, WINDOW, partition=(i, 3)) for i in range(3)]
        for tup in stream:
            for part in parts:
                part.process(tup)
        for index, part in enumerate(parts):
            for tree in part.index.trees():
                assert root_partition(tree.root_vertex, 3) == index

    def test_emission_seq_is_partition_independent(self):
        stream = synthetic_stream(num_edges=1000)
        full = run_full(stream)
        part = RAPQEvaluator(QUERY, WINDOW, partition=(0, 2))
        for tup in stream:
            part.process(tup)
        assert part.emission_seq == full.emission_seq
        assert len(full.emission_keys) == len(full.results.events)

    def test_partition_requires_implicit_semantics(self):
        with pytest.raises(ValueError, match="implicit"):
            RAPQEvaluator(QUERY, WINDOW, result_semantics="explicit", partition=(0, 2))

    def test_make_evaluator_rejects_partitioned_non_arbitrary(self):
        with pytest.raises(ValueError, match="arbitrary"):
            make_evaluator(QUERY, WINDOW, "simple", partition=(0, 2))
        with pytest.raises(ValueError, match="arbitrary"):
            make_evaluator(QUERY, WINDOW, "baseline", partition=(0, 2))
        evaluator = make_evaluator(QUERY, WINDOW, "arbitrary", partition=(1, 2))
        assert evaluator.partition == RootPartition(1, 2)


class TestPartitionCheckpoint:
    def split_source(self, stream, upto):
        evaluator = RAPQEvaluator(QUERY, WINDOW)
        for tup in stream[:upto]:
            evaluator.process(tup)
        return evaluator

    @pytest.mark.parametrize("k", [2, 4])
    def test_mid_stream_split_continues_bit_identically(self, k):
        stream = synthetic_stream()
        full = run_full(stream)
        source = self.split_source(stream, len(stream) // 2)
        parts = [restore_rapq(s) for s in partition_checkpoint(checkpoint_rapq(source), k)]
        for tup in stream[len(stream) // 2 :]:
            for part in parts:
                part.process(tup)
        merged = merge_parts(parts)
        assert merged.events == full.results.events

    def test_partition_sections_round_trip(self):
        stream = synthetic_stream(num_edges=1500)
        source = self.split_source(stream, 1000)
        states = partition_checkpoint(checkpoint_rapq(source), 3)
        assert [s["partition"] for s in states] == [
            {"index": 0, "count": 3},
            {"index": 1, "count": 3},
            {"index": 2, "count": 3},
        ]
        restored = restore_rapq(json.loads(json.dumps(states[1])))
        assert restored.partition == RootPartition(1, 3)
        assert restored.emission_seq == source.emission_seq
        # events and keys split consistently
        total_events = sum(len(s["results"]) for s in states)
        assert total_events == len(source.results.events)
        for state in states:
            assert len(state["emission"]["keys"]) == len(state["results"])

    def test_stats_stay_on_partition_zero(self):
        stream = synthetic_stream(num_edges=1500)
        source = self.split_source(stream, 1000)
        states = partition_checkpoint(checkpoint_rapq(source), 3)
        assert states[0]["stats"] == source.stats
        for state in states[1:]:
            assert all(value == 0 for value in state["stats"].values())

    def test_refuses_format_1(self):
        state = checkpoint_rapq(self.split_source(synthetic_stream(500), 300))
        state["format"] = 1
        with pytest.raises(ValueError, match="format-2"):
            partition_checkpoint(state, 2)

    def test_refuses_re_split(self):
        state = checkpoint_rapq(self.split_source(synthetic_stream(500), 300))
        once = partition_checkpoint(state, 2)
        with pytest.raises(ValueError, match="re-split"):
            partition_checkpoint(once[0], 2)

    def test_refuses_missing_emission_section(self):
        state = checkpoint_rapq(self.split_source(synthetic_stream(500), 300))
        del state["emission"]
        with pytest.raises(ValueError, match="emission"):
            partition_checkpoint(state, 2)

    def test_refuses_explicit_semantics(self):
        evaluator = RAPQEvaluator(QUERY, WINDOW, result_semantics="explicit")
        for tup in synthetic_stream(500)[:300]:
            evaluator.process(tup)
        with pytest.raises(ValueError, match="implicit"):
            partition_checkpoint(checkpoint_rapq(evaluator), 2)

    def test_pre_emission_checkpoints_synthesize_monotone_keys(self):
        source = self.split_source(synthetic_stream(1000), 800)
        state = checkpoint_rapq(source)
        del state["emission"]
        restored = restore_rapq(state)
        keys = restored.emission_keys
        assert list(keys) == list(range(1, len(source.results.events) + 1))
        # merging a single stream with synthesized keys preserves history
        merged = merge_partition_events([(restored.results.events, keys)])
        assert merged.events == source.results.events
