"""Incremental checkpoints: exactness, compression, cross-version chains."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import canonical_bytes, checkpoint_rapq, restore_rapq
from repro.core.rapq import RAPQEvaluator
from repro.datasets.synthetic import UniformStreamGenerator
from repro.errors import CheckpointError
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService
from repro.runtime.durability.incremental import (
    apply_evaluator_delta,
    apply_service_delta,
    encoded_size,
    evaluator_delta,
    service_delta,
)

WINDOW = WindowSpec(size=30, slide=3)


def make_stream(count, seed=13, deletions=0.1):
    generator = UniformStreamGenerator(
        num_vertices=40, labels=("a", "b", "c"), edges_per_timestamp=4, seed=seed
    )
    stream = list(generator.generate(count))
    return with_deletions(stream, deletions, seed=seed) if deletions else stream


def snapshot_state(evaluator):
    """A JSON-round-tripped checkpoint, as the durability manager sees it."""
    return json.loads(canonical_bytes(checkpoint_rapq(evaluator)))


def future_events(evaluator, tuples):
    for tup in tuples:
        evaluator.process(tup)
    return [(e.source, e.target, e.timestamp, e.positive) for e in evaluator.results.events]


class TestEvaluatorDelta:
    def test_apply_reproduces_the_current_state_exactly(self):
        stream = make_stream(1_500)
        evaluator = RAPQEvaluator("a b*", WINDOW)
        for tup in stream[:800]:
            evaluator.process(tup)
        base = snapshot_state(evaluator)
        for tup in stream[800:]:
            evaluator.process(tup)
        current = snapshot_state(evaluator)
        delta = evaluator_delta(base, current)
        assert apply_evaluator_delta(base, delta) == current

    def test_restored_chain_emits_identical_future_results(self):
        stream = make_stream(1_600, seed=29)
        evaluator = RAPQEvaluator("a+", WINDOW)
        for tup in stream[:700]:
            evaluator.process(tup)
        base = snapshot_state(evaluator)
        for tup in stream[700:1_100]:
            evaluator.process(tup)
        delta = evaluator_delta(base, snapshot_state(evaluator))
        restored = restore_rapq(apply_evaluator_delta(base, delta))
        # bit-identical continuation: same events, same order, from here on
        assert future_events(restored, stream[1_100:]) == future_events(evaluator, stream[1_100:])

    def test_steady_state_delta_is_smaller_than_a_full_checkpoint(self):
        stream = make_stream(3_000, seed=41)
        evaluator = RAPQEvaluator("a b*", WINDOW)
        for tup in stream[:2_000]:  # well past one window: steady state
            evaluator.process(tup)
        base = snapshot_state(evaluator)
        for tup in stream[2_000:2_400]:
            evaluator.process(tup)
        current = snapshot_state(evaluator)
        delta = evaluator_delta(base, current)
        assert apply_evaluator_delta(base, delta) == current
        assert encoded_size(delta) < encoded_size(current)

    def test_unchanged_state_deltas_to_almost_nothing(self):
        stream = make_stream(600, seed=7)
        evaluator = RAPQEvaluator("a+", WINDOW)
        for tup in stream:
            evaluator.process(tup)
        state = snapshot_state(evaluator)
        delta = evaluator_delta(state, state)
        assert apply_evaluator_delta(state, delta) == state
        # only the scalar header survives: no section entries at all
        assert set(delta) == {"delta_format", "query", "scalars"}

    def test_delta_refuses_cross_query_states(self):
        one = snapshot_state(RAPQEvaluator("a+", WINDOW))
        other = snapshot_state(RAPQEvaluator("b+", WINDOW))
        with pytest.raises(ValueError, match="query"):
            evaluator_delta(one, other)

    def test_apply_rejects_mismatched_base(self):
        stream = make_stream(400, seed=3)
        evaluator = RAPQEvaluator("a+", WINDOW)
        for tup in stream[:200]:
            evaluator.process(tup)
        base = snapshot_state(evaluator)
        for tup in stream[200:]:
            evaluator.process(tup)
        delta = evaluator_delta(base, snapshot_state(evaluator))
        wrong = snapshot_state(RAPQEvaluator("b c", WINDOW))
        with pytest.raises(CheckpointError, match="applied to a"):
            apply_evaluator_delta(wrong, delta)

    def test_apply_rejects_unknown_delta_format(self):
        state = snapshot_state(RAPQEvaluator("a+", WINDOW))
        with pytest.raises(CheckpointError, match="delta format"):
            apply_evaluator_delta(state, {"delta_format": 99, "query": "a+"})


class TestCrossVersionChain:
    def test_v1_checkpoint_restores_then_deltas_then_restores(self):
        """v1 -> v2 -> delta round trip: old checkpoints join new chains."""
        stream = make_stream(1_200, seed=17)
        original = RAPQEvaluator("a b*", WINDOW)
        for tup in stream[:600]:
            original.process(tup)
        v2_state = checkpoint_rapq(original)
        # Downgrade to the format-1 layout: no iteration orders, no
        # emission keys — exactly what a pre-PR-3 build wrote.
        v1_state = {
            "format": 1,
            "query": v2_state["query"],
            "window": dict(v2_state["window"]),
            "result_semantics": v2_state["result_semantics"],
            "current_time": v2_state["current_time"],
            "last_expiry_boundary": v2_state["last_expiry_boundary"],
            "stats": dict(v2_state["stats"]),
            "snapshot": v2_state["snapshot"],
            "trees": v2_state["trees"],
            "results": v2_state["results"],
        }
        revived = restore_rapq(json.loads(json.dumps(v1_state)))
        base = snapshot_state(revived)  # the revived evaluator's v2 form
        for tup in stream[600:900]:
            revived.process(tup)
        delta = evaluator_delta(base, snapshot_state(revived))
        rebuilt = restore_rapq(apply_evaluator_delta(base, delta))
        assert future_events(rebuilt, stream[900:]) == future_events(revived, stream[900:])


class TestServiceDelta:
    def build_service_state(self, stream_slice, service=None):
        if service is None:
            service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2, batch_size=32))
            service.register("edges", "a+")
            service.register("pairs", "b c", partitions=2)
            service.start()
        service.ingest(stream_slice)
        return service, json.loads(json.dumps(service.checkpoint()))

    def test_service_delta_round_trips_members_and_removals(self):
        stream = make_stream(1_500, seed=53)
        service, base = self.build_service_state(stream[:800])
        service.register("late", "c+")
        service.deregister("edges")
        _, current = self.build_service_state(stream[800:], service=service)
        service.stop()
        delta = service_delta(base, current)
        folded = apply_service_delta(base, delta)
        assert folded == current
        names = {entry["name"] for entry in folded["queries"]}
        assert names == {"pairs", "late"}
        # the partitioned query contributes one entry per member
        assert sum(1 for entry in folded["queries"] if entry["name"] == "pairs") == 2

    def test_apply_rejects_dangling_reference(self):
        stream = make_stream(900, seed=59)
        service, base = self.build_service_state(stream[:500])
        _, current = self.build_service_state(stream[500:], service=service)
        service.stop()
        delta = service_delta(base, current)
        base["queries"] = [entry for entry in base["queries"] if entry["name"] != "edges"]
        with pytest.raises(CheckpointError, match="absent from its base"):
            apply_service_delta(base, delta)
