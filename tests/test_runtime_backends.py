"""Cross-backend parity: threading vs multiprocessing vs tcp vs the engine.

The acceptance property of the worker protocol refactor: whichever
transport carries the frames, the service's output is *identical* — order
and content, deletions included — to the single-threaded
:class:`~repro.core.engine.StreamingRPQEngine`.  Plus checkpoints taken
under one backend restoring under the other, live results and metrics over
a process boundary, and the restart rules of shipped shard state.
"""

from __future__ import annotations

import pytest

from repro import RuntimeStateError, StreamingRPQEngine, WindowSpec, sgt
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from conftest import ALL_BACKENDS
from repro.runtime import BACKENDS, RuntimeConfig, StreamingQueryService

QUERIES = {
    "chains-a": "a+",
    "alternate": "(a b)+",
    "c-then-b": "c b*",
    "pair": "b c",
}

WINDOW = WindowSpec(size=40, slide=4)


def synthetic_stream(num_edges: int, deletion_ratio: float = 0.1, seed: int = 11):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c", "noise"), edges_per_timestamp=5, seed=seed
    )
    stream = list(generator.generate(num_edges))
    if deletion_ratio > 0:
        stream = with_deletions(stream, deletion_ratio, seed=seed)
    return stream


def engine_events(stream, queries=QUERIES, window=WINDOW):
    """Per-query full event streams (order and sign included) of the engine."""
    engine = StreamingRPQEngine(window)
    for name, expression in queries.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in engine.query(name).results.events]
        for name in queries
    }


def service_events(stream, config, queries=QUERIES, window=WINDOW):
    service = StreamingQueryService(window, config)
    for name, expression in queries.items():
        service.register(name, expression)
    with service:
        service.ingest(stream)
        service.drain()
        return {
            name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
            for name in queries
        }


class TestCrossBackendParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backend_matches_engine_on_10k_tuples_with_deletions(self, backend, make_runtime_config):
        """Acceptance: identical result stream — order, content, deletions."""
        stream = synthetic_stream(10_000, deletion_ratio=0.1)
        assert len(stream) > 10_000  # insertions plus injected deletions
        expected = engine_events(stream)
        config = make_runtime_config(backend=backend, shards=4, batch_size=64)
        assert service_events(stream, config) == expected
        assert any(expected.values())  # the comparison is not vacuous

    def test_backends_agree_with_each_other(self, make_runtime_config):
        stream = synthetic_stream(2_000, deletion_ratio=0.2, seed=37)
        runs = {
            backend: service_events(stream, make_runtime_config(backend=backend, shards=3, batch_size=32))
            for backend in BACKENDS
        }
        assert runs["threading"] == runs["multiprocessing"] == runs["tcp"]


class TestCrossBackendCheckpoint:
    @pytest.mark.parametrize(
        "first,second",
        [
            ("threading", "multiprocessing"),
            ("multiprocessing", "threading"),
            ("multiprocessing", "tcp"),
            ("tcp", "threading"),
        ],
    )
    def test_checkpoint_under_one_backend_restores_under_the_other(
        self, tmp_path, first, second, make_runtime_config
    ):
        stream = synthetic_stream(3_000, deletion_ratio=0.1, seed=19)
        half = len(stream) // 2
        expected = engine_events(stream)

        service = StreamingQueryService(
            WINDOW, make_runtime_config(backend=first, shards=4, batch_size=32)
        )
        for name, expression in QUERIES.items():
            service.register(name, expression)
        path = tmp_path / "service.json"
        with service:
            service.ingest(stream[:half])
            service.save_checkpoint(path)  # checkpoint() drains first

        restored = StreamingQueryService.load_checkpoint(
            path, config=make_runtime_config(backend=second, shards=2, batch_size=16)
        )
        assert restored.queries() == sorted(QUERIES)
        with restored:
            restored.ingest(stream[half:])
            restored.drain()
            resumed = {
                name: [(e.source, e.target, e.timestamp, e.positive) for e in restored.results(name).events]
                for name in QUERIES
            }
        # Checkpoints are order-exact (format 2 records every iteration
        # order the algorithms observe), so a resumed run reproduces the
        # unbroken engine run bit-for-bit: order and content, deletions
        # included — the same guarantee live migration builds on.
        for name in QUERIES:
            assert resumed[name] == expected[name], name


class TestProcessBackendLifecycle:
    def test_live_results_and_metrics_cross_the_process_boundary(self):
        stream = synthetic_stream(800, deletion_ratio=0.0, seed=3)
        seen = []
        service = StreamingQueryService(
            WINDOW,
            RuntimeConfig(shards=2, batch_size=16, backend="multiprocessing"),
            on_result=lambda name, source, target, ts: seen.append((name, source, target, ts)),
        )
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream)
            service.drain()
            expected = {(name, *triple) for name in QUERIES for triple in service.result_triples(name)}
            summary = service.summary()
        assert set(seen) == expected
        assert summary["totals"]["shard_tuples"] > 0
        assert sum(stats["batches"] for stats in summary["shards"]) > 0

    def test_arbitrary_queries_survive_stop_start_cycles(self):
        service = StreamingQueryService(
            WindowSpec(size=100, slide=1), RuntimeConfig(shards=1, batch_size=1, backend="multiprocessing")
        )
        service.register("q", "a+")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
        # state shipped back at stop; a second run resumes where it left off
        with service:
            service.ingest_one(sgt(2, "v", "w", "a"))
            service.drain()
            assert service.answer_pairs("q") == {("u", "v"), ("u", "w"), ("v", "w")}

    def test_stateful_simple_query_refuses_restart(self):
        """RSPQ state cannot be serialized, so a restart must fail loudly."""
        service = StreamingQueryService(
            WindowSpec(size=100, slide=1), RuntimeConfig(shards=1, batch_size=1, backend="multiprocessing")
        )
        service.register("q", "a+", semantics="simple")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
        # results shipped back at stop remain inspectable...
        assert service.answer_pairs("q") == {("u", "v")}
        # ...but the evaluator's tree state was lost, so restarting is an error
        with pytest.raises(RuntimeStateError, match="cannot restart"):
            service.start()

    def test_stateful_simple_query_without_results_also_refuses_restart(self):
        """Processed-but-silent evaluator state must not be dropped on restart.

        The query 'a a' sees one relevant tuple (no result yet); resuming
        from a fresh child would lose that in-window edge and silently
        diverge from the engine, so the restart must be refused.
        """
        service = StreamingQueryService(
            WindowSpec(size=100, slide=1), RuntimeConfig(shards=1, batch_size=1, backend="multiprocessing")
        )
        service.register("q", "a a", semantics="simple")
        with service:
            service.ingest_one(sgt(1, "x", "y", "a"))
            service.drain()
        with pytest.raises(RuntimeStateError, match="cannot restart"):
            service.start()

    def test_killed_worker_process_surfaces_as_shard_failure(self):
        """A worker death must raise, not wedge the coordinator on a full queue."""
        import os
        import signal

        from repro import ShardWorkerError
        from repro.runtime import create_worker

        worker = create_worker(
            0,
            WindowSpec(size=10, slide=1),
            RuntimeConfig(shards=1, queue_depth=1, batch_size=1, backend="multiprocessing"),
        )
        worker.register_query("q", "a+")
        worker.start()
        pid = worker._process.pid
        os.kill(pid, signal.SIGSTOP)  # stall the child so its bounded queue fills
        worker.submit([sgt(1, "u", "v", "a")])
        os.kill(pid, signal.SIGKILL)
        with pytest.raises(ShardWorkerError, match="died"):
            for step in range(30):
                worker.submit([sgt(2 + step, "v", "w", "a")])
        with pytest.raises(ShardWorkerError):
            worker.stop()  # the crash must not pass as a clean stop

    def test_register_before_start_ships_to_child(self):
        """Registration frames replay into the child at start (bootstrap)."""
        service = StreamingQueryService(
            WindowSpec(size=50, slide=1), RuntimeConfig(shards=2, batch_size=4, backend="multiprocessing")
        )
        service.register("arb", "a+")
        service.register("simple", "b+", semantics="simple")
        with service:
            service.ingest([sgt(1, "u", "v", "a"), sgt(2, "u", "v", "b")])
            service.drain()
            assert service.answer_pairs("arb") == {("u", "v")}
            assert service.answer_pairs("simple") == {("u", "v")}
