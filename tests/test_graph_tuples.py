"""Unit tests for streaming graph tuples."""

from __future__ import annotations

import pytest

from repro.graph.tuples import EdgeOp, sgt


class TestConstruction:
    def test_sgt_shorthand(self):
        tup = sgt(5, "a", "b", "knows")
        assert tup.timestamp == 5
        assert tup.source == "a"
        assert tup.target == "b"
        assert tup.label == "knows"
        assert tup.op is EdgeOp.INSERT

    def test_edge_property(self):
        assert sgt(1, "u", "v", "l").edge == ("u", "v")

    def test_is_insert_and_delete(self):
        insert = sgt(1, "u", "v", "l")
        delete = sgt(2, "u", "v", "l", EdgeOp.DELETE)
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert

    def test_frozen(self):
        tup = sgt(1, "u", "v", "l")
        with pytest.raises(AttributeError):
            tup.timestamp = 2  # type: ignore[misc]


class TestOrdering:
    def test_sorts_by_timestamp(self):
        tuples = [sgt(3, "a", "b", "x"), sgt(1, "c", "d", "x"), sgt(2, "e", "f", "x")]
        ordered = sorted(tuples)
        assert [t.timestamp for t in ordered] == [1, 2, 3]

    def test_equality(self):
        assert sgt(1, "a", "b", "x") == sgt(1, "a", "b", "x")
        assert sgt(1, "a", "b", "x") != sgt(1, "a", "b", "y")


class TestAsDelete:
    def test_builds_negative_tuple(self):
        original = sgt(5, "u", "v", "likes")
        negative = original.as_delete(9)
        assert negative.timestamp == 9
        assert negative.edge == original.edge
        assert negative.label == original.label
        assert negative.is_delete

    def test_original_unchanged(self):
        original = sgt(5, "u", "v", "likes")
        original.as_delete(9)
        assert original.is_insert


class TestEdgeOp:
    def test_str_values(self):
        assert str(EdgeOp.INSERT) == "+"
        assert str(EdgeOp.DELETE) == "-"

    def test_roundtrip_from_value(self):
        assert EdgeOp("+") is EdgeOp.INSERT
        assert EdgeOp("-") is EdgeOp.DELETE


class TestStr:
    def test_readable(self):
        text = str(sgt(7, "u", "v", "knows"))
        assert "7" in text and "knows" in text and "u" in text and "v" in text
