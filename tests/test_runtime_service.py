"""Tests for the sharded runtime service.

The load-bearing property: the multi-worker runtime must be *semantically
invisible* — on the same input it produces exactly the results of the
single-threaded engine, including under explicit deletions and window
expiry.  Plus lifecycle, dynamic registration, backpressure-path smoke,
metrics and coordinated checkpoint/restore.
"""

from __future__ import annotations

import threading

import pytest

from repro import RuntimeStateError, StreamingRPQEngine, WindowSpec, sgt
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.runtime import RuntimeConfig, StreamingQueryService

QUERIES = {
    "chains-a": "a+",
    "alternate": "(a b)+",
    "c-then-b": "c b*",
    "pair": "b c",
}

WINDOW = WindowSpec(size=40, slide=4)


def synthetic_stream(num_edges: int, deletion_ratio: float = 0.1, seed: int = 11):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c", "noise"), edges_per_timestamp=5, seed=seed
    )
    stream = list(generator.generate(num_edges))
    if deletion_ratio > 0:
        stream = with_deletions(stream, deletion_ratio, seed=seed)
    return stream


def reference_triples(stream, queries=QUERIES, window=WINDOW):
    engine = StreamingRPQEngine(window)
    for name, expression in queries.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: {(e.source, e.target, e.timestamp) for e in engine.query(name).results.positives()}
        for name in queries
    }


def service_triples(stream, config, queries=QUERIES, window=WINDOW):
    service = StreamingQueryService(window, config)
    for name, expression in queries.items():
        service.register(name, expression)
    with service:
        service.ingest(stream)
        service.drain()
        return {name: service.result_triples(name) for name in queries}


class TestEquivalenceWithSingleThreadedEngine:
    def test_four_shards_match_engine_on_10k_tuples_with_deletions(self):
        """Acceptance: shards=4 == single engine on a 10k synthetic stream."""
        stream = synthetic_stream(10_000, deletion_ratio=0.1)
        assert len(stream) > 10_000  # insertions plus injected deletions
        expected = reference_triples(stream)
        actual = service_triples(stream, RuntimeConfig(shards=4, batch_size=64))
        assert actual == expected
        assert any(expected.values())  # the comparison is not vacuous

    @pytest.mark.parametrize("policy", ["round_robin", "hash", "label_affinity"])
    def test_all_policies_preserve_results(self, policy):
        stream = synthetic_stream(2_000, deletion_ratio=0.15, seed=23)
        expected = reference_triples(stream)
        config = RuntimeConfig(shards=3, batch_size=17, sharding=policy)
        assert service_triples(stream, config) == expected

    def test_single_shard_matches_engine(self):
        stream = synthetic_stream(1_500, deletion_ratio=0.1, seed=5)
        expected = reference_triples(stream)
        assert service_triples(stream, RuntimeConfig(shards=1, batch_size=8)) == expected

    def test_tiny_batches_force_backpressure(self):
        """batch_size=1 and queue_depth=1 exercise the blocking-queue path."""
        stream = synthetic_stream(600, deletion_ratio=0.2, seed=9)
        expected = reference_triples(stream)
        config = RuntimeConfig(shards=2, batch_size=1, queue_depth=1)
        assert service_triples(stream, config) == expected

    def test_negative_events_preserved(self):
        stream = synthetic_stream(2_000, deletion_ratio=0.3, seed=31)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=4))
        engine = StreamingRPQEngine(WINDOW)
        for name, expression in QUERIES.items():
            service.register(name, expression)
            engine.register(name, expression)
        engine.process_stream(stream)
        with service:
            service.ingest(stream)
            service.drain()
            for name in QUERIES:
                expected = [
                    (e.source, e.target, e.timestamp, e.positive)
                    for e in engine.query(name).results.events
                ]
                actual = [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
                assert actual == expected, name


class TestLifecycle:
    def test_ingest_requires_running_service(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a+")
        with pytest.raises(RuntimeStateError):
            service.ingest_one(sgt(1, "x", "y", "a"))

    def test_double_start_rejected(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with service:
            with pytest.raises(RuntimeStateError):
                service.start()
        assert not service.running

    def test_stop_is_idempotent(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.start()
        service.stop()
        service.stop()
        assert not service.running

    def test_register_while_running_sees_later_tuples_only(self):
        # One shard so both queries are co-located, and batch_size > 1 so
        # the first tuple is still *buffered* when the late query registers:
        # registration must flush it to the shard first, or the new query
        # would see a pre-registration tuple.
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=1, batch_size=8))
        service.register("early", "a+")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.register("late", "a+")
            service.ingest_one(sgt(2, "v", "w", "a"))
            service.drain()
            assert service.answer_pairs("early") == {("u", "v"), ("u", "w"), ("v", "w")}
            # the late query never saw the first tuple
            assert service.answer_pairs("late") == {("v", "w")}

    def test_deregister_while_running(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2, batch_size=1))
        service.register("gone", "a+")
        service.register("kept", "a+")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.deregister("gone")
            assert "gone" not in service
            service.ingest_one(sgt(2, "v", "w", "a"))
            service.drain()
            assert service.answer_pairs("kept") == {("u", "v"), ("u", "w"), ("v", "w")}
        assert service.queries() == ["kept"]

    def test_duplicate_registration_rejected(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a+")
        with pytest.raises(ValueError):
            service.register("q", "b+")


class TestResultsAndMetrics:
    def test_global_events_are_timestamp_ordered_and_complete(self):
        stream = synthetic_stream(2_000, deletion_ratio=0.1, seed=17)
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3))
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream)
            service.drain()
            merged = list(service.global_events())
            per_query = {name: len(service.results(name).events) for name in QUERIES}
        stamps = [tagged.timestamp for tagged in merged]
        assert stamps == sorted(stamps)
        assert len(merged) == sum(per_query.values())
        assert {tagged.query for tagged in merged} <= set(QUERIES)

    def test_on_result_callback_fires_for_every_positive(self):
        stream = synthetic_stream(1_000, deletion_ratio=0.0, seed=3)
        lock = threading.Lock()
        seen = []

        def on_result(name, source, target, timestamp):
            with lock:
                seen.append((name, source, target, timestamp))

        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2), on_result=on_result)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream)
            service.drain()
            expected = {(name, *triple) for name in QUERIES for triple in service.result_triples(name)}
        assert set(seen) == expected

    def test_summary_aggregates_shards_and_queries(self):
        stream = synthetic_stream(1_000, deletion_ratio=0.1, seed=7)
        config = RuntimeConfig(shards=3, sharding="round_robin")
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream)
            service.drain()
            summary = service.summary()
        assert summary["config"]["shards"] == 3
        assert summary["totals"]["tuples_ingested"] == len(stream)
        assert len(summary["shards"]) == 3
        assert set(summary["queries"]) == set(QUERIES)
        # "noise"-labelled tuples are relevant to no query and dropped at the router
        assert summary["totals"]["tuples_dropped_unroutable"] > 0
        for stats in summary["shards"]:
            assert stats["tuples"] >= 0

    def test_worker_failure_surfaces_at_drain(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=1, batch_size=1))
        service.register("q", "a+")
        from repro import ShardWorkerError

        with pytest.raises(ShardWorkerError):
            with service:
                # An out-of-order batch makes the engine raise on the worker;
                # the failure must surface at the next coordination point.
                service.ingest_one(sgt(5, "x", "y", "a"))
                service.ingest_one(sgt(1, "y", "z", "a"))
                service.drain()
        # the failure must not leak running workers or a running service
        assert not service.running
        assert all(not worker.running for worker in service.workers)

    def test_stop_shuts_workers_down_even_when_drain_fails(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2, batch_size=1))
        service.register("q", "a+")
        service.start()
        service.ingest_one(sgt(5, "x", "y", "a"))
        service.ingest_one(sgt(1, "y", "z", "a"))  # poisons the owning shard
        from repro import ShardWorkerError

        with pytest.raises(ShardWorkerError):
            service.stop()
        assert not service.running
        assert all(not worker.running for worker in service.workers)

    def test_poisoned_shard_stays_poisoned(self):
        """Every interaction after a batch failure re-raises (sticky failure)."""
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=1, batch_size=1))
        service.register("q", "a+")
        from repro import ShardWorkerError

        with pytest.raises(ShardWorkerError):
            with service:
                service.ingest_one(sgt(5, "x", "y", "a"))
                service.ingest_one(sgt(1, "y", "z", "a"))
                service.drain()
        with pytest.raises(ShardWorkerError):
            service.results("q")
        with pytest.raises(ShardWorkerError):
            service.workers[0].start()


class TestCheckpointRestore:
    def test_round_trip_resumes_identically(self, tmp_path):
        """Checkpoint mid-stream, restore, finish: results match an unbroken run."""
        stream = synthetic_stream(4_000, deletion_ratio=0.1, seed=19)
        half = len(stream) // 2
        config = RuntimeConfig(shards=4, batch_size=32)

        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        path = tmp_path / "service.json"
        with service:
            service.ingest(stream[:half])
            service.save_checkpoint(path)  # checkpoint() drains first
            service.ingest(stream[half:])
            service.drain()
            unbroken = {name: service.result_triples(name) for name in QUERIES}

        restored = StreamingQueryService.load_checkpoint(path)
        assert restored.queries() == sorted(QUERIES)
        assert restored.config == config
        with restored:
            restored.ingest(stream[half:])
            restored.drain()
            resumed = {name: restored.result_triples(name) for name in QUERIES}
        assert resumed == unbroken

    def test_restore_onto_different_shard_count(self, tmp_path):
        stream = synthetic_stream(2_000, deletion_ratio=0.1, seed=29)
        half = len(stream) // 2
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=4))
        for name, expression in QUERIES.items():
            service.register(name, expression)
        path = tmp_path / "service.json"
        with service:
            service.ingest(stream[:half])
            service.save_checkpoint(path)
            service.ingest(stream[half:])
            service.drain()
            unbroken = {name: service.result_triples(name) for name in QUERIES}

        narrow = StreamingQueryService.load_checkpoint(path, config=RuntimeConfig(shards=2, batch_size=16))
        with narrow:
            narrow.ingest(stream[half:])
            narrow.drain()
            assert {name: narrow.result_triples(name) for name in QUERIES} == unbroken

    def test_checkpoint_rejects_non_arbitrary_semantics(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("simple", "a+", semantics="simple")
        with pytest.raises(ValueError):
            service.checkpoint()

    def test_restore_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            StreamingQueryService.restore({"format": 999})
