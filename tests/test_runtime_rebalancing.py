"""Live query migration between shards and load-aware rebalancing.

The acceptance property of the migration mechanism: a run with live
migrations mid-stream produces *exactly* the result-event sequence of a
run that never migrated — order and content, deletions included — on both
worker backends.  On top of that, the failure paths (dead target, unknown
query, unshippable semantics, reentrant route changes) and the policy
layer (`manual` / `load_aware`) are covered here.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import (
    ConfigError,
    RuntimeStateError,
    ShardWorkerError,
    StreamingRPQEngine,
    WindowSpec,
    sgt,
)
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.regex.analysis import analyze
from repro.runtime import (
    BACKENDS,
    LoadAwarePolicy,
    ManualPolicy,
    RuntimeConfig,
    ShardLoad,
    StreamingQueryService,
    make_rebalance_policy,
)
from repro.runtime.merger import merge_result_events

QUERIES = {
    "chains-a": "a+",
    "alternate": "(a b)+",
    "c-then-b": "c b*",
    "pair": "b c",
}

WINDOW = WindowSpec(size=40, slide=4)


def synthetic_stream(num_edges: int, deletion_ratio: float = 0.1, seed: int = 11):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c", "noise"), edges_per_timestamp=5, seed=seed
    )
    stream = list(generator.generate(num_edges))
    if deletion_ratio > 0:
        stream = with_deletions(stream, deletion_ratio, seed=seed)
    return stream


def engine_events(stream, queries=QUERIES, window=WINDOW):
    """Per-query full event streams (order and sign included) of the engine."""
    engine = StreamingRPQEngine(window)
    for name, expression in queries.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in engine.query(name).results.events]
        for name in queries
    }


def full_events(service, queries=QUERIES):
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in queries
    }


class TestMigrationParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_live_migrations_bit_identical_on_10k_tuples(self, backend, make_runtime_config):
        """Acceptance: two mid-stream migrations leave the result stream untouched."""
        stream = synthetic_stream(10_000, deletion_ratio=0.1)
        assert len(stream) > 10_000  # insertions plus injected deletions
        expected = engine_events(stream)

        service = StreamingQueryService(WINDOW, make_runtime_config(backend=backend, shards=4, batch_size=64))
        for name, expression in QUERIES.items():
            service.register(name, expression)
        third = len(stream) // 3
        with service:
            service.ingest(stream[:third])
            first = service.migrate("chains-a", (service.router.shard_of("chains-a") + 1) % 4)
            service.ingest(stream[third : 2 * third])
            second = service.migrate("alternate", (service.router.shard_of("alternate") + 2) % 4)
            service.ingest(stream[2 * third :])
            service.drain()
            got = full_events(service)
            assignments = service.router.assignments()
        assert got == expected
        assert any(expected.values())  # the comparison is not vacuous
        assert assignments["chains-a"] == first
        assert assignments["alternate"] == second
        assert [m["query"] for m in service.migrations] == ["chains-a", "alternate"]

    def test_global_merged_stream_identical_after_migration(self):
        stream = synthetic_stream(3_000, deletion_ratio=0.15, seed=23)
        engine = StreamingRPQEngine(WINDOW)
        for name, expression in QUERIES.items():
            engine.register(name, expression)
        engine.process_stream(stream)
        expected = list(merge_result_events({name: engine.query(name).results.events for name in QUERIES}))

        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=3, batch_size=32))
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(stream[: len(stream) // 2])
            service.migrate("pair", (service.router.shard_of("pair") + 1) % 3)
            service.ingest(stream[len(stream) // 2 :])
            service.drain()
            merged = list(service.global_events())
        assert merged == expected

    def test_migrate_to_same_shard_is_a_noop(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        shard = service.register("q", "a+")
        assert service.migrate("q", shard) == shard
        assert service.migrations == []
        assert service.router.epoch == 1  # only the registration bumped it

    def test_migration_works_on_a_stopped_service(self):
        """Control frames execute inline, so checkpointed services can be re-homed."""
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a+")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
        source = service.router.shard_of("q")
        target = service.migrate("q", 1 - source)
        assert target == 1 - source
        assert service.answer_pairs("q") == {("u", "v")}


class TestMigrationFailurePaths:
    def test_unknown_query_raises_keyerror(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        with pytest.raises(KeyError, match="ghost"):
            service.migrate("ghost", 1)

    def test_target_shard_out_of_range(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a+")
        with pytest.raises(ValueError, match="out of range"):
            service.migrate("q", 7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_simple_semantics_query_refuses_migration(self, backend, make_runtime_config):
        """RSPQ state cannot be shipped: the refusal is clean, not a hang."""
        service = StreamingQueryService(
            WindowSpec(size=100, slide=1),
            make_runtime_config(backend=backend, shards=2, batch_size=1),
        )
        shard = service.register("q", "a+", semantics="simple")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
            with pytest.raises(RuntimeStateError, match="cannot migrate"):
                service.migrate("q", 1 - shard)
            # the refusal left the query untouched and live on its shard
            assert service.router.shard_of("q") == shard
            service.ingest_one(sgt(2, "v", "w", "a"))
            service.drain()
            assert service.answer_pairs("q") == {("u", "v"), ("v", "w"), ("u", "w")}

    def test_dead_target_keeps_query_live_on_source(self):
        """A target worker death surfaces as an error; the query stays put."""
        service = StreamingQueryService(
            WindowSpec(size=100, slide=1),
            RuntimeConfig(shards=2, batch_size=1, backend="multiprocessing", sharding="round_robin"),
        )
        source = service.register("q", "a+")
        assert source == 0
        target = 1
        service.start()
        try:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
            os.kill(service.workers[target]._process.pid, signal.SIGKILL)
            with pytest.raises(ShardWorkerError):
                service.migrate("q", target)
            # the query is still owned, routed and served by the source
            assert service.router.shard_of("q") == source
            assert service.answer_pairs("q") == {("u", "v")}
            assert "q" in service.workers[source].summary()
        finally:
            with pytest.raises(ShardWorkerError):
                service.stop()  # the dead shard must not pass as a clean stop

    def test_reentrant_route_change_rolls_the_move_back(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        source = service.register("q", "a+")
        target = 1 - source
        service.start()
        try:
            original = service.workers[source].migrate_query

            def sneaky(name, **kwargs):
                result = original(name, **kwargs)
                # a reentrant placement change mid-migration (e.g. from a
                # result callback) invalidates the drain barrier
                service.router.assign_to("intruder", analyze("z+"), source)
                return result

            service.workers[source].migrate_query = sneaky
            with pytest.raises(RuntimeStateError, match="route table changed"):
                service.migrate("q", target)
            service.workers[source].migrate_query = original
            # rolled back: one owner (the source), target engine is clean
            assert service.router.shard_of("q") == source
            assert "q" not in service.workers[target].summary()
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.drain()
            assert service.answer_pairs("q") == {("u", "v")}
        finally:
            service.stop()

    def test_ingest_during_migration_is_refused(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        source = service.register("q", "a+")
        service.start()
        try:
            original = service.workers[source].migrate_query

            def feeding(name, **kwargs):
                service.ingest_one(sgt(1, "u", "v", "a"))
                return original(name, **kwargs)

            service.workers[source].migrate_query = feeding
            with pytest.raises(RuntimeStateError, match="is migrating"):
                service.migrate("q", 1 - source)
            service.workers[source].migrate_query = original
        finally:
            service.stop()


class TestRebalancePolicies:
    def shard(self, shard_id, query_loads=None, pinned=0.0):
        return ShardLoad(shard_id=shard_id, query_loads=dict(query_loads or {}), pinned_load=pinned)

    def test_manual_never_proposes(self):
        shards = [self.shard(0, {"hot": 1000.0}), self.shard(1)]
        assert ManualPolicy().propose(shards) == []

    def test_load_aware_splits_two_hot_queries(self):
        shards = [self.shard(0, {"hot-1": 500.0, "hot-2": 480.0}), self.shard(1)]
        plans = LoadAwarePolicy().propose(shards)
        assert len(plans) == 1
        assert plans[0].source == 0 and plans[0].target == 1
        assert plans[0].query in {"hot-1", "hot-2"}
        assert "load_aware" in plans[0].reason

    def test_load_aware_keeps_balanced_placement(self):
        shards = [self.shard(0, {"a": 100.0}), self.shard(1, {"b": 90.0})]
        assert LoadAwarePolicy(imbalance_ratio=1.5).propose(shards) == []

    def test_load_aware_cannot_split_a_single_query(self):
        """One atomic hot query: moving it only relocates the hot spot."""
        shards = [self.shard(0, {"whale": 1000.0}), self.shard(1, {"m": 10.0})]
        assert LoadAwarePolicy().propose(shards) == []

    def test_load_aware_never_proposes_pinned_queries(self):
        shards = [
            self.shard(0, {"movable": 50.0}, pinned=900.0),
            self.shard(1, {"idle": 5.0}),
        ]
        plans = LoadAwarePolicy().propose(shards)
        assert all(plan.query == "movable" for plan in plans)

    def test_load_aware_is_deterministic_on_ties(self):
        shards = [self.shard(0, {"x": 100.0, "y": 100.0}), self.shard(1)]
        first = LoadAwarePolicy().propose(shards)
        second = LoadAwarePolicy().propose(shards)
        assert first == second
        assert first[0].query == "x"  # name tie-break

    def test_load_aware_respects_max_moves(self):
        shards = [
            self.shard(0, {f"q{i}": 100.0 for i in range(6)}),
            self.shard(1),
            self.shard(2),
        ]
        plans = LoadAwarePolicy(max_moves=2).propose(shards)
        assert len(plans) == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown rebalance policy"):
            make_rebalance_policy("chaotic")

    def test_policy_instance_passes_through(self):
        policy = LoadAwarePolicy(imbalance_ratio=2.0)
        assert make_rebalance_policy(policy) is policy


class TestServiceRebalancing:
    def test_drain_boundary_rebalances_colocated_hot_queries(self):
        """label_affinity co-locates same-alphabet queries; load_aware splits them."""
        config = RuntimeConfig(
            shards=2, batch_size=8, sharding="label_affinity", rebalance_policy="load_aware"
        )
        service = StreamingQueryService(WindowSpec(size=50, slide=5), config)
        service.register("hot-1", "a+")
        service.register("hot-2", "a a")
        assert len(set(service.router.assignments().values())) == 1
        stream = [sgt(t, f"u{t}", f"v{t}", "a") for t in range(1, 500)]
        engine = StreamingRPQEngine(WindowSpec(size=50, slide=5))
        engine.register("hot-1", "a+")
        engine.register("hot-2", "a a")
        engine.process_stream(stream)
        with service:
            service.ingest(stream)
            service.drain()
            assignments = service.router.assignments()
            got = full_events(service, {"hot-1": None, "hot-2": None})
        assert len(set(assignments.values())) == 2  # split across both shards
        assert [m["query"] for m in service.migrations]
        for name in ("hot-1", "hot-2"):
            expected = [
                (e.source, e.target, e.timestamp, e.positive)
                for e in engine.query(name).results.events
            ]
            assert got[name] == expected

    def test_interval_rebalances_mid_stream(self):
        config = RuntimeConfig(
            shards=2,
            batch_size=4,
            sharding="label_affinity",
            rebalance_policy="load_aware",
            rebalance_interval=50,
        )
        service = StreamingQueryService(WindowSpec(size=50, slide=5), config)
        service.register("hot-1", "a+")
        service.register("hot-2", "a a")
        with service:
            service.ingest(sgt(t, f"u{t}", f"v{t}", "a") for t in range(1, 200))
            migrated_before_drain = len(service.migrations)
            service.drain()
        assert migrated_before_drain >= 1

    def test_manual_policy_never_auto_migrates(self):
        config = RuntimeConfig(shards=2, batch_size=8, sharding="label_affinity")
        service = StreamingQueryService(WindowSpec(size=50, slide=5), config)
        service.register("hot-1", "a+")
        service.register("hot-2", "a a")
        with service:
            service.ingest(sgt(t, f"u{t}", f"v{t}", "a") for t in range(1, 300))
            service.drain()
        assert service.migrations == []

    def test_rebalance_counts_appear_in_summary(self):
        service = StreamingQueryService(WINDOW, RuntimeConfig(shards=2))
        service.register("q", "a+")
        with service:
            service.ingest_one(sgt(1, "u", "v", "a"))
            service.migrate("q", 1 - service.router.shard_of("q"), reason="test-move")
            service.drain()
            summary = service.summary()
        assert summary["totals"]["migrations"] == 1
        assert summary["migrations"][0]["reason"] == "test-move"
        assert summary["migrations"][0]["query"] == "q"


class TestRebalanceConfigValidation:
    def test_single_shard_rejects_load_aware(self):
        with pytest.raises(ConfigError, match="shards=1"):
            RuntimeConfig(shards=1, rebalance_policy="load_aware")

    def test_single_shard_rejects_interval(self):
        with pytest.raises(ConfigError, match="shards=1"):
            RuntimeConfig(shards=1, rebalance_policy="load_aware", rebalance_interval=100)

    def test_manual_policy_rejects_interval(self):
        with pytest.raises(ConfigError, match="load_aware"):
            RuntimeConfig(shards=2, rebalance_interval=100)

    def test_unknown_policy_lists_choices(self):
        with pytest.raises(ConfigError, match="manual, load_aware"):
            RuntimeConfig(shards=2, rebalance_policy="vibes")

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigError, match="rebalance_interval"):
            RuntimeConfig(shards=2, rebalance_policy="load_aware", rebalance_interval=-1)

    def test_valid_combination_accepted(self):
        config = RuntimeConfig(shards=2, rebalance_policy="load_aware", rebalance_interval=500)
        assert config.rebalance_policy == "load_aware"
        assert RuntimeConfig.from_dict(config.to_dict()) == config

    def test_with_shards_one_fails_fast_for_rebalancing_configs(self):
        config = RuntimeConfig(shards=4, rebalance_policy="load_aware")
        with pytest.raises(ConfigError):
            config.with_shards(1)
