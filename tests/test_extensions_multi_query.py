"""Tests for the shared-snapshot multi-query engine."""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, StreamingRPQEngine, WindowSpec, sgt
from repro.extensions.multi_query import SharedSnapshotEngine

from helpers import insert_stream


def social_stream():
    return insert_stream(
        [
            (1, "a", "b", "follows"),
            (2, "b", "c", "mentions"),
            (3, "c", "d", "follows"),
            (4, "d", "e", "mentions"),
            (5, "a", "c", "likes"),
            (6, "e", "a", "follows"),
            (20, "b", "d", "follows"),
            (21, "d", "a", "mentions"),
        ]
    )


class TestCorrectness:
    def test_same_answers_as_independent_evaluators(self):
        window = WindowSpec(size=10, slide=2)
        queries = {
            "alt": "(follows mentions)+",
            "follows": "follows+",
            "two-hop": "follows mentions",
        }
        shared = SharedSnapshotEngine(window)
        independent = {}
        for name, expression in queries.items():
            shared.register(name, expression)
            independent[name] = RAPQEvaluator(expression, window)
        for tup in social_stream():
            shared.process(tup)
            for evaluator in independent.values():
                evaluator.process(tup)
        for name, evaluator in independent.items():
            assert shared.answer_pairs(name) == evaluator.answer_pairs(), name

    def test_simple_semantics_evaluator(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        shared.register("simple", "follows+", semantics="simple")
        shared.process(sgt(1, "x", "y", "follows"))
        shared.process(sgt(2, "y", "x", "follows"))
        assert shared.answer_pairs("simple") == {("x", "y"), ("y", "x")}

    def test_mixed_semantics_share_one_snapshot(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        arb = shared.register("arb", "follows+")
        simple = shared.register("simple", "follows+", semantics="simple")
        for tup in insert_stream([(1, "x", "y", "follows"), (2, "y", "x", "follows")]):
            shared.process(tup)
        assert arb.snapshot is shared.snapshot
        assert simple.snapshot is shared.snapshot
        assert shared.answer_pairs("simple") <= shared.answer_pairs("arb")

    def test_deletions_propagate_to_all_queries(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        shared.register("q1", "follows")
        shared.register("q2", "follows+")
        shared.process(sgt(1, "a", "b", "follows"))
        shared.process(sgt(2, "a", "b", "follows").as_delete(2))
        assert shared.evaluator("q1").active_pairs() == set()
        assert shared.evaluator("q2").active_pairs() == set()
        assert shared.snapshot.num_edges == 0


class TestSharing:
    def test_snapshot_stored_once(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        shared.register("q1", "follows+")
        shared.register("q2", "follows mentions")
        for tup in social_stream():
            shared.process(tup)
        summary = shared.memory_summary()
        assert summary["snapshot_edges"] == shared.snapshot.num_edges
        assert "index_nodes[q1]" in summary and "index_nodes[q2]" in summary

    def test_globally_irrelevant_tuples_dropped_once(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        shared.register("q1", "follows")
        shared.process(sgt(1, "a", "b", "purchased"))
        assert shared.stats["tuples_dropped_globally"] == 1
        assert shared.snapshot.num_edges == 0

    def test_label_relevant_to_one_query_reaches_snapshot(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        shared.register("q1", "follows")
        shared.register("q2", "likes")
        shared.process(sgt(1, "a", "b", "likes"))
        assert shared.snapshot.num_edges == 1
        assert shared.answer_pairs("q2") == {("a", "b")}
        assert shared.answer_pairs("q1") == set()

    def test_query_compilation_shared_for_identical_expressions(self):
        shared = SharedSnapshotEngine(WindowSpec(size=100))
        a = shared.register("a", "follows+")
        b = shared.register("b", "follows+")
        assert a.analysis is b.analysis

    def test_expiry_happens_once_per_boundary(self):
        shared = SharedSnapshotEngine(WindowSpec(size=4, slide=2))
        shared.register("q1", "follows")
        shared.register("q2", "follows+")
        shared.process(sgt(1, "a", "b", "follows"))
        shared.process(sgt(9, "c", "d", "follows"))
        assert shared.stats["snapshot_expiries"] >= 1
        assert not shared.snapshot.has_edge("a", "b", "follows")


class TestValidation:
    def test_duplicate_name_rejected(self):
        shared = SharedSnapshotEngine(WindowSpec(size=10))
        shared.register("q", "a")
        with pytest.raises(ValueError):
            shared.register("q", "b")

    def test_baseline_not_supported(self):
        shared = SharedSnapshotEngine(WindowSpec(size=10))
        with pytest.raises(ValueError):
            shared.register("q", "a", semantics="baseline")

    def test_unknown_query_lookup(self):
        shared = SharedSnapshotEngine(WindowSpec(size=10))
        with pytest.raises(KeyError):
            shared.evaluator("missing")

    def test_timestamps_must_not_go_backwards(self):
        shared = SharedSnapshotEngine(WindowSpec(size=10))
        shared.register("q", "a")
        shared.process(sgt(5, "u", "v", "a"))
        with pytest.raises(ValueError):
            shared.process(sgt(3, "u", "w", "a"))


class TestComparisonWithStandardEngine:
    def test_matches_streaming_rpq_engine(self):
        window = WindowSpec(size=10, slide=2)
        standard = StreamingRPQEngine(window)
        shared = SharedSnapshotEngine(window)
        for name, expression in [("alt", "(follows mentions)+"), ("fol", "follows+")]:
            standard.register(name, expression)
            shared.register(name, expression)
        for tup in social_stream():
            standard.process(tup)
            shared.process(tup)
        for name in ("alt", "fol"):
            assert standard.query(name).answer_pairs() == shared.answer_pairs(name)
