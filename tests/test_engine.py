"""Tests for the multi-query streaming engine."""

from __future__ import annotations

import pytest

from repro import StreamingRPQEngine, WindowSpec, sgt
from repro.core.engine import make_evaluator
from repro.core.rapq import RAPQEvaluator
from repro.core.rspq import RSPQEvaluator
from repro.core.baseline import SnapshotRecomputeBaseline


class TestRegistration:
    def test_register_and_query(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        handle = engine.register("q", "a b")
        assert engine.query("q") is handle
        assert "q" in engine
        assert [h.name for h in engine.queries()] == ["q"]

    def test_duplicate_name_rejected(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        engine.register("q", "a")
        with pytest.raises(ValueError):
            engine.register("q", "b")

    def test_unknown_query_lookup(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        with pytest.raises(KeyError):
            engine.query("missing")

    def test_deregister(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        engine.register("q", "a")
        engine.deregister("q")
        assert "q" not in engine
        with pytest.raises(KeyError):
            engine.deregister("q")

    def test_semantics_selection(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        assert isinstance(engine.register("arb", "a").evaluator, RAPQEvaluator)
        assert isinstance(engine.register("simple", "a", semantics="simple").evaluator, RSPQEvaluator)
        assert isinstance(
            engine.register("base", "a", semantics="baseline").evaluator, SnapshotRecomputeBaseline
        )

    def test_unknown_semantics_rejected(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        with pytest.raises(ValueError):
            engine.register("q", "a", semantics="quantum")


class TestMakeEvaluator:
    def test_factory_types(self):
        window = WindowSpec(size=10)
        assert isinstance(make_evaluator("a", window, "arbitrary"), RAPQEvaluator)
        assert isinstance(make_evaluator("a", window, "simple"), RSPQEvaluator)
        assert isinstance(make_evaluator("a", window, "baseline"), SnapshotRecomputeBaseline)
        with pytest.raises(ValueError):
            make_evaluator("a", window, "nope")

    def test_budget_forwarded_to_rspq(self):
        evaluator = make_evaluator("a", WindowSpec(size=10), "simple", max_nodes_per_tree=123)
        assert evaluator.max_nodes_per_tree == 123


class TestProcessing:
    def test_process_dispatches_to_all_queries(self, figure1_stream):
        engine = StreamingRPQEngine(WindowSpec(size=15))
        engine.register("alternating", "(follows mentions)+")
        engine.register("followers", "follows+")
        results = engine.process_stream(figure1_stream)
        assert ("x", "y") in results["alternating"].distinct_pairs
        assert ("x", "z") in results["followers"].distinct_pairs
        assert engine.tuples_seen == len(figure1_stream)

    def test_process_returns_only_new_results(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        engine.register("q", "a")
        produced = engine.process(sgt(1, "u", "v", "a"))
        assert produced == {"q": [("u", "v")]}
        produced = engine.process(sgt(2, "x", "y", "zzz"))
        assert produced == {}

    def test_on_result_callback(self, figure1_stream):
        engine = StreamingRPQEngine(WindowSpec(size=15))
        engine.register("alternating", "(follows mentions)+")
        notifications = []
        engine.process_stream(
            figure1_stream,
            on_result=lambda name, src, dst, ts: notifications.append((name, src, dst, ts)),
        )
        assert ("alternating", "x", "y", 18) in notifications
        assert len(notifications) == len(engine.query("alternating").results.positives())

    def test_latency_measurement(self):
        engine = StreamingRPQEngine(WindowSpec(size=10), measure_latency=True)
        engine.register("q", "a")
        engine.process(sgt(1, "u", "v", "a"))
        engine.process(sgt(2, "u", "v", "zzz"))  # irrelevant: not timed
        handle = engine.query("q")
        assert len(handle.latency) == 1

    def test_summary(self, figure1_stream):
        engine = StreamingRPQEngine(WindowSpec(size=15), measure_latency=True)
        engine.register("alternating", "(follows mentions)+")
        engine.process_stream(figure1_stream)
        summary = engine.summary()
        entry = summary["alternating"]
        assert entry["semantics"] == "arbitrary"
        assert entry["states"] == 3
        assert entry["distinct_results"] >= 1
        assert entry["index"]["trees"] >= 1
        assert "latency" in entry

    def test_engine_str(self):
        engine = StreamingRPQEngine(WindowSpec(size=10, slide=2))
        engine.register("q", "a")
        text = str(engine)
        assert "q" in text and "10" in text


class TestDocExample:
    def test_docstring_example(self):
        engine = StreamingRPQEngine(WindowSpec(size=10, slide=1))
        engine.register("follows-chain", "follows+")
        engine.process(sgt(1, "alice", "bob", "follows"))
        engine.process(sgt(2, "bob", "carol", "follows"))
        assert sorted(engine.query("follows-chain").answer_pairs()) == [
            ("alice", "bob"),
            ("alice", "carol"),
            ("bob", "carol"),
        ]
