"""Tests for the snapshot-recomputation baseline (§5.6)."""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, SnapshotRecomputeBaseline, WindowSpec, sgt
from repro.graph.tuples import EdgeOp, StreamingGraphTuple

from helpers import insert_stream


class TestEquivalenceWithIncremental:
    @pytest.mark.parametrize("query", ["a", "a b", "a+", "(a b)+", "a b*"])
    def test_same_answers_as_rapq(self, query):
        stream = insert_stream(
            [(t, f"v{t % 5}", f"v{(t * 3 + 1) % 5}", "a" if t % 2 else "b") for t in range(1, 30)]
        )
        window = WindowSpec(size=8, slide=2)
        incremental = RAPQEvaluator(query, window)
        baseline = SnapshotRecomputeBaseline(query, window)
        incremental.process_stream(stream)
        baseline.process_stream(stream)
        assert baseline.answer_pairs() == incremental.answer_pairs()

    def test_same_answers_on_figure1(self, figure1_stream, figure1_query, figure1_window):
        incremental = RAPQEvaluator(figure1_query, figure1_window)
        baseline = SnapshotRecomputeBaseline(figure1_query, figure1_window)
        for tup in figure1_stream:
            incremental.process(tup)
            baseline.process(tup)
        assert baseline.answer_pairs() == incremental.answer_pairs()


class TestBehaviour:
    def test_recomputation_counter(self):
        baseline = SnapshotRecomputeBaseline("a", WindowSpec(size=10))
        baseline.process(sgt(1, "u", "v", "a"))
        baseline.process(sgt(2, "v", "w", "a"))
        baseline.process(sgt(3, "x", "y", "zzz"))  # irrelevant: no recomputation
        assert baseline.stats["recomputations"] == 2
        assert baseline.stats["tuples_discarded"] == 1

    def test_simple_path_mode(self):
        baseline = SnapshotRecomputeBaseline("a+", WindowSpec(size=100), semantics="simple")
        baseline.process(sgt(1, "x", "y", "a"))
        baseline.process(sgt(2, "y", "x", "a"))
        assert baseline.answer_pairs() == {("x", "y"), ("y", "x")}

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            SnapshotRecomputeBaseline("a", WindowSpec(size=10), semantics="magic")

    def test_deletion_updates_active_view(self):
        baseline = SnapshotRecomputeBaseline("a", WindowSpec(size=100))
        baseline.process(sgt(1, "u", "v", "a"))
        assert baseline.active_pairs() == {("u", "v")}
        baseline.process(StreamingGraphTuple(2, "u", "v", "a", EdgeOp.DELETE))
        assert baseline.active_pairs() == set()
        # the append-only history is retained
        assert baseline.answer_pairs() == {("u", "v")}

    def test_window_expiry(self):
        baseline = SnapshotRecomputeBaseline("a b", WindowSpec(size=5, slide=5))
        baseline.process(sgt(1, "u", "v", "a"))
        baseline.process(sgt(12, "v", "w", "b"))
        assert baseline.answer_pairs() == set()

    def test_index_size_is_zero(self):
        baseline = SnapshotRecomputeBaseline("a", WindowSpec(size=10))
        assert baseline.index_size() == {"trees": 0, "nodes": 0}

    def test_timestamps_must_be_non_decreasing(self):
        baseline = SnapshotRecomputeBaseline("a", WindowSpec(size=10))
        baseline.process(sgt(5, "u", "v", "a"))
        with pytest.raises(ValueError):
            baseline.process(sgt(3, "u", "w", "a"))

    def test_expire_now(self):
        # With beta = 5, the lazy boundary at t=9 only expires timestamps <= 0,
        # so the edge at t=1 is still physically present until expire_now().
        baseline = SnapshotRecomputeBaseline("a", WindowSpec(size=5, slide=5))
        baseline.process(sgt(1, "u", "v", "a"))
        baseline.process(sgt(9, "p", "q", "a"))
        removed = baseline.expire_now()
        assert removed >= 1
