"""Unit tests for DFA construction, minimization and language algebra."""

from __future__ import annotations

import itertools

import pytest

from repro.regex.dfa import DFA, compile_query, determinize
from repro.regex.nfa import build_nfa


def words_up_to(alphabet, length):
    """Enumerate every word over ``alphabet`` of length at most ``length``."""
    for n in range(length + 1):
        for word in itertools.product(alphabet, repeat=n):
            yield list(word)


class TestDeterminize:
    @pytest.mark.parametrize(
        "expression",
        ["a", "a b", "a | b", "a*", "a+", "a?", "(a b)+", "a b* c", "(a | b)* c", "a? b*"],
    )
    def test_agrees_with_nfa_on_short_words(self, expression):
        nfa = build_nfa(expression)
        dfa = determinize(nfa)
        for word in words_up_to(sorted(nfa.alphabet | {"z"}), 4):
            assert dfa.accepts(word) == nfa.accepts(word), word

    def test_start_state_is_zero(self):
        dfa = determinize(build_nfa("a b"))
        assert dfa.start == 0

    def test_deterministic_transitions(self):
        dfa = determinize(build_nfa("(a | b)* a"))
        seen = set()
        for (state, label) in dfa.transitions:
            assert (state, label) not in seen
            seen.add((state, label))


class TestMinimize:
    @pytest.mark.parametrize(
        "expression, expected_states",
        [
            ("a", 2),
            ("a*", 1),
            ("a+", 2),
            ("a b", 3),
            ("(follows mentions)+", 3),
            ("(a | b)*", 1),
            ("a b* c*", 3),
        ],
    )
    def test_known_minimal_sizes(self, expression, expected_states):
        assert compile_query(expression).num_states == expected_states

    @pytest.mark.parametrize(
        "expression",
        ["a", "a b", "a | b", "a*", "(a b)+", "a b* c", "(a | b)* c", "a? b*", "a* b*"],
    )
    def test_minimization_preserves_language(self, expression):
        dfa = determinize(build_nfa(expression))
        minimal = dfa.minimize()
        for word in words_up_to(sorted(dfa.alphabet), 4):
            assert minimal.accepts(word) == dfa.accepts(word), word

    def test_minimize_is_idempotent(self):
        minimal = compile_query("a b* c | a d* c")
        again = minimal.minimize()
        assert again.num_states == minimal.num_states

    def test_minimal_start_state_is_zero(self):
        assert compile_query("(a b)+").start == 0


class TestAccepts:
    def test_extended_delta_none_on_dead_path(self):
        dfa = compile_query("a b")
        assert dfa.extended_delta(dfa.start, ["b"]) is None

    def test_accepts_empty_word(self):
        assert compile_query("a*").accepts_empty_word()
        assert not compile_query("a+").accepts_empty_word()

    def test_transitions_on(self):
        dfa = compile_query("(follows mentions)+")
        pairs = dfa.transitions_on("follows")
        assert len(pairs) >= 1
        assert all(dfa.delta(source, "follows") == target for source, target in pairs)
        assert dfa.transitions_on("unknown") == []

    def test_out_transitions(self):
        dfa = compile_query("a b")
        labels = [label for label, _ in dfa.out_transitions(dfa.start)]
        assert labels == ["a"]


class TestLanguageAlgebra:
    def test_completed_is_total(self):
        dfa = compile_query("a b").completed()
        for state in dfa.states:
            for label in dfa.alphabet:
                assert dfa.delta(state, label) is not None

    def test_completed_preserves_language(self):
        dfa = compile_query("a b | c")
        complete = dfa.completed()
        for word in words_up_to(sorted(dfa.alphabet), 3):
            assert complete.accepts(word) == dfa.accepts(word)

    def test_with_start_changes_language(self):
        dfa = compile_query("a b")
        mid_state = dfa.delta(dfa.start, "a")
        restarted = dfa.with_start(mid_state)
        assert restarted.accepts(["b"])
        assert not restarted.accepts(["a", "b"])

    def test_with_start_rejects_bad_state(self):
        dfa = compile_query("a")
        with pytest.raises(ValueError):
            dfa.with_start(99)

    def test_is_empty_language(self):
        empty = DFA(num_states=1, start=0, finals=frozenset(), transitions={}, alphabet=frozenset({"a"}))
        assert empty.is_empty_language()
        assert not compile_query("a").is_empty_language()

    def test_language_contains_reflexive(self):
        dfa = compile_query("(a b)+")
        for state in dfa.states:
            assert dfa.language_contains(state, state)

    def test_language_contains_star_contains_plus(self):
        """In the automaton of a* b, the start's language contains the post-a language."""
        dfa = compile_query("a* b")
        after_a = dfa.delta(dfa.start, "a")
        # a* b restarted after one 'a' is still a* b, so both directions hold.
        assert dfa.language_contains(dfa.start, after_a)
        assert dfa.language_contains(after_a, dfa.start)

    def test_language_contains_negative(self):
        dfa = compile_query("(a b)+")
        after_a = dfa.delta(dfa.start, "a")
        # [start] expects words starting with 'a'; [after_a] expects 'b...':
        assert not dfa.language_contains(dfa.start, after_a)


class TestIntrospection:
    def test_to_dot_mentions_all_states(self):
        dfa = compile_query("a b")
        dot = dfa.to_dot()
        assert dot.startswith("digraph")
        for state in dfa.states:
            assert f"s{state}" in dot

    def test_str(self):
        text = str(compile_query("a b"))
        assert "states=3" in text

    def test_trimmed_drops_unreachable(self):
        dfa = DFA(
            num_states=3,
            start=0,
            finals=frozenset({1}),
            transitions={(0, "a"): 1, (2, "a"): 1},
            alphabet=frozenset({"a"}),
        )
        trimmed = dfa.trimmed()
        assert trimmed.num_states == 2
        assert trimmed.accepts(["a"])
