"""Unit tests for the regular-expression AST."""

from __future__ import annotations

import pytest

from repro.regex.ast import (
    Alternation,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    Star,
    alternate_all,
    concat_all,
)


class TestLabel:
    def test_labels_returns_singleton(self):
        assert Label("follows").labels() == frozenset({"follows"})

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Label("")

    def test_not_nullable(self):
        assert not Label("a").nullable()

    def test_size_is_one(self):
        assert Label("a").size() == 1

    def test_equality_is_structural(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")

    def test_str(self):
        assert str(Label("mentions")) == "mentions"


class TestEpsilon:
    def test_no_labels(self):
        assert Epsilon().labels() == frozenset()

    def test_nullable(self):
        assert Epsilon().nullable()

    def test_size_zero(self):
        assert Epsilon().size() == 0

    def test_not_recursive(self):
        assert not Epsilon().is_recursive()


class TestConcat:
    def test_labels_union(self):
        node = Concat(Label("a"), Label("b"))
        assert node.labels() == frozenset({"a", "b"})

    def test_children(self):
        node = Concat(Label("a"), Label("b"))
        assert node.children() == (Label("a"), Label("b"))

    def test_nullable_requires_both(self):
        assert not Concat(Label("a"), Epsilon()).nullable()
        assert Concat(Epsilon(), Epsilon()).nullable()

    def test_size_adds(self):
        node = Concat(Label("a"), Concat(Label("b"), Label("c")))
        assert node.size() == 3


class TestAlternation:
    def test_nullable_if_either(self):
        assert Alternation(Label("a"), Epsilon()).nullable()
        assert not Alternation(Label("a"), Label("b")).nullable()

    def test_size(self):
        assert Alternation(Label("a"), Label("b")).size() == 2


class TestUnaryOperators:
    def test_star_nullable_and_size(self):
        node = Star(Label("a"))
        assert node.nullable()
        assert node.size() == 2
        assert node.is_recursive()

    def test_plus_nullable_follows_inner(self):
        assert not Plus(Label("a")).nullable()
        assert Plus(Star(Label("a"))).nullable()

    def test_plus_size(self):
        assert Plus(Label("a")).size() == 2

    def test_optional(self):
        node = Optional(Label("a"))
        assert node.nullable()
        assert node.size() == 1
        assert not node.is_recursive()

    def test_star_str_wraps_compound(self):
        node = Star(Concat(Label("a"), Label("b")))
        assert str(node) == "(a b)*"


class TestWalk:
    def test_walk_preorder(self):
        node = Concat(Label("a"), Star(Label("b")))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Concat", "Label", "Star", "Label"]

    def test_is_recursive_detects_nested_plus(self):
        node = Concat(Label("a"), Alternation(Label("b"), Plus(Label("c"))))
        assert node.is_recursive()


class TestBuilders:
    def test_concat_all_empty_is_epsilon(self):
        assert concat_all([]) == Epsilon()

    def test_concat_all_single(self):
        assert concat_all([Label("a")]) == Label("a")

    def test_concat_all_left_associative(self):
        node = concat_all([Label("a"), Label("b"), Label("c")])
        assert node == Concat(Concat(Label("a"), Label("b")), Label("c"))

    def test_alternate_all_rejects_empty(self):
        with pytest.raises(ValueError):
            alternate_all([])

    def test_alternate_all(self):
        node = alternate_all([Label("a"), Label("b")])
        assert node == Alternation(Label("a"), Label("b"))
