"""Unit tests for time-based sliding windows."""

from __future__ import annotations

import pytest

from repro.graph.window import SlidingWindow, WindowSpec


class TestWindowSpec:
    def test_window_end_aligns_to_slide(self):
        spec = WindowSpec(size=15, slide=5)
        assert spec.window_end(17) == 15
        assert spec.window_end(20) == 20

    def test_window_begin(self):
        spec = WindowSpec(size=15, slide=5)
        assert spec.window_begin(20) == 5

    def test_contains(self):
        spec = WindowSpec(size=10, slide=1)
        assert spec.contains(15, now=20)
        assert not spec.contains(10, now=20)  # open lower bound
        assert spec.contains(20, now=20)
        assert not spec.contains(21, now=20)

    def test_expiry_watermark(self):
        assert WindowSpec(size=15, slide=1).expiry_watermark(18) == 3

    def test_slide_one_by_default(self):
        assert WindowSpec(size=5).slide == 1

    @pytest.mark.parametrize("size, slide", [(0, 1), (-3, 1), (5, 0), (5, -1), (5, 6)])
    def test_invalid_specs_rejected(self, size, slide):
        with pytest.raises(ValueError):
            WindowSpec(size=size, slide=slide)


class TestSlidingWindow:
    def test_first_observation_crosses_nothing(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        assert window.observe(7) == []
        assert window.current_time == 7

    def test_crossing_single_boundary(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        window.observe(4)
        assert window.observe(6) == [5]

    def test_crossing_multiple_boundaries_at_once(self):
        window = SlidingWindow(WindowSpec(size=20, slide=5))
        window.observe(3)
        assert window.observe(18) == [5, 10, 15]

    def test_no_boundary_within_same_slide(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        window.observe(6)
        assert window.observe(8) == []

    def test_rejects_time_going_backwards(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        window.observe(6)
        with pytest.raises(ValueError):
            window.observe(5)

    def test_valid(self):
        window = SlidingWindow(WindowSpec(size=10, slide=1))
        window.observe(20)
        assert window.valid(15)
        assert not window.valid(10)
        assert window.valid(11)

    def test_valid_before_any_observation(self):
        window = SlidingWindow(WindowSpec(size=10, slide=1))
        assert not window.valid(5)

    def test_expiry_watermark_requires_observation(self):
        window = SlidingWindow(WindowSpec(size=10, slide=1))
        with pytest.raises(RuntimeError):
            window.expiry_watermark()
        window.observe(25)
        assert window.expiry_watermark() == 15

    def test_reset(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        window.observe(12)
        window.reset()
        assert window.current_time is None
        assert window.observe(3) == []

    def test_properties(self):
        window = SlidingWindow(WindowSpec(size=10, slide=5))
        assert window.size == 10
        assert window.slide == 5
