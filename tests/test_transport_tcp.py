"""TCP transport: codec, framing, and socket fault injection.

Every failure mode a real network serves up — torn frames, flipped bits,
stalled peers, refused connections, vanished hosts — must surface as a
clean, typed error (:class:`WorkerUnavailableError` or
:class:`WireProtocolError`), never as a hang or silently corrupt state.
The parity/migration/recovery guarantees of the ``tcp`` backend ride the
shared backend-parametrized suites; this file attacks the wire itself.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WindowSpec, WireProtocolError, WorkerUnavailableError, sgt
from repro.datasets.synthetic import UniformStreamGenerator
from repro.runtime import RuntimeConfig, StreamingQueryService, TcpWorkerServer, create_worker
from repro.runtime.config import parse_worker_address
from repro.runtime.transport_tcp import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_value,
    encode_frame,
    encode_value,
    recv_frame,
)

WINDOW = WindowSpec(size=40, slide=4)


def make_stream(count, seed=11):
    generator = UniformStreamGenerator(
        num_vertices=40, labels=("a", "b", "noise"), edges_per_timestamp=4, seed=seed
    )
    return list(generator.generate(count))


def tcp_config(addresses, **kwargs):
    kwargs.setdefault("shards", len(addresses))
    kwargs.setdefault("batch_size", 8)
    return RuntimeConfig(backend="tcp", worker_addresses=addresses, **kwargs)


def free_port():
    """A port that was just free — bound briefly, then released."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def frame_pipe():
    """A connected non-blocking socket pair ready for the framing helpers."""
    left, right = socket.socketpair()
    left.setblocking(False)
    right.setblocking(False)
    return left, right


# --------------------------------------------------------------------- #
# Value codec
# --------------------------------------------------------------------- #


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**63),
            2**100,  # wider than int64: the bigint path
            -(2**100),
            1.5,
            float("inf"),
            "",
            "héllo wörld ☃",
            b"",
            b"\x00\xff" * 7,
            (),
            (1, "two", 3.0),
            [None, [True, [b"deep"]]],
            {"a": 1, "b": (2, [3])},
            {1: "int key", (2, 3): "tuple-free dict values only"},
            ("BATCH", [(1, "u", "v", "a", True)]),
        ],
    )
    def test_round_trip_exact(self, value):
        assert decode_value(encode_value(value)) == value

    def test_round_trip_preserves_types(self):
        """bool is not int, tuple is not list — types survive the wire."""
        out = decode_value(encode_value((True, 1, 1.0, (2,), [3])))
        assert [type(item) for item in out] == [bool, int, float, tuple, list]

    def test_unsupported_type_raises(self):
        with pytest.raises(WireProtocolError, match="cannot cross the tcp transport"):
            encode_value({"bad": object()})

    def test_unknown_tag_raises(self):
        with pytest.raises(WireProtocolError, match="unknown value tag"):
            decode_value(b"Z")

    def test_truncated_value_raises(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            decode_value(encode_value("hello")[:-2])

    def test_trailing_garbage_raises(self):
        with pytest.raises(WireProtocolError, match="trailing bytes"):
            decode_value(encode_value(7) + b"N")

    @settings(max_examples=200, deadline=None)
    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.floats(allow_nan=False)
            | st.text()
            | st.binary(),
            lambda leaf: st.lists(leaf, max_size=4)
            | st.lists(leaf, max_size=4).map(tuple)
            | st.dictionaries(st.text(max_size=8), leaf, max_size=4),
            max_leaves=20,
        )
    )
    def test_round_trip_property(self, value):
        assert decode_value(encode_value(value)) == value


# --------------------------------------------------------------------- #
# Framing over a real socket: torn frames, bad CRCs, stalls
# --------------------------------------------------------------------- #


class TestFraming:
    def test_frame_round_trip_over_socket(self):
        left, right = frame_pipe()
        try:
            frame = ("CTRL", 3, "RESULTS", {"name": "q"})
            left.sendall(encode_frame(frame))
            got, nbytes = recv_frame(right, read_timeout=5.0)
            assert got == frame
            assert nbytes == len(encode_frame(frame))
        finally:
            left.close()
            right.close()

    def test_clean_close_at_frame_boundary_returns_none(self):
        left, right = frame_pipe()
        right.close()
        try:
            assert recv_frame(left, read_timeout=5.0) is None
        finally:
            left.close()

    def test_torn_mid_frame_disconnect_raises(self):
        """The peer dies halfway through a frame: typed error, not a hang."""
        left, right = frame_pipe()
        try:
            wire = encode_frame(("BATCH", [(1, "u", "v", "a", True)]))
            left.sendall(wire[: len(wire) // 2])
            left.close()
            with pytest.raises(WorkerUnavailableError, match="closed mid-frame|between header"):
                recv_frame(right, read_timeout=5.0)
        finally:
            right.close()

    def test_crc_corrupted_frame_raises(self):
        """One flipped payload bit must be caught by the CRC, not decoded."""
        left, right = frame_pipe()
        try:
            wire = bytearray(encode_frame(("CTRL", 1, "DRAIN", None)))
            wire[-1] ^= 0x40  # flip a payload bit; header CRC now disagrees
            left.sendall(bytes(wire))
            with pytest.raises(WorkerUnavailableError, match="CRC mismatch"):
                recv_frame(right, read_timeout=5.0)
        finally:
            left.close()
            right.close()

    def test_slow_partial_read_hits_read_timeout(self):
        """A stalled peer mid-frame trips the read timeout, bounded in time."""
        left, right = frame_pipe()
        try:
            wire = encode_frame(("CTRL", 2, "SUMMARY", None))
            left.sendall(wire[:6])  # inside the 8-byte header, then silence
            started = time.monotonic()
            with pytest.raises(WorkerUnavailableError, match="stalled"):
                recv_frame(right, read_timeout=0.4)
            assert time.monotonic() - started < 5.0
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_rejected(self):
        """A corrupt length prefix must not trigger a giant allocation."""
        import struct

        left, right = frame_pipe()
        try:
            left.sendall(struct.pack("<II", MAX_FRAME_BYTES + 1, 0))
            with pytest.raises(WireProtocolError, match="exceeds MAX_FRAME_BYTES"):
                recv_frame(right, read_timeout=5.0)
        finally:
            left.close()
            right.close()

    def test_idle_connection_is_not_an_error(self):
        """idle_ok waits out silence; the frame then arrives intact."""
        left, right = frame_pipe()
        try:
            frame = ("CTRL", 9, "METRICS", None)

            def late_send():
                time.sleep(0.3)
                left.sendall(encode_frame(frame))

            thread = threading.Thread(target=late_send)
            thread.start()
            got, _ = recv_frame(right, read_timeout=0.1, idle_ok=True)
            thread.join()
            assert got == frame
        finally:
            left.close()
            right.close()


class TestParseWorkerAddress:
    def test_parses_host_and_port(self):
        assert parse_worker_address("10.0.0.7:7300") == ("10.0.0.7", 7300)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:0", "host:99999", ":7300", "host:abc"])
    def test_rejects_malformed_addresses(self, bad):
        with pytest.raises(ValueError):
            parse_worker_address(bad)

    def test_ephemeral_port_allowed_only_for_listeners(self):
        assert parse_worker_address("0.0.0.0:0", allow_ephemeral=True) == ("0.0.0.0", 0)


# --------------------------------------------------------------------- #
# Worker proxy vs a hostile or absent peer
# --------------------------------------------------------------------- #


def make_worker(address, **config_kwargs):
    config = tcp_config((address,), **config_kwargs)
    worker = create_worker(0, WINDOW, config)
    worker.register_query("q", "a+")
    return worker


class TestDialAndHandshake:
    def test_connect_refused_raises_after_bounded_attempts(self):
        worker = make_worker(
            f"127.0.0.1:{free_port()}", tcp_connect_attempts=2, tcp_connect_backoff=0.01
        )
        started = time.monotonic()
        with pytest.raises(WorkerUnavailableError, match="cannot connect .* after 2 attempts"):
            worker.start()
        assert time.monotonic() - started < 10.0
        assert not worker.running  # the failed start left the proxy stopped

    def test_dial_retries_until_the_worker_comes_up(self):
        """The backoff loop bridges a worker that is still starting."""
        port = free_port()
        server = TcpWorkerServer("127.0.0.1", port)

        def delayed_start():
            time.sleep(0.4)
            server.start_in_background()

        thread = threading.Thread(target=delayed_start)
        thread.start()
        worker = make_worker(
            f"127.0.0.1:{port}", tcp_connect_attempts=20, tcp_connect_backoff=0.05
        )
        try:
            worker.start()
            assert worker.running
            worker.stop()
        finally:
            thread.join()
            server.stop()
        stats = worker.transport_stats()
        assert stats["connect_attempts_total"] >= stats["connects_total"] == 1.0

    @pytest.mark.parametrize(
        "reply,error,match",
        [
            (("NOPE", WIRE_VERSION), WireProtocolError, "instead of WELCOME"),
            (("WELCOME", WIRE_VERSION + 1), WireProtocolError, "wire version"),
            (None, WorkerUnavailableError, "closed during handshake"),
        ],
    )
    def test_bad_handshake_replies_fail_clean(self, reply, error, match):
        """A fake server answering wrongly (or hanging up) cannot wedge start()."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def fake_server():
            sock, _ = listener.accept()
            sock.setblocking(False)
            got = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got is not None and got[0][0] == "HELLO"
            if reply is not None:
                sock.sendall(encode_frame(reply))
                time.sleep(0.2)  # let the client read before the fd dies
            sock.close()

        thread = threading.Thread(target=fake_server)
        thread.start()
        worker = make_worker(f"127.0.0.1:{port}", tcp_connect_attempts=1)
        try:
            with pytest.raises(error, match=match):
                worker.start()
        finally:
            thread.join()
            listener.close()


class TestMidStreamFailure:
    def test_server_drop_mid_stream_poisons_shard_sticky(self):
        """A vanished worker surfaces as WorkerUnavailableError, then sticks."""
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        worker = make_worker(f"127.0.0.1:{port}", tcp_read_timeout=5.0)
        try:
            worker.start()
            worker.submit([sgt(1, "u", "v", "a")])
            server.stop()  # kills the live session socket under the proxy
            with pytest.raises(WorkerUnavailableError):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    worker.submit([sgt(2, "v", "w", "a")])
                    worker.fetch_results("q")
            assert isinstance(worker.failure, WorkerUnavailableError)  # sticky
            with pytest.raises(WorkerUnavailableError):
                worker.stop()  # the crash must not pass as a clean stop
        finally:
            server.stop()

    def test_service_health_reports_lost_worker(self):
        """service.health() flips unhealthy and names the dead shard."""
        servers = [TcpWorkerServer("127.0.0.1", 0) for _ in range(2)]
        addresses = tuple(f"127.0.0.1:{server.start_in_background()}" for server in servers)
        service = StreamingQueryService(WINDOW, tcp_config(addresses, tcp_read_timeout=5.0))
        service.register("q", "a+")
        try:
            service.start()
            service.ingest(make_stream(100))
            service.drain()
            assert service.health()["healthy"] is True
            victim = service.router.shard_of("q")
            servers[victim].stop()  # one host vanishes
            with pytest.raises(WorkerUnavailableError):
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    service.ingest(make_stream(50, seed=2))
                    service.drain()
            health = service.health()
            assert health["healthy"] is False
            report = health["shards"][victim]
            assert report["ok"] is False and "worker" in report["failure"]
        finally:
            for server in servers:
                server.stop()

    def test_reconnect_after_drop_gives_a_fresh_session(self):
        """A worker process outlives its coordinator: next dial, next session."""
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        address = f"127.0.0.1:{port}"
        try:
            first = make_worker(address)
            first.start()
            first.submit([sgt(1, "u", "v", "a")])
            assert first.fetch_results("q").active_pairs == {("u", "v")}
            first.stop()  # clean STOP: session one ends, server keeps listening

            second = make_worker(address)
            second.start()  # a brand-new dial reaches a brand-new session
            second.submit([sgt(1, "x", "y", "a")])
            assert second.fetch_results("q").active_pairs == {("x", "y")}
            second.stop()
            assert server.sessions_served >= 2
        finally:
            server.stop()

    def test_corrupt_frame_from_coordinator_aborts_only_that_session(self):
        """A CRC-corrupt request kills the session; the server survives it."""
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        address = f"127.0.0.1:{port}"
        try:
            config = tcp_config((address,))
            hello = (
                "HELLO",
                WIRE_VERSION,
                0,
                WINDOW.size,
                WINDOW.slide,
                config.to_dict(),
                [],
                False,
            )
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setblocking(False)
            try:
                from repro.runtime.transport_tcp import _send_all

                _send_all(sock, encode_frame(hello), 5.0)
                got = recv_frame(sock, read_timeout=5.0, idle_ok=True)
                assert got is not None and got[0] == ("WELCOME", WIRE_VERSION)
                poison = bytearray(encode_frame(("CTRL", 1, "SUMMARY", None)))
                poison[-1] ^= 0xFF
                _send_all(sock, bytes(poison), 5.0)
                # the worker tears the session down rather than decoding lies
                deadline = time.monotonic() + 10.0
                while server.sessions_served == 0 and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert server.sessions_served == 1
            finally:
                sock.close()

            replacement = make_worker(address)
            replacement.start()  # the server is still accepting
            replacement.submit([sgt(1, "u", "v", "a")])
            assert replacement.fetch_results("q").active_pairs == {("u", "v")}
            replacement.stop()
        finally:
            server.stop()


class TestChannelContract:
    def test_qsize_unsupported_and_queue_depth_zero(self):
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        worker = make_worker(f"127.0.0.1:{port}")
        try:
            worker.start()
            with pytest.raises(NotImplementedError):
                worker._requests.qsize()
            assert worker.queue_depth() == 0
            worker.stop()
        finally:
            server.stop()

    def test_transport_stats_counts_frames_and_survives_stop(self):
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        worker = make_worker(f"127.0.0.1:{port}")
        try:
            worker.start()
            worker.submit([sgt(1, "u", "v", "a")])
            worker.fetch_results("q")
            live = worker.transport_stats()
            assert live["connected"] == 1.0
            assert live["frames_sent"] >= 2 and live["frames_received"] >= 1
            assert live["bytes_sent"] > 0 and live["bytes_received"] > 0
            worker.stop()
            stopped = worker.transport_stats()
            assert stopped["connected"] == 0.0
            assert stopped["frames_sent"] >= live["frames_sent"]
        finally:
            server.stop()

    def test_put_to_dead_connection_does_not_raise(self):
        """Writes to a dead transport are absorbed, like a dead process queue."""
        server = TcpWorkerServer("127.0.0.1", 0)
        port = server.start_in_background()
        worker = make_worker(f"127.0.0.1:{port}")
        try:
            worker.start()
            worker._conn.fail("injected for test")
            worker._requests.put(("CTRL", 99, "DRAIN", None))  # must not raise
            assert worker._requests._pending_frame is None
        finally:
            try:
                worker.stop()
            except WorkerUnavailableError:
                pass
            server.stop()
