"""Distributed tracing: span recording, context propagation, latency accounting.

The acceptance properties of the tracing layer:

* one sampled event yields a *connected span tree* across the
  coordinator and its shard workers on every backend (threading /
  multiprocessing / tcp / tcp+standby);
* sampling never perturbs results — runs at 0%, 1% and 100% sampling are
  bit-identical;
* a SIGKILL-style failover produces a single connected trace spanning
  the coordinator, the dead primary and the promoted standby;
* end-to-end event latency (routing time -> batch completion) surfaces
  as ``repro_event_latency_seconds`` and quantiles in ``summary()``.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import WindowSpec
from repro.datasets.synthetic import UniformStreamGenerator
from repro.errors import ConfigError
from repro.graph.stream import with_deletions
from repro.runtime import RuntimeConfig, StreamingQueryService
from repro.runtime.observability import (
    DEFAULT_TRACE_CAPACITY,
    Tracer,
    chrome_trace_events,
    connected_traces,
    make_context,
    parse_context,
    span_forest,
)
from conftest import ALL_BACKENDS

WINDOW = WindowSpec(size=40, slide=4)

QUERIES = {"qa": "a+", "qb": "b c"}


def make_stream(count, seed=11, deletions=0.0):
    generator = UniformStreamGenerator(
        num_vertices=40, labels=("a", "b", "c", "noise"), edges_per_timestamp=4, seed=seed
    )
    stream = list(generator.generate(count))
    if deletions > 0:
        stream = with_deletions(stream, deletions, seed=seed)
    return stream


def run_traced(make_runtime_config, backend, rate, count=800, **kwargs):
    """One ingest+drain run; returns ``(service, spans, summary)``."""
    kwargs.setdefault("batch_size", 16)
    config = make_runtime_config(backend=backend, shards=2, trace_sample_rate=rate, **kwargs)
    service = StreamingQueryService(WINDOW, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    with service:
        service.ingest(make_stream(count))
        service.drain()
        summary = service.summary()  # harvests the workers' buffered spans
    return service, service.traces_snapshot(), summary


# --------------------------------------------------------------------- #
# Tracer unit behaviour
# --------------------------------------------------------------------- #


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert tracer.enabled is False
        assert tracer.sample() is False

    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_rate_outside_unit_interval_raises(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(rate)

    def test_full_rate_always_samples(self):
        tracer = Tracer(1.0)
        assert all(tracer.sample() for _ in range(50))

    def test_span_lifecycle_records_duration_and_attrs(self):
        tracer = Tracer(1.0, process="worker-3")
        span = tracer.start_span("work", shard=3, tuples=7)
        tracer.finish(span, events=2)
        (got,) = tracer.snapshot()
        assert got["name"] == "work"
        assert got["process"] == "worker-3"
        assert got["shard"] == 3
        assert got["tuples"] == 7
        assert got["events"] == 2
        assert got["duration"] >= 0.0
        assert "_t0" not in got  # the monotonic anchor never leaks

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(1.0, capacity=4)
        for index in range(10):
            tracer.finish(tracer.start_span(f"s{index}"))
        spans = tracer.snapshot()
        assert len(spans) == 4
        assert [span["name"] for span in spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped == 6

    def test_drain_empties_the_ring(self):
        tracer = Tracer(1.0)
        tracer.finish(tracer.start_span("once"))
        assert [span["name"] for span in tracer.drain()] == ["once"]
        assert tracer.drain() == []
        assert tracer.snapshot() == []

    def test_ingest_adopts_foreign_spans_and_skips_junk(self):
        source, sink = Tracer(1.0, process="worker-1"), Tracer(1.0)
        source.finish(source.start_span("shipped"))
        shipped = source.drain()
        assert sink.ingest(shipped + ["junk", {"no": "trace_id"}]) == 1
        (got,) = sink.snapshot()
        assert got["name"] == "shipped"
        assert got["process"] == "worker-1"  # the origin lane is preserved

    def test_context_round_trips_through_parse(self):
        tracer = Tracer(1.0)
        span = tracer.start_span("root")
        ctx = tracer.context_for(span, stamp_wall=123.25)
        assert ctx == make_context(span["trace_id"], span["span_id"], 123.25)
        assert parse_context(ctx) == (span["trace_id"], span["span_id"], 123.25)

    @pytest.mark.parametrize(
        "ctx",
        [None, (), ("t",), ("t", "p"), ("t", "p", "not-a-number"), (1, "p", 0.0), "t", ["t", "p", 0.0]],
    )
    def test_parse_context_treats_malformed_as_absent(self, ctx):
        assert parse_context(ctx) is None

    def test_parse_context_tolerates_future_extra_elements(self):
        assert parse_context(("t", "p", 1.5, "future-field")) == ("t", "p", 1.5)

    def test_default_capacity(self):
        tracer = Tracer(1.0)
        assert tracer._spans.maxlen == DEFAULT_TRACE_CAPACITY


class TestRendering:
    def _linked_spans(self):
        tracer = Tracer(1.0, process="coordinator")
        root = tracer.finish(tracer.start_span("ingest", shard=0))
        child = tracer.finish(
            tracer.start_span("process_batch", trace_id=root["trace_id"], parent_id=root["span_id"], shard=0)
        )
        return tracer.snapshot(), root, child

    def test_span_forest_links_children(self):
        spans, root, child = self._linked_spans()
        forest = span_forest(spans)
        children = forest[root["trace_id"]][root["span_id"]]
        assert [span["span_id"] for span in children] == [child["span_id"]]

    def test_connected_traces_requires_single_root_and_no_dangling(self):
        spans, root, _ = self._linked_spans()
        assert connected_traces(spans) == [root["trace_id"]]
        orphan = {"trace_id": "t2", "span_id": "s1", "parent_id": "gone", "name": "x", "start": 0.0}
        two_roots = [
            {"trace_id": "t3", "span_id": "a", "parent_id": None, "name": "x", "start": 0.0},
            {"trace_id": "t3", "span_id": "b", "parent_id": None, "name": "y", "start": 0.0},
        ]
        assert connected_traces(spans + [orphan] + two_roots) == [root["trace_id"]]

    def test_chrome_trace_events_shape(self):
        spans, root, _ = self._linked_spans()
        events = chrome_trace_events(spans)
        meta = [event for event in events if event["ph"] == "M"]
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["args"]["name"] for event in meta] == ["coordinator"]
        assert len(complete) == 2
        assert {event["name"] for event in complete} == {"ingest", "process_batch"}
        assert all(event["ts"] >= 0.0 and event["dur"] >= 0.0 for event in complete)
        assert all(event["tid"] == 1 for event in complete)  # shard 0 -> tid 1
        assert complete[0]["args"]["trace_id"] == root["trace_id"]
        json.dumps(events)  # Perfetto-loadable: plain JSON

    def test_chrome_trace_events_empty(self):
        assert chrome_trace_events([]) == []


class TestConfig:
    @pytest.mark.parametrize("rate", [-0.5, 1.5])
    def test_sample_rate_outside_unit_interval_rejected(self, rate):
        with pytest.raises(ConfigError, match="trace_sample_rate"):
            RuntimeConfig(trace_sample_rate=rate)

    def test_sample_rate_round_trips_through_dict(self):
        config = RuntimeConfig(trace_sample_rate=0.25)
        assert RuntimeConfig.from_dict(config.to_dict()).trace_sample_rate == 0.25


# --------------------------------------------------------------------- #
# Connected traces across every backend
# --------------------------------------------------------------------- #


class TestCrossProcessTraces:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_connected_span_tree_on_every_backend(self, make_runtime_config, backend):
        """Coordinator root + worker child share one connected trace."""
        service, spans, _ = run_traced(make_runtime_config, backend, rate=1.0)
        processes = {span.get("process") for span in spans}
        assert "coordinator" in processes
        assert any(process.startswith("worker-") for process in processes)
        connected = set(connected_traces(spans))
        assert connected
        crossed = [
            trace_id
            for trace_id in connected
            if len({span["process"] for span in spans if span["trace_id"] == trace_id}) >= 2
        ]
        assert crossed, "no connected trace crossed a process boundary"
        names = {span["name"] for span in spans}
        assert {"ingest", "process_batch", "drain"} <= names

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_sampling_rates_are_bit_identical(self, make_runtime_config, backend):
        """Tracing is a frame sidecar: 0%, 1%, 100% sampling — same results."""
        events = {}
        for rate in (0.0, 0.01, 1.0):
            service, _, _ = run_traced(make_runtime_config, backend, rate, count=600)
            events[rate] = {name: service.result_triples(name) for name in QUERIES}
        assert events[0.0] == events[0.01] == events[1.0]

    def test_zero_rate_records_nothing(self, make_runtime_config):
        _, spans, summary = run_traced(make_runtime_config, "threading", rate=0.0)
        assert spans == []
        assert "event_latency" not in summary["totals"]

    def test_checkpoint_span_propagates(self, make_runtime_config):
        config = make_runtime_config(backend="threading", shards=2, trace_sample_rate=1.0, batch_size=16)
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(make_stream(300))
            service.drain()
            service.checkpoint()
            service.summary()
        spans = service.traces_snapshot()
        roots = [
            span
            for span in spans
            if span["name"] == "checkpoint" and span["process"] == "coordinator"
        ]
        assert len(roots) == 1
        children = [span for span in spans if span.get("parent_id") == roots[0]["span_id"]]
        assert children and all(span["process"].startswith("worker-") for span in children)


# --------------------------------------------------------------------- #
# Event-latency accounting
# --------------------------------------------------------------------- #


class TestEventLatency:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_summary_reports_latency_quantiles(self, make_runtime_config, backend):
        _, _, summary = run_traced(make_runtime_config, backend, rate=1.0)
        latency = summary["totals"]["event_latency"]
        assert latency["count"] > 0
        assert 0.0 <= latency["p50_seconds"] <= latency["p95_seconds"] <= latency["p99_seconds"]

    def test_latency_metric_family_exported(self, make_runtime_config):
        service, _, _ = run_traced(make_runtime_config, "threading", rate=1.0)
        text = service.metrics_text()
        assert "repro_event_latency_seconds_bucket" in text
        assert 'repro_event_latency_seconds_count{shard="0"}' in text


# --------------------------------------------------------------------- #
# /debug/traces endpoint
# --------------------------------------------------------------------- #


class TestTracesEndpoint:
    def test_debug_traces_serves_the_merged_span_ring(self, make_runtime_config):
        config = make_runtime_config(
            backend="threading", shards=2, trace_sample_rate=1.0, batch_size=16, metrics_port=0
        )
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        with service:
            service.ingest(make_stream(400))
            service.drain()
            service.summary()
            port = service.observability_port
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/debug/traces", timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("application/json")
                payload = json.loads(response.read().decode("utf-8"))
        spans = payload["spans"]
        assert spans and connected_traces(spans)
        assert {"coordinator", "worker-0", "worker-1"} <= {span["process"] for span in spans}


# --------------------------------------------------------------------- #
# Failover: one connected trace across coordinator, primary and standby
# --------------------------------------------------------------------- #


class TestFailoverTrace:
    def test_failover_produces_one_connected_cross_process_trace(
        self, tcp_worker_farm, standby_farm, make_runtime_config
    ):
        """Kill a primary mid-stream: the sampled trace still connects
        coordinator ingest, the dead primary's batch and the promoted
        standby's replica apply."""
        from repro.runtime import TcpWorkerServer

        primaries = [TcpWorkerServer("127.0.0.1", 0) for _ in range(2)]
        primary_addresses = tuple(f"127.0.0.1:{server.start_in_background()}" for server in primaries)
        config = make_runtime_config(
            backend="tcp+standby",
            shards=2,
            worker_addresses=primary_addresses,
            trace_sample_rate=1.0,
            batch_size=8,
            tcp_read_timeout=15.0,
        )
        service = StreamingQueryService(WINDOW, config)
        for name, expression in QUERIES.items():
            service.register(name, expression)
        stream = make_stream(1_200)
        try:
            with service:
                shard = service.router.shard_of("qa")
                half = len(stream) // 2
                service.ingest(stream[:half])
                service.drain()
                service.summary()  # harvest the primary's spans before it dies
                primaries[shard].stop()  # emulated SIGKILL: session and all
                service.ingest(stream[half:])
                service.drain()
                service.summary()  # harvest the promoted standby's spans
        finally:
            for server in primaries:
                server.stop()
        spans = service.traces_snapshot()
        assert [promo["shard"] for promo in service.promotions] == [shard]
        connected = set(connected_traces(spans))
        lanes = {}
        for span in spans:
            lanes.setdefault(span["trace_id"], set()).add(span["process"])
        full = [
            trace_id
            for trace_id, processes in lanes.items()
            if trace_id in connected
            and {"coordinator", f"worker-{shard}", f"standby-{shard}"} <= processes
        ]
        assert full, "no single connected trace spans coordinator, primary and standby"
        # The promotion itself is traced and carries the operation id that
        # stamps every promotion log line.
        (promote_span,) = [span for span in spans if span["name"] == "promote"]
        operation_id = service.promotions[0]["operation_id"]
        assert promote_span["operation_id"] == operation_id
        assert operation_id.startswith("promote-")
