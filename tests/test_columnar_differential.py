"""Property-based differential tests: columnar vs scalar RAPQ (hypothesis).

Randomized streams — deletions, repeated edges, window slides, arbitrary
batch splits, root partitioning — drive the scalar evaluator tuple at a
time and the columnar evaluator through its batch entry point.  The two
must be *bit-identical*: same result events in the same order, same
emission keys, same checkpoint.  Both kernel implementations (numpy and
the pure-Python fallback) are exercised.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

#: The kernel-implementation fixture only flips a module-level switch that
#: is constant across generated inputs, so not resetting it per input is
#: exactly the intended behavior.
_SETTINGS = {"deadline": None, "suppress_health_check": [HealthCheck.function_scoped_fixture]}

from repro import RAPQEvaluator, WindowSpec
from repro.core.checkpoint import checkpoint_rapq
from repro.core.columnar import (
    ColumnarBatch,
    ColumnarRAPQEvaluator,
    have_numpy,
    set_implementation,
)
from repro.core.partition import RootPartition
from repro.graph.tuples import EdgeOp, StreamingGraphTuple

VERTICES = ["v0", "v1", "v2", "v3", "v4", "v5"]
#: Half the labels are outside every query alphabet, so the vectorized
#: relevance pre-pass always has runs to skip.
LABELS = ["a", "b", "nx", "ny"]
QUERIES = ["a", "a b", "a+", "(a b)+", "a b*", "a* b*", "(a | b)+", "a | b a"]

IMPLEMENTATIONS = ["pure"] + (["numpy"] if have_numpy() else [])


@pytest.fixture(params=IMPLEMENTATIONS)
def kernel_impl(request):
    set_implementation(request.param)
    try:
        yield request.param
    finally:
        set_implementation(None)


@st.composite
def streams_with_deletions(draw, max_edges: int = 40) -> List[StreamingGraphTuple]:
    """Random streams with non-decreasing timestamps and explicit deletions."""
    count = draw(st.integers(min_value=1, max_value=max_edges))
    tuples: List[StreamingGraphTuple] = []
    timestamp = 1
    for _ in range(count):
        timestamp += draw(st.integers(min_value=0, max_value=3))
        source = draw(st.sampled_from(VERTICES))
        target = draw(st.sampled_from(VERTICES))
        label = draw(st.sampled_from(LABELS))
        op = EdgeOp.DELETE if draw(st.booleans()) and draw(st.booleans()) else EdgeOp.INSERT
        tuples.append(StreamingGraphTuple(timestamp, source, target, label, op))
    return tuples


@st.composite
def windows(draw) -> WindowSpec:
    size = draw(st.integers(min_value=2, max_value=14))
    slide = draw(st.integers(min_value=1, max_value=size))
    return WindowSpec(size=size, slide=slide)


@st.composite
def batch_splits(draw) -> Tuple[int, int]:
    """(first batch size, steady batch size) — covers 1-tuple batches too."""
    return (draw(st.integers(min_value=1, max_value=9)), draw(st.integers(min_value=1, max_value=17)))


def comparable_checkpoint(evaluator) -> dict:
    state = checkpoint_rapq(evaluator)
    state["stats"] = dict(state["stats"], expiry_seconds=0.0)
    return state


def assert_differential(stream, window, query, split, partition=None) -> None:
    scalar = RAPQEvaluator(query, window, partition=partition)
    scalar.process_stream(stream)

    columnar = ColumnarRAPQEvaluator(query, window, partition=partition)
    first, steady = split
    cursor = 0
    while cursor < len(stream):
        size = first if cursor == 0 else steady
        columnar.process_batch(ColumnarBatch.from_tuples(stream[cursor : cursor + size]))
        cursor += size

    assert scalar.results.to_wire() == columnar.results.to_wire()
    assert scalar.emission_keys == columnar.emission_keys
    assert comparable_checkpoint(scalar) == comparable_checkpoint(columnar)


@settings(max_examples=40, **_SETTINGS)
@given(
    stream=streams_with_deletions(),
    window=windows(),
    query=st.sampled_from(QUERIES),
    split=batch_splits(),
)
def test_columnar_matches_scalar(kernel_impl, stream, window, query, split):
    assert_differential(stream, window, query, split)


@settings(max_examples=25, **_SETTINGS)
@given(
    stream=streams_with_deletions(max_edges=30),
    window=windows(),
    query=st.sampled_from(QUERIES),
    split=batch_splits(),
    index=st.integers(min_value=0, max_value=2),
)
def test_columnar_matches_scalar_under_partitioning(kernel_impl, stream, window, query, split, index):
    assert_differential(stream, window, query, split, partition=RootPartition(index=index, count=3))
