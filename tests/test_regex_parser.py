"""Unit tests for the RPQ expression parser."""

from __future__ import annotations

import pytest

from repro.regex.ast import (
    Alternation,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    Star,
)
from repro.regex.parser import RegexSyntaxError, parse


class TestAtoms:
    def test_single_label(self):
        assert parse("follows") == Label("follows")

    def test_label_with_punctuation(self):
        assert parse("a2q") == Label("a2q")
        assert parse("has-creator") == Label("has-creator")
        assert parse("rdf:type") == Label("rdf:type")

    def test_angle_bracket_label(self):
        assert parse("<http://yago/isLocatedIn>") == Label("http://yago/isLocatedIn")

    def test_empty_parens_is_epsilon(self):
        assert parse("()") == Epsilon()

    def test_ast_passthrough(self):
        node = Star(Label("a"))
        assert parse(node) is node

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse(42)


class TestConcatenation:
    def test_whitespace_concat(self):
        assert parse("a b") == Concat(Label("a"), Label("b"))

    def test_slash_concat(self):
        assert parse("a/b/c") == Concat(Concat(Label("a"), Label("b")), Label("c"))

    def test_dot_concat(self):
        assert parse("a . b") == Concat(Label("a"), Label("b"))

    def test_concat_binds_tighter_than_alternation(self):
        assert parse("a b | c") == Alternation(Concat(Label("a"), Label("b")), Label("c"))


class TestAlternation:
    def test_pipe(self):
        assert parse("a | b") == Alternation(Label("a"), Label("b"))

    def test_plus_with_spaces_is_alternation(self):
        assert parse("a + b") == Alternation(Label("a"), Label("b"))

    def test_multi_way(self):
        node = parse("a | b | c")
        assert node == Alternation(Alternation(Label("a"), Label("b")), Label("c"))


class TestPostfixOperators:
    def test_star(self):
        assert parse("a*") == Star(Label("a"))

    def test_adjacent_plus_is_repetition(self):
        assert parse("a+") == Plus(Label("a"))

    def test_optional(self):
        assert parse("a?") == Optional(Label("a"))

    def test_group_plus(self):
        assert parse("(a | b)+") == Plus(Alternation(Label("a"), Label("b")))

    def test_star_binds_to_last_atom(self):
        assert parse("a b*") == Concat(Label("a"), Star(Label("b")))

    def test_stacked_operators(self):
        assert parse("a*?") == Optional(Star(Label("a")))


class TestPaperQueries:
    """The Table 2 shapes must all round-trip through the parser."""

    def test_q1(self):
        assert parse("a*") == Star(Label("a"))

    def test_q4_alternation_under_star(self):
        node = parse("(a1 | a2 | a3)*")
        assert isinstance(node, Star)
        assert node.labels() == frozenset({"a1", "a2", "a3"})

    def test_q9_alternation_under_plus_with_plus_separators(self):
        node = parse("(a1 + a2 + a3)+")
        assert isinstance(node, Plus)
        assert isinstance(node.inner, Alternation)

    def test_q8_optional_then_star(self):
        assert parse("a? b*") == Concat(Optional(Label("a")), Star(Label("b")))

    def test_figure1_query(self):
        node = parse("(follows mentions)+")
        assert node == Plus(Concat(Label("follows"), Label("mentions")))


class TestErrors:
    def test_empty_expression(self):
        with pytest.raises(RegexSyntaxError):
            parse("")

    def test_whitespace_only(self):
        with pytest.raises(RegexSyntaxError):
            parse("   ")

    def test_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a b")

    def test_trailing_garbage(self):
        with pytest.raises(RegexSyntaxError):
            parse("a )")

    def test_dangling_operator(self):
        with pytest.raises(RegexSyntaxError):
            parse("* a")

    def test_unterminated_angle_label(self):
        with pytest.raises(RegexSyntaxError):
            parse("<http://foo")

    def test_empty_angle_label(self):
        with pytest.raises(RegexSyntaxError):
            parse("<> a")

    def test_unexpected_character(self):
        with pytest.raises(RegexSyntaxError):
            parse("a & b")

    def test_error_reports_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("a & b")
        assert excinfo.value.position == 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "expression",
        [
            "a",
            "a b",
            "a | b",
            "(a b)+",
            "a b* c*",
            "a? b*",
            "(a | b | c)*",
            "(a | b) c*",
            "a b c",
        ],
    )
    def test_str_reparses_to_same_ast(self, expression):
        node = parse(expression)
        assert parse(str(node)) == node
