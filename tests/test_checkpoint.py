"""Tests for evaluator checkpointing (save/restore of RAPQ state)."""

from __future__ import annotations

import json

import pytest

from repro import RAPQEvaluator, WindowSpec, sgt
from repro.core.checkpoint import (
    checkpoint_rapq,
    load_checkpoint,
    restore_rapq,
    save_checkpoint,
)
from repro.regex.analysis import analyze

from helpers import insert_stream


def build_evaluator(query="(follows mentions)+", window=WindowSpec(size=15, slide=1)):
    evaluator = RAPQEvaluator(query, window)
    stream = insert_stream(
        [
            (4, "y", "u", "mentions"),
            (6, "x", "z", "follows"),
            (9, "u", "v", "follows"),
            (13, "x", "y", "follows"),
            (14, "z", "u", "mentions"),
        ]
    )
    evaluator.process_stream(stream)
    return evaluator


class TestRoundTrip:
    def test_state_is_json_serializable(self):
        state = checkpoint_rapq(build_evaluator())
        json.dumps(state)  # must not raise

    def test_restored_evaluator_has_same_answers_and_index(self):
        original = build_evaluator()
        restored = restore_rapq(checkpoint_rapq(original))
        assert restored.answer_pairs() == original.answer_pairs()
        assert restored.index.size_summary() == original.index.size_summary()
        assert restored.snapshot.num_edges == original.snapshot.num_edges
        assert restored.current_time == original.current_time

    def test_restored_evaluator_continues_identically(self):
        """Processing the rest of the stream after restore gives the same results
        as never checkpointing at all."""
        full_stream = insert_stream(
            [
                (4, "y", "u", "mentions"),
                (6, "x", "z", "follows"),
                (9, "u", "v", "follows"),
                (13, "x", "y", "follows"),
                (14, "z", "u", "mentions"),
                (15, "u", "x", "mentions"),
                (18, "v", "y", "mentions"),
                (19, "w", "u", "follows"),
                (25, "x", "y", "follows"),
                (26, "y", "u", "mentions"),
            ]
        )
        window = WindowSpec(size=15, slide=1)
        uninterrupted = RAPQEvaluator("(follows mentions)+", window)
        uninterrupted.process_stream(full_stream)

        first_half, second_half = full_stream[:5], full_stream[5:]
        before = RAPQEvaluator("(follows mentions)+", window)
        before.process_stream(first_half)
        resumed = restore_rapq(checkpoint_rapq(before))
        resumed.process_stream(second_half)

        assert resumed.answer_pairs() == uninterrupted.answer_pairs()
        assert resumed.index.size_summary() == uninterrupted.index.size_summary()

    def test_file_round_trip(self, tmp_path):
        original = build_evaluator()
        path = save_checkpoint(original, tmp_path / "state.json")
        restored = load_checkpoint(path)
        assert restored.answer_pairs() == original.answer_pairs()

    def test_integer_vertices_round_trip(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream([(1, 1, 2, "a"), (2, 2, 3, "a")]))
        restored = restore_rapq(checkpoint_rapq(evaluator))
        assert restored.answer_pairs() == {(1, 2), (1, 3), (2, 3)}

    def test_result_events_preserved_including_invalidations(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "u", "v", "a").as_delete(2))
        restored = restore_rapq(checkpoint_rapq(evaluator))
        assert restored.active_pairs() == set()
        assert restored.answer_pairs() == {("u", "v")}

    def test_explicit_semantics_preserved(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5), result_semantics="explicit")
        evaluator.process(sgt(1, "u", "v", "a"))
        restored = restore_rapq(checkpoint_rapq(evaluator))
        assert restored.result_semantics == "explicit"


class TestValidation:
    def test_unknown_format_rejected(self):
        state = checkpoint_rapq(build_evaluator())
        state["format"] = 99
        with pytest.raises(ValueError):
            restore_rapq(state)

    def test_mismatched_analysis_rejected(self):
        state = checkpoint_rapq(build_evaluator())
        with pytest.raises(ValueError):
            restore_rapq(state, query=analyze("somethingelse+"))

    def test_matching_precompiled_analysis_accepted(self):
        original = build_evaluator()
        analysis = original.analysis
        restored = restore_rapq(checkpoint_rapq(original), query=analysis)
        assert restored.analysis is analysis

    def test_corrupt_tree_rejected(self):
        state = checkpoint_rapq(build_evaluator())
        for tree in state["trees"]:
            for node in tree["nodes"]:
                node["parent_vertex"] = "nonexistent"
        if any(tree["nodes"] for tree in state["trees"]):
            with pytest.raises(ValueError):
                restore_rapq(state)

    def test_unsupported_vertex_type_rejected(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(1, ("tuple", "vertex"), "b", "a"))
        with pytest.raises(TypeError):
            checkpoint_rapq(evaluator)


class TestRobustLoading:
    """Truncated / corrupted / unknown blobs fail with a clean CheckpointError."""

    def test_truncated_blob_reports_the_offset(self):
        from repro.core.checkpoint import decode_rapq, encode_rapq
        from repro.errors import CheckpointError

        blob = encode_rapq(build_evaluator())
        with pytest.raises(CheckpointError, match="offset"):
            decode_rapq(blob[: len(blob) // 2])

    def test_non_utf8_blob_reports_the_byte(self):
        from repro.core.checkpoint import decode_rapq
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError, match="not UTF-8 at byte"):
            decode_rapq(b"\xff\xfe broken")

    def test_unknown_format_is_a_checkpoint_error(self):
        from repro.errors import CheckpointError

        state = checkpoint_rapq(build_evaluator())
        state["format"] = 99
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            restore_rapq(state)
        # and still a ValueError for callers that predate CheckpointError
        assert issubclass(CheckpointError, ValueError)

    def test_missing_section_names_the_query_not_a_keyerror(self):
        from repro.errors import CheckpointError

        state = checkpoint_rapq(build_evaluator())
        del state["snapshot"]
        with pytest.raises(CheckpointError, match="corrupt checkpoint for query"):
            restore_rapq(state)

    def test_non_dict_blob_is_rejected(self):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError, match="dict of sections"):
            restore_rapq(["not", "a", "checkpoint"])

    def test_truncated_checkpoint_file_names_the_file(self, tmp_path):
        from repro.errors import CheckpointError

        path = save_checkpoint(build_evaluator(), tmp_path / "ckpt.json")
        path.write_bytes(path.read_bytes()[:-30])
        with pytest.raises(CheckpointError, match="ckpt.json"):
            load_checkpoint(path)
