"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.stream import read_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_arguments(self):
        args = build_parser().parse_args(["compile", "--query", "a b*"])
        assert args.command == "compile"
        assert args.query == "a b*"

    def test_run_arguments_defaults(self):
        args = build_parser().parse_args(
            ["run", "--query", "a", "--input", "x.csv", "--window", "10"]
        )
        assert args.slide == 1
        assert args.semantics == "arbitrary"
        assert args.deletions == 0.0

    def test_experiment_requires_figure_or_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])
        args = build_parser().parse_args(["experiment", "--figure", "7"])
        assert args.figure == 7


class TestCompileCommand:
    def test_prints_automaton_facts(self, capsys):
        exit_code = main(["compile", "--query", "(follows mentions)+"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "minimal DFA" in captured
        assert "follows" in captured

    def test_dot_output(self, capsys):
        main(["compile", "--query", "a b", "--dot"])
        assert "digraph" in capsys.readouterr().out


class TestGenerateAndRun:
    def test_generate_then_run(self, tmp_path, capsys):
        output = tmp_path / "yago.csv"
        exit_code = main(
            ["generate", "--dataset", "yago", "--edges", "400", "--seed", "3", "--output", str(output)]
        )
        assert exit_code == 0
        assert output.exists()
        stream = read_csv(output)
        assert len(list(stream)) == 400

        capsys.readouterr()  # clear
        exit_code = main(
            [
                "run",
                "--query", "isLocatedIn+",
                "--input", str(output),
                "--window", "8",
                "--slide", "2",
                "--show-results", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "distinct results" in captured
        assert "throughput" in captured

    def test_run_with_deletions_and_limit(self, tmp_path, capsys):
        output = tmp_path / "so.csv"
        main(["generate", "--dataset", "stackoverflow", "--edges", "300", "--output", str(output)])
        capsys.readouterr()
        exit_code = main(
            [
                "run",
                "--query", "a2q",
                "--input", str(output),
                "--window", "6",
                "--deletions", "0.05",
                "--limit", "200",
                "--semantics", "arbitrary",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "tuples processed : 2" in captured  # 200 + injected deletions


class TestExperimentCommand:
    def test_figure7(self, capsys):
        exit_code = main(["experiment", "--figure", "7"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured

    def test_table4_tiny(self, capsys):
        exit_code = main(["experiment", "--table", "4", "--scale", "tiny"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 4" in captured
        assert "Q11" in captured
