"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.stream import read_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_arguments(self):
        args = build_parser().parse_args(["compile", "--query", "a b*"])
        assert args.command == "compile"
        assert args.query == "a b*"

    def test_run_arguments_defaults(self):
        args = build_parser().parse_args(["run", "--query", "a", "--input", "x.csv", "--window", "10"])
        assert args.slide == 1
        assert args.semantics == "arbitrary"
        assert args.deletions == 0.0

    def test_experiment_requires_figure_or_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])
        args = build_parser().parse_args(["experiment", "--figure", "7"])
        assert args.figure == 7


class TestCompileCommand:
    def test_prints_automaton_facts(self, capsys):
        exit_code = main(["compile", "--query", "(follows mentions)+"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "minimal DFA" in captured
        assert "follows" in captured

    def test_dot_output(self, capsys):
        main(["compile", "--query", "a b", "--dot"])
        assert "digraph" in capsys.readouterr().out


class TestGenerateAndRun:
    def test_generate_then_run(self, tmp_path, capsys):
        output = tmp_path / "yago.csv"
        exit_code = main(
            ["generate", "--dataset", "yago", "--edges", "400", "--seed", "3", "--output", str(output)]
        )
        assert exit_code == 0
        assert output.exists()
        stream = read_csv(output)
        assert len(list(stream)) == 400

        capsys.readouterr()  # clear
        exit_code = main(
            [
                "run",
                "--query",
                "isLocatedIn+",
                "--input",
                str(output),
                "--window",
                "8",
                "--slide",
                "2",
                "--show-results",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "distinct results" in captured
        assert "throughput" in captured

    def test_run_with_deletions_and_limit(self, tmp_path, capsys):
        output = tmp_path / "so.csv"
        main(["generate", "--dataset", "stackoverflow", "--edges", "300", "--output", str(output)])
        capsys.readouterr()
        exit_code = main(
            [
                "run",
                "--query",
                "a2q",
                "--input",
                str(output),
                "--window",
                "6",
                "--deletions",
                "0.05",
                "--limit",
                "200",
                "--semantics",
                "arbitrary",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "tuples processed : 2" in captured  # 200 + injected deletions


class TestShardedRun:
    def test_run_with_shards_matches_single_threaded(self, tmp_path, capsys):
        output = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "400", "--seed", "3", "--output", str(output)])
        capsys.readouterr()
        base = ["run", "--query", "isLocatedIn+", "--input", str(output), "--window", "8", "--slide", "2"]
        assert main(base) == 0
        single = capsys.readouterr().out
        assert main(base + ["--shards", "3", "--batch-size", "16"]) == 0
        sharded = capsys.readouterr().out
        assert "3 shard(s)" in sharded

        def distinct(text):
            for line in text.splitlines():
                if line.startswith("distinct results"):
                    return int(line.split(":")[1].split("(")[0].strip())
            raise AssertionError(f"no distinct results line in {text!r}")

        assert distinct(sharded) == distinct(single)

    def test_run_with_multiprocessing_backend_matches_single_threaded(self, tmp_path, capsys):
        output = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "300", "--seed", "5", "--output", str(output)])
        capsys.readouterr()
        base = ["run", "--query", "isLocatedIn+", "--input", str(output), "--window", "8", "--slide", "2"]
        assert main(base) == 0
        single = capsys.readouterr().out
        assert main(base + ["--shards", "2", "--backend", "multiprocessing"]) == 0
        sharded = capsys.readouterr().out
        assert "backend=multiprocessing" in sharded

        def distinct(text):
            for line in text.splitlines():
                if line.startswith("distinct results"):
                    return int(line.split(":")[1].split("(")[0].strip())
            raise AssertionError(f"no distinct results line in {text!r}")

        assert distinct(sharded) == distinct(single)

    def test_run_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--query", "a", "--input", "x.csv", "--window", "5", "--backend", "gevent"]
            )

    def test_run_sharded_reports_worker_failure(self, tmp_path, capsys, monkeypatch):
        output = tmp_path / "so.csv"
        main(["generate", "--dataset", "stackoverflow", "--edges", "50", "--output", str(output)])
        capsys.readouterr()
        from repro import ShardWorkerError
        from repro.runtime import StreamingQueryService

        def boom(self, tuples):
            raise ShardWorkerError("shard 0 failed while processing: budget exceeded", 0)

        monkeypatch.setattr(StreamingQueryService, "ingest", boom)
        exit_code = main(["run", "--query", "a2q+", "--input", str(output), "--window", "5", "--shards", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "failed: " in captured


class TestServeCommand:
    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--input", "x.csv", "--window", "10", "--query", "a+", "--query", "chains=b+"]
        )
        assert args.command == "serve"
        assert args.queries == ["a+", "chains=b+"]
        assert args.shards == 2
        assert args.policy == "hash"

    def test_serve_end_to_end(self, tmp_path, capsys):
        output = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "400", "--seed", "3", "--output", str(output)])
        capsys.readouterr()
        checkpoint = tmp_path / "service.json"
        exit_code = main(
            [
                "serve",
                "--input",
                str(output),
                "--window",
                "8",
                "--shards",
                "3",
                "--policy",
                "label_affinity",
                "--query",
                "places=isLocatedIn+",
                "--query",
                "isConnectedTo+",
                "--checkpoint",
                str(checkpoint),
                "--show-results",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        # Diagnostics go to the log stream on stderr; results stay on stdout.
        assert "registered 'places'" in captured.err
        assert "registered 'q1'" in captured.err
        assert "3 shard(s), backend=threading, policy=label_affinity" in captured.out
        assert "shard 0:" in captured.out and "shard 2:" in captured.out
        assert "query 'places':" in captured.out
        assert checkpoint.exists()

    def test_serve_reports_worker_failure(self, tmp_path, capsys, monkeypatch):
        output = tmp_path / "so.csv"
        main(["generate", "--dataset", "stackoverflow", "--edges", "50", "--output", str(output)])
        capsys.readouterr()
        from repro import ShardWorkerError
        from repro.runtime import StreamingQueryService

        def boom(self, tuples):
            raise ShardWorkerError("shard 1 failed while processing: boom", 1)

        monkeypatch.setattr(StreamingQueryService, "ingest", boom)
        exit_code = main(["serve", "--input", str(output), "--window", "5", "--query", "a2q+"])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "failed: " in captured

    def test_serve_rejects_malformed_query(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--input", "x.csv", "--window", "5", "--query", "=a+"])

    def test_serve_rejects_duplicate_names(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--input", "x.csv", "--window", "5", "--query", "q=a+", "--query", "q=b+"])

    def test_serve_rejects_rebalancing_on_a_single_shard(self, tmp_path):
        args = ["serve", "--input", "x.csv", "--window", "5", "--query", "a+"]
        with pytest.raises(SystemExit, match="shards=1"):
            main(args + ["--shards", "1", "--rebalance", "load_aware"])


class TestMigrateCommand:
    def make_checkpoint(self, tmp_path, capsys):
        stream = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "300", "--seed", "3", "--output", str(stream)])
        checkpoint = tmp_path / "service.json"
        main(
            [
                "serve",
                "--input",
                str(stream),
                "--window",
                "8",
                "--shards",
                "3",
                "--query",
                "places=isLocatedIn+",
                "--query",
                "deals=dealsWith+",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        capsys.readouterr()
        return checkpoint

    def test_migrate_rewrites_the_checkpoint(self, tmp_path, capsys):
        from repro.runtime import StreamingQueryService

        checkpoint = self.make_checkpoint(tmp_path, capsys)
        before = StreamingQueryService.load_checkpoint(checkpoint)
        source = before.router.shard_of("places")
        target = (source + 1) % 3
        expected = before.results("places").distinct_pairs

        exit_code = main(
            ["migrate", "--checkpoint", str(checkpoint), "--query", "places", "--to-shard", str(target)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"shard {source} -> {target}" in captured

        after = StreamingQueryService.load_checkpoint(checkpoint)
        assert after.router.shard_of("places") == target
        assert after.results("places").distinct_pairs == expected

    def test_migrate_unknown_query_fails_cleanly(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        with pytest.raises(SystemExit, match="no query named"):
            main(["migrate", "--checkpoint", str(checkpoint), "--query", "ghost", "--to-shard", "0"])

    def test_migrate_out_of_range_shard_fails_cleanly(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        with pytest.raises(SystemExit, match="out of range"):
            main(["migrate", "--checkpoint", str(checkpoint), "--query", "places", "--to-shard", "9"])

    def test_migrate_missing_checkpoint_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load checkpoint"):
            main(["migrate", "--checkpoint", str(tmp_path / "nope.json"), "--query", "q", "--to-shard", "0"])


class TestSplitCommand:
    def make_checkpoint(self, tmp_path, capsys):
        stream = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "300", "--seed", "3", "--output", str(stream)])
        checkpoint = tmp_path / "service.json"
        main(
            [
                "serve",
                "--input",
                str(stream),
                "--window",
                "8",
                "--shards",
                "3",
                "--query",
                "places=isLocatedIn+",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        capsys.readouterr()
        return checkpoint

    def test_split_rewrites_the_checkpoint(self, tmp_path, capsys):
        from repro.runtime import StreamingQueryService

        checkpoint = self.make_checkpoint(tmp_path, capsys)
        before = StreamingQueryService.load_checkpoint(checkpoint)
        expected = before.results("places").events

        exit_code = main(["split", "--checkpoint", str(checkpoint), "--query", "places"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "3 root partitions" in captured

        after = StreamingQueryService.load_checkpoint(checkpoint)
        assert after.partitions_of("places") == 3
        assert after.results("places").events == expected

    def test_split_unknown_query_fails_cleanly(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        with pytest.raises(SystemExit, match="no query named"):
            main(["split", "--checkpoint", str(checkpoint), "--query", "ghost"])

    def test_split_bad_partition_count_fails_cleanly(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        with pytest.raises(SystemExit, match="between 2 and"):
            main(["split", "--checkpoint", str(checkpoint), "--query", "places", "--partitions", "9"])

    def test_re_split_fails_cleanly(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        assert main(["split", "--checkpoint", str(checkpoint), "--query", "places"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already split"):
            main(["split", "--checkpoint", str(checkpoint), "--query", "places"])

    def test_migrate_of_split_query_needs_partition_flag(self, tmp_path, capsys):
        checkpoint = self.make_checkpoint(tmp_path, capsys)
        assert main(["split", "--checkpoint", str(checkpoint), "--query", "places"]) == 0
        capsys.readouterr()
        # without --partition: a clean message, not a KeyError traceback
        with pytest.raises(SystemExit, match="partition"):
            main(["migrate", "--checkpoint", str(checkpoint), "--query", "places", "--to-shard", "0"])

    def test_migrate_moves_one_partition_of_a_split_query(self, tmp_path, capsys):
        from repro.runtime import StreamingQueryService

        checkpoint = self.make_checkpoint(tmp_path, capsys)
        assert main(["split", "--checkpoint", str(checkpoint), "--query", "places"]) == 0
        before = StreamingQueryService.load_checkpoint(checkpoint)
        expected = before.results("places").events
        source = before.shard_of("places", partition=1)
        target = (source + 1) % 3
        capsys.readouterr()

        exit_code = main(
            [
                "migrate",
                "--checkpoint",
                str(checkpoint),
                "--query",
                "places",
                "--partition",
                "1",
                "--to-shard",
                str(target),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"shard {source} -> {target}" in captured
        after = StreamingQueryService.load_checkpoint(checkpoint)
        assert after.shard_of("places", partition=1) == target
        assert after.results("places").events == expected


class TestPartitionedRun:
    def test_run_with_partitions_matches_single_threaded(self, tmp_path, capsys):
        stream = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "400", "--seed", "5", "--output", str(stream)])
        capsys.readouterr()
        base = ["run", "--query", "isLocatedIn+", "--input", str(stream), "--window", "12"]
        assert main(base) == 0
        single = capsys.readouterr().out
        assert main(base + ["--shards", "3", "--partitions", "3"]) == 0
        partitioned = capsys.readouterr().out

        def distinct(text):
            for line in text.splitlines():
                if line.startswith("distinct results"):
                    return line.split(":")[1].split("(")[0].strip()
            raise AssertionError(f"no distinct results line in {text!r}")

        assert distinct(single) == distinct(partitioned)
        assert "partitions=3" in partitioned

    def test_run_rejects_partitions_beyond_shards(self, tmp_path):
        stream = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "50", "--seed", "5", "--output", str(stream)])
        with pytest.raises(SystemExit, match="cannot exceed shards"):
            main(
                [
                    "run",
                    "--query",
                    "isLocatedIn+",
                    "--input",
                    str(stream),
                    "--window",
                    "12",
                    "--shards",
                    "2",
                    "--partitions",
                    "3",
                ]
            )

    def test_serve_rejects_partitioned_simple_semantics(self, tmp_path):
        stream = tmp_path / "yago.csv"
        main(["generate", "--dataset", "yago", "--edges", "50", "--seed", "5", "--output", str(stream)])
        with pytest.raises(SystemExit, match="arbitrary"):
            main(
                [
                    "serve",
                    "--input",
                    str(stream),
                    "--window",
                    "12",
                    "--shards",
                    "2",
                    "--partitions",
                    "2",
                    "--semantics",
                    "simple",
                    "--query",
                    "q=isLocatedIn isLocatedIn*",
                ]
            )


class TestExperimentCommand:
    def test_figure7(self, capsys):
        exit_code = main(["experiment", "--figure", "7"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured

    def test_table4_tiny(self, capsys):
        exit_code = main(["experiment", "--table", "4", "--scale", "tiny"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 4" in captured
        assert "Q11" in captured
