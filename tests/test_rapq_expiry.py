"""Tests for window maintenance (Algorithm ExpiryRAPQ, §3.1)."""

from __future__ import annotations

from repro import RAPQEvaluator, WindowSpec, sgt
from repro.regex.dfa import compile_query

from helpers import insert_stream, streaming_oracle


class TestExpiryBasics:
    def test_expired_edges_leave_the_snapshot(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(12, "p", "q", "a"))  # crosses a slide boundary
        assert not evaluator.snapshot.has_edge("u", "v", "a")
        assert evaluator.snapshot.has_edge("p", "q", "a")

    def test_expired_nodes_leave_the_index(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        assert evaluator.index.num_nodes > 0
        evaluator.process(sgt(20, "p", "q", "a"))
        vertices_in_index = {node.vertex for tree in evaluator.index.trees() for node in tree.nodes()}
        assert "u" not in vertices_in_index
        assert "v" not in vertices_in_index

    def test_trees_reduced_to_roots_are_discarded(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        assert evaluator.index.num_trees == 1
        evaluator.process(sgt(20, "p", "q", "a"))
        roots = {tree.root_vertex for tree in evaluator.index.trees()}
        assert roots == {"p"}

    def test_expire_now_is_idempotent(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(3, "v", "w", "a"))
        first = evaluator.expire_now()
        second = evaluator.expire_now()
        assert second == 0
        assert first == 0  # nothing expired yet: both edges still in window

    def test_expiry_counts_in_stats(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        assert evaluator.stats["expiry_runs"] >= 1
        assert evaluator.stats["nodes_expired"] >= 1
        assert evaluator.stats["expiry_seconds"] >= 0.0


class TestExpiryReconnection:
    def test_example_3_2_reconnection(self, figure1_stream, figure1_query):
        """Example 3.2: after the edge at t=19, (u, final) survives through (z, 1).

        The path through the expired edge (y, mentions, u)@4 is gone, but the
        edge (z, mentions, u)@14 still supports u in the accepting state, so
        the result (x, u) keeps a valid derivation in the tree.
        """
        evaluator = RAPQEvaluator(figure1_query, WindowSpec(size=15, slide=1))
        for tup in figure1_stream:
            evaluator.process(tup)
        tree = evaluator.index.get("x")
        assert tree is not None
        accepting = evaluator.dfa.finals
        u_final = [tree.get((v, s)) for (v, s) in tree.node_keys() if v == "u" and s in accepting]
        assert u_final, "(u, accepting) should have been reconnected via (z, 1)"
        node = u_final[0]
        # its surviving path timestamp is the one through (x->z@6, z->u@14)
        assert node.timestamp == 6

    def test_reconnection_keeps_answers_consistent_with_oracle(self):
        """A long chain whose head expires: the tail must be rebuilt correctly."""
        window = WindowSpec(size=6, slide=2)
        stream = insert_stream(
            [
                (1, "a", "b", "x"),
                (2, "b", "c", "x"),
                (3, "c", "d", "x"),
                (8, "e", "b", "x"),   # alternative support for b after (a,b) expires
                (9, "d", "e2", "x"),
                (10, "b", "f", "x"),
            ]
        )
        evaluator = RAPQEvaluator("x+", window)
        evaluator.process_stream(stream)
        expected = streaming_oracle(stream, compile_query("x+"), window.size)
        assert evaluator.answer_pairs() == expected

    def test_no_results_from_expired_support(self):
        """After the only first hop expired, no new join may use it."""
        evaluator = RAPQEvaluator("a b", WindowSpec(size=4, slide=2))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(10, "v", "w", "b"))
        assert evaluator.answer_pairs() == set()

    def test_rediscovery_after_expiry_is_reported_again(self):
        """A pair whose support expired and then re-appeared is re-derivable."""
        evaluator = RAPQEvaluator("a", WindowSpec(size=4, slide=2))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "w", "z", "a"))   # (u, v) support long gone
        evaluator.process(sgt(21, "u", "v", "a"))   # re-inserted
        assert ("u", "v") in evaluator.answer_pairs()
        positives = [e for e in evaluator.results.positives() if e.pair == ("u", "v")]
        assert len(positives) == 2


class TestLazyExpiry:
    def test_no_expiry_inside_a_slide_interval(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(4, "v", "w", "a"))  # same slide pane: no expiry yet
        assert evaluator.stats["expiry_runs"] == 0
        # the stale edge is still physically present (lazy expiration) ...
        assert evaluator.snapshot.has_edge("u", "v", "a")

    def test_stale_edges_are_not_used_even_before_physical_expiry(self):
        """Lazy expiration never lets an out-of-window edge contribute to a result.

        With |W| = beta = 100, the boundary at t=100 expires only edges with
        timestamp <= 0, so the edge at t=95 is still physically present when
        the edge at t=199 arrives — but it is outside the window (99, 199]
        and must not contribute to a result.
        """
        evaluator = RAPQEvaluator("a b", WindowSpec(size=100, slide=100))
        evaluator.process(sgt(95, "u", "v", "a"))
        evaluator.process(sgt(199, "v", "w", "b"))
        assert evaluator.stats["expiry_runs"] == 1
        assert evaluator.snapshot.has_edge("u", "v", "a")  # lazy: not yet pruned
        assert evaluator.answer_pairs() == set()

    def test_results_identical_for_eager_and_lazy_expiration(self):
        """Beta only affects when cleanup happens, never the answer set."""
        stream = insert_stream([(t, f"v{t % 5}", f"v{(t * 3 + 1) % 5}", "a") for t in range(1, 40)])
        eager = RAPQEvaluator("a+", WindowSpec(size=8, slide=1))
        lazy = RAPQEvaluator("a+", WindowSpec(size=8, slide=8))
        eager.process_stream(stream)
        lazy.process_stream(stream)
        assert eager.answer_pairs() == lazy.answer_pairs()
