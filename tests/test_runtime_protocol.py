"""Tests for the runtime wire protocol and its encodings.

Everything that crosses a worker boundary must round-trip through the
compact wire forms: streaming graph tuples, result events/streams,
evaluator state blobs and exceptions.  Plus the construction-time
validation of :class:`~repro.runtime.RuntimeConfig`.
"""

from __future__ import annotations

import pytest

from repro import ConfigError, WindowSpec, WireProtocolError, sgt
from repro.core.checkpoint import checkpoint_rapq, decode_rapq, encode_rapq
from repro.core.rapq import RAPQEvaluator
from repro.core.results import ResultEvent, ResultStream
from repro.errors import ConflictBudgetExceeded, ShardWorkerError, StreamOrderError
from repro.graph.tuples import EdgeOp, StreamingGraphTuple
from repro.runtime import RuntimeConfig, ShardEngineServer, create_worker
from repro.runtime import protocol


class TestTupleWireForm:
    def test_insert_round_trip(self):
        tup = sgt(7, "alice", "bob", "follows")
        assert StreamingGraphTuple.from_wire(tup.to_wire()) == tup

    def test_delete_round_trip(self):
        tup = sgt(9, 4, 5, "pays", EdgeOp.DELETE)
        wire = tup.to_wire()
        assert wire == (9, 4, 5, "pays", "-")
        restored = StreamingGraphTuple.from_wire(wire)
        assert restored == tup and restored.is_delete

    def test_batch_codec(self):
        batch = [sgt(1, "a", "b", "x"), sgt(2, "b", "c", "y", EdgeOp.DELETE)]
        assert protocol.decode_batch(protocol.encode_batch(batch)) == batch


class TestResultWireForm:
    def test_event_round_trip(self):
        event = ResultEvent(timestamp=3, source="x", target="y", positive=False)
        assert ResultEvent.from_wire(event.to_wire()) == event

    def test_stream_round_trip_preserves_bookkeeping(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        stream.report("a", "c", 2)
        stream.invalidate("a", "b", 3)
        copy = ResultStream.from_wire(stream.to_wire())
        assert copy.events == stream.events
        assert copy.distinct_pairs == stream.distinct_pairs
        assert copy.active_pairs == stream.active_pairs == {("a", "c")}


class TestEvaluatorBlobCodec:
    def test_encode_decode_round_trip(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=10, slide=2))
        for tup in [sgt(1, "u", "v", "a"), sgt(2, "v", "w", "a"), sgt(3, "u", "v", "a", EdgeOp.DELETE)]:
            evaluator.process(tup)
        blob = encode_rapq(evaluator)
        assert isinstance(blob, bytes)
        restored = decode_rapq(blob)
        assert checkpoint_rapq(restored) == checkpoint_rapq(evaluator)
        assert restored.answer_pairs() == evaluator.answer_pairs()


class TestExceptionCodec:
    @pytest.mark.parametrize(
        "exc",
        [
            ValueError("bad value"),
            KeyError("missing"),
            StreamOrderError("timestamps must be non-decreasing"),
            ConflictBudgetExceeded("tree grew beyond 10 nodes"),
            ShardWorkerError("shard 3 failed"),
        ],
    )
    def test_known_types_round_trip(self, exc):
        restored = protocol.decode_exception(protocol.encode_exception(exc))
        assert type(restored) is type(exc)
        assert str(exc) in str(restored) or str(restored) == str(exc)

    def test_unknown_type_degrades_to_runtime_error(self):
        class Exotic(Exception):
            pass

        restored = protocol.decode_exception(protocol.encode_exception(Exotic("boom")))
        assert isinstance(restored, RuntimeError)
        assert "Exotic" in str(restored) and "boom" in str(restored)


class TestShardEngineServer:
    def make_server(self):
        return ShardEngineServer(0, WindowSpec(size=10, slide=1), RuntimeConfig(shards=1))

    def test_register_process_results(self):
        server = self.make_server()
        server.execute(protocol.REGISTER, ("q", "a+", "arbitrary", None, None))
        events = server.process_batch(
            protocol.encode_batch([sgt(1, "u", "v", "a"), sgt(2, "v", "w", "a")]),
            collect_results=True,
        )
        assert ("q", "u", "v", 1) in events and ("q", "u", "w", 2) in events
        wire = server.execute(protocol.RESULTS, "q")
        assert ResultStream.from_wire(wire).distinct_pairs == {("u", "v"), ("u", "w"), ("v", "w")}
        assert server.execute(protocol.METRICS, None)["tuples"] == 2.0

    def test_checkpoint_and_restore_ops(self):
        server = self.make_server()
        server.execute(protocol.REGISTER, ("q", "a+", "arbitrary", None, None))
        server.process_batch(protocol.encode_batch([sgt(1, "u", "v", "a")]), collect_results=False)
        blob = server.execute(protocol.CHECKPOINT, "q")
        other = self.make_server()
        other.execute(protocol.RESTORE, ("q", "arbitrary", blob))
        assert other.engine.query("q").answer_pairs() == {("u", "v")}

    def test_unknown_op_raises_wire_protocol_error(self):
        with pytest.raises(WireProtocolError):
            self.make_server().execute("REWIND", None)

    def test_bootstrap_replays_into_equivalent_server(self):
        server = self.make_server()
        server.execute(protocol.REGISTER, ("arb", "a+", "arbitrary", None, None))
        server.execute(protocol.REGISTER, ("simple", "b b*", "simple", 50, None))
        clone = self.make_server()
        for op, payload in server.export_bootstrap():
            clone.execute(op, payload)
        assert {q.name for q in clone.engine.queries()} == {"arb", "simple"}
        assert clone.engine.query("simple").evaluator.max_nodes_per_tree == 50


class TestRuntimeConfigValidation:
    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ConfigError, match="threading.*multiprocessing"):
            RuntimeConfig(backend="gevent")

    def test_unknown_sharding_lists_choices(self):
        with pytest.raises(ConfigError, match="round_robin.*hash.*label_affinity"):
            RuntimeConfig(sharding="range")

    @pytest.mark.parametrize("kwargs", [{"shards": 0}, {"batch_size": 0}, {"queue_depth": -1}])
    def test_out_of_range_values(self, kwargs):
        with pytest.raises(ConfigError):
            RuntimeConfig(**kwargs)

    def test_config_error_is_a_value_error(self):
        # Callers that predate ConfigError catch ValueError; keep that working.
        with pytest.raises(ValueError):
            RuntimeConfig(backend="gevent")

    def test_create_worker_guards_against_registry_drift(self):
        # RuntimeConfig validates the backend, so this path needs a raw config.
        config = RuntimeConfig()
        object.__setattr__(config, "backend", "gevent")
        with pytest.raises(ValueError, match="unknown worker backend"):
            create_worker(0, WindowSpec(size=5), config)
