"""Property-based tests for the window substrate (snapshot graph and windows)."""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.graph.snapshot import SnapshotGraph
from repro.graph.stream import with_deletions
from repro.graph.tuples import StreamingGraphTuple
from repro.graph.window import SlidingWindow, WindowSpec

VERTICES = ["a", "b", "c", "d"]
LABELS = ["x", "y"]


@st.composite
def edge_operations(draw, max_ops: int = 40):
    """A random sequence of insert/delete/expire operations on a snapshot."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    operations = []
    timestamp = 0
    for _ in range(count):
        timestamp += draw(st.integers(min_value=0, max_value=3))
        kind = draw(st.sampled_from(["insert", "insert", "insert", "delete", "expire"]))
        source = draw(st.sampled_from(VERTICES))
        target = draw(st.sampled_from(VERTICES))
        label = draw(st.sampled_from(LABELS))
        operations.append((kind, timestamp, source, target, label))
    return operations


def reference_state(operations) -> dict:
    """Trivially correct model of the snapshot: a dict of live edges."""
    live = {}
    for kind, timestamp, source, target, label in operations:
        key = (source, target, label)
        if kind == "insert":
            live[key] = max(live.get(key, timestamp), timestamp)
        elif kind == "delete":
            live.pop(key, None)
        elif kind == "expire":
            watermark = timestamp - 5
            live = {k: ts for k, ts in live.items() if ts > watermark}
    return live


@settings(max_examples=120, deadline=None)
@given(edge_operations())
def test_snapshot_matches_reference_model(operations):
    snapshot = SnapshotGraph()
    for kind, timestamp, source, target, label in operations:
        if kind == "insert":
            snapshot.insert(source, target, label, timestamp)
        elif kind == "delete":
            snapshot.delete(source, target, label)
        elif kind == "expire":
            snapshot.expire(timestamp - 5)
    expected = reference_state(operations)
    actual = {(e.source, e.target, e.label): e.timestamp for e in snapshot.edges()}
    assert actual == expected


@settings(max_examples=120, deadline=None)
@given(edge_operations())
def test_snapshot_in_and_out_edges_are_consistent(operations):
    snapshot = SnapshotGraph()
    for kind, timestamp, source, target, label in operations:
        if kind == "insert":
            snapshot.insert(source, target, label, timestamp)
        elif kind == "delete":
            snapshot.delete(source, target, label)
        elif kind == "expire":
            snapshot.expire(timestamp - 5)
    forward = {(e.source, e.target, e.label, e.timestamp) for e in snapshot.edges()}
    backward = {
        (e.source, e.target, e.label, e.timestamp)
        for vertex in snapshot.vertices()
        for e in snapshot.in_edges(vertex)
    }
    assert forward == backward
    assert len(forward) == snapshot.num_edges


@settings(max_examples=100, deadline=None)
@given(
    timestamps=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=50),
    size=st.integers(min_value=1, max_value=30),
    slide_fraction=st.integers(min_value=1, max_value=10),
)
def test_sliding_window_boundaries_are_monotone_and_aligned(timestamps, size, slide_fraction):
    slide = max(1, size // slide_fraction)
    window = SlidingWindow(WindowSpec(size=size, slide=slide))
    previous_boundary = None
    for timestamp in sorted(timestamps):
        crossed = window.observe(timestamp)
        for boundary in crossed:
            assert boundary % slide == 0
            if previous_boundary is not None:
                assert boundary > previous_boundary
            previous_boundary = boundary
        # under eager evaluation the newest tuple is always valid w.r.t. the
        # watermark tau - |W| (the formal window interval of Definition 5 only
        # advances at slide boundaries, so spec.contains() may lag behind)
        assert window.valid(timestamp)


@settings(max_examples=80, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=40),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_with_deletions_preserves_insertions_and_order(count, ratio, seed):
    stream = [StreamingGraphTuple(i + 1, f"v{i % 5}", f"v{(i + 1) % 5}", "x") for i in range(count)]
    augmented = with_deletions(stream, ratio, seed=seed)
    inserts = [t for t in augmented if t.is_insert]
    deletes = [t for t in augmented if t.is_delete]
    assert inserts == stream
    assert len(deletes) <= count
    stamps = [t.timestamp for t in augmented]
    assert stamps == sorted(stamps)
