"""Tests for the columnar batched hot path (repro.core.columnar).

The central contract: the columnar evaluator is *bit-identical* to the
scalar :class:`~repro.core.rapq.RAPQEvaluator` — same result events in the
same order, same emission keys, same checkpoints — whether it is fed tuple
at a time or in batches of any size, with numpy or with the pure-Python
kernel fallback.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from typing import List

import pytest

from repro import RAPQEvaluator, WindowSpec, sgt
from repro.core.checkpoint import checkpoint_rapq, decode_rapq, encode_rapq
from repro.core.columnar import (
    COLUMNAR_MARKER,
    ColumnarBatch,
    ColumnarRAPQEvaluator,
    Interner,
    fastpath_name,
    have_numpy,
    promote_evaluator,
    set_implementation,
)
from repro.core.engine import StreamingRPQEngine
from repro.core.partition import RootPartition
from repro.graph.snapshot import SnapshotGraph
from repro.graph.tuples import EdgeOp, StreamingGraphTuple
from repro.runtime import RuntimeConfig, StreamingQueryService
from repro.runtime import protocol

QUERY = "(follows mentions)+"
WINDOW = WindowSpec(size=60, slide=15)


def make_stream(
    count: int = 4000,
    seed: int = 11,
    deletion_ratio: float = 0.05,
    labels=("follows", "mentions", "likes", "noise"),
    num_vertices: int = 60,
) -> List[StreamingGraphTuple]:
    """A deterministic random stream with explicit deletions."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(num_vertices)]
    tuples = []
    timestamp = 0
    for _ in range(count):
        timestamp += rng.choice((0, 0, 1, 1, 2))
        op = EdgeOp.DELETE if rng.random() < deletion_ratio else EdgeOp.INSERT
        tuples.append(
            StreamingGraphTuple(
                timestamp,
                rng.choice(vertices),
                rng.choice(vertices),
                rng.choice(labels),
                op,
            )
        )
    return tuples


def comparable_checkpoint(evaluator) -> dict:
    """The evaluator's checkpoint with the wall-clock stat zeroed.

    ``stats["expiry_seconds"]`` measures elapsed time, the only part of an
    evaluator's state that legitimately differs between two bit-identical
    runs.
    """
    state = checkpoint_rapq(evaluator)
    state["stats"] = dict(state["stats"], expiry_seconds=0.0)
    return state


def assert_bit_identical(scalar, columnar) -> None:
    """Events, order, emission keys and checkpoints all agree."""
    assert scalar.results.to_wire() == columnar.results.to_wire()
    assert scalar.emission_keys == columnar.emission_keys
    assert comparable_checkpoint(scalar) == comparable_checkpoint(columnar)


def feed_batched(evaluator: ColumnarRAPQEvaluator, stream, batch_size: int):
    """Drive the batch entry point, returning flattened (source, target) pairs."""
    pairs = []
    for start in range(0, len(stream), batch_size):
        batch = ColumnarBatch.from_tuples(stream[start : start + batch_size])
        pairs.extend((s, t) for _i, s, t in evaluator.process_batch(batch))
    return pairs


# --------------------------------------------------------------------- #
# ColumnarBatch and the packed wire form
# --------------------------------------------------------------------- #


def test_columnar_batch_roundtrip():
    stream = make_stream(200, seed=3)
    batch = ColumnarBatch.from_tuples(stream)
    assert len(batch) == len(stream)
    assert batch.tuples() == stream

    wire = batch.to_wire()
    assert wire[0] == COLUMNAR_MARKER
    assert ColumnarBatch.is_wire(wire)
    assert not ColumnarBatch.is_wire(tuple(t.to_wire() for t in stream))
    assert not ColumnarBatch.is_wire(())
    assert ColumnarBatch.from_wire(wire).tuples() == stream


def test_columnar_batch_from_wire_rejects_rows():
    rows = tuple(t.to_wire() for t in make_stream(5))
    with pytest.raises(ValueError):
        ColumnarBatch.from_wire(rows)


def test_protocol_decode_batch_accepts_both_forms():
    stream = make_stream(100, seed=5)
    rows = protocol.encode_batch(stream)
    columnar = protocol.encode_batch_columnar(stream)
    assert protocol.is_columnar_payload(columnar)
    assert not protocol.is_columnar_payload(rows)
    assert protocol.decode_batch(rows) == protocol.decode_batch(columnar) == stream


def test_interner_is_first_seen_dense():
    interner = Interner()
    assert [interner.intern(v) for v in ("b", "a", "b", "c")] == [0, 1, 0, 2]
    assert interner.table == ["b", "a", "c"]
    assert len(interner) == 3
    assert "a" in interner and "z" not in interner


# --------------------------------------------------------------------- #
# Scalar/columnar parity
# --------------------------------------------------------------------- #


def test_per_tuple_parity_with_deletions():
    stream = make_stream()
    scalar = RAPQEvaluator(QUERY, WINDOW)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    for tup in stream:
        assert scalar.process(tup) == columnar.process(tup)
    assert_bit_identical(scalar, columnar)
    assert len(scalar.results) > 0  # the workload actually produced results


@pytest.mark.parametrize("batch_size", [1, 7, 503])
def test_batched_parity(batch_size):
    stream = make_stream()
    scalar = RAPQEvaluator(QUERY, WINDOW)
    scalar.process_stream(stream)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    feed_batched(columnar, stream, batch_size)
    assert_bit_identical(scalar, columnar)


def test_batched_parity_explicit_semantics():
    stream = make_stream(2500, seed=23)
    scalar = RAPQEvaluator(QUERY, WINDOW, result_semantics="explicit")
    scalar.process_stream(stream)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW, result_semantics="explicit")
    feed_batched(columnar, stream, 97)
    assert_bit_identical(scalar, columnar)


def test_batched_parity_under_root_partitioning():
    stream = make_stream(2500, seed=29)
    for index in range(3):
        partition = RootPartition(index=index, count=3)
        scalar = RAPQEvaluator(QUERY, WINDOW, partition=partition)
        scalar.process_stream(stream)
        columnar = ColumnarRAPQEvaluator(QUERY, WINDOW, partition=partition)
        feed_batched(columnar, stream, 128)
        assert_bit_identical(scalar, columnar)


def test_non_monotonic_timestamp_raises_identically():
    stream = [sgt(5, "a", "b", "follows"), sgt(3, "b", "c", "mentions")]
    scalar = RAPQEvaluator(QUERY, WINDOW)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    with pytest.raises(ValueError) as scalar_exc:
        scalar.process_stream(stream)
    with pytest.raises(ValueError) as columnar_exc:
        columnar.process_batch(ColumnarBatch.from_tuples(stream))
    assert str(scalar_exc.value) == str(columnar_exc.value)
    assert_bit_identical(scalar, columnar)


def test_non_monotonic_timestamp_raises_in_irrelevant_run():
    # Both out-of-order tuples are *irrelevant* to the query, so the
    # violation is detected inside the vectorized observe pre-pass.
    stream = [sgt(5, "a", "b", "noise"), sgt(3, "b", "c", "noise")]
    scalar = RAPQEvaluator(QUERY, WINDOW)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    with pytest.raises(ValueError) as scalar_exc:
        scalar.process_stream(stream)
    with pytest.raises(ValueError) as columnar_exc:
        columnar.process_batch(ColumnarBatch.from_tuples(stream))
    assert str(scalar_exc.value) == str(columnar_exc.value)
    assert_bit_identical(scalar, columnar)


def test_columnar_evaluator_owns_its_snapshot():
    with pytest.raises(ValueError):
        ColumnarRAPQEvaluator(QUERY, WINDOW, snapshot=SnapshotGraph())
    with pytest.raises(ValueError):
        ColumnarRAPQEvaluator(QUERY, WINDOW, manage_snapshot=False)


# --------------------------------------------------------------------- #
# Checkpointing, promotion and demotion
# --------------------------------------------------------------------- #


def test_checkpoint_roundtrip_and_promotion():
    stream = make_stream()
    half = len(stream) // 2
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    feed_batched(columnar, stream[:half], 256)

    # The checkpoint is the standard scalar format: a plain scalar
    # evaluator restores from it and continues the stream...
    blob = encode_rapq(columnar)
    restored_scalar = decode_rapq(blob)
    assert type(restored_scalar) is RAPQEvaluator
    restored_scalar.process_stream(stream[half:])

    # ...and so does a promoted columnar evaluator, bit-identically.
    promoted = promote_evaluator(decode_rapq(blob))
    assert isinstance(promoted, ColumnarRAPQEvaluator)
    feed_batched(promoted, stream[half:], 256)
    assert_bit_identical(restored_scalar, promoted)

    # The uninterrupted run agrees with both.
    uninterrupted = ColumnarRAPQEvaluator(QUERY, WINDOW)
    feed_batched(uninterrupted, stream, 256)
    assert_bit_identical(restored_scalar, uninterrupted)


def test_promote_evaluator_passes_non_scalar_through():
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    assert promote_evaluator(columnar) is columnar


def test_to_scalar_is_exact():
    stream = make_stream(2000, seed=41)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    feed_batched(columnar, stream, 64)
    scalar = RAPQEvaluator(QUERY, WINDOW)
    scalar.process_stream(stream)
    assert comparable_checkpoint(columnar.to_scalar()) == comparable_checkpoint(scalar)


# --------------------------------------------------------------------- #
# Kernel implementations (numpy / pure fallback)
# --------------------------------------------------------------------- #


@pytest.fixture
def pure_kernels():
    set_implementation("pure")
    try:
        yield
    finally:
        set_implementation(None)


def test_pure_kernel_parity(pure_kernels):
    assert fastpath_name() == "pure"
    stream = make_stream(2500, seed=47)
    scalar = RAPQEvaluator(QUERY, WINDOW)
    scalar.process_stream(stream)
    columnar = ColumnarRAPQEvaluator(QUERY, WINDOW)
    feed_batched(columnar, stream, 181)
    assert_bit_identical(scalar, columnar)


def test_set_implementation_validates():
    with pytest.raises(ValueError):
        set_implementation("simd")
    if not have_numpy():  # pragma: no cover - numpy present in CI fast legs
        with pytest.raises(ValueError):
            set_implementation("numpy")


def test_force_pure_environment_override():
    code = (
        "from repro.core.columnar import fastpath_name; print(fastpath_name())"
    )
    env = dict(os.environ, REPRO_FORCE_PURE="1")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == "pure"


# --------------------------------------------------------------------- #
# Engine integration: label routing and the batch entry point
# --------------------------------------------------------------------- #


def test_engine_routes_irrelevant_tuples_to_observe():
    engine = StreamingRPQEngine(WINDOW)
    engine.register("q", QUERY)
    engine.process(sgt(1, "a", "b", "noise"))
    engine.process(sgt(2, "a", "b", "follows"))
    evaluator = engine.query("q").evaluator
    # The irrelevant tuple still advanced the clock and was counted as
    # discarded — exactly what a full process() call would have done.
    assert evaluator.stats["tuples_discarded"] == 1
    assert evaluator.stats["tuples_processed"] == 1
    assert evaluator.current_time == 2


def test_engine_process_batch_matches_per_tuple():
    stream = make_stream(3000, seed=53, labels=("follows", "mentions", "x1", "x2"))

    per_tuple = StreamingRPQEngine(WINDOW)
    per_tuple.register("pairs", QUERY)
    per_tuple.register("hops", "x1 x2*")
    events = []
    for tup in stream:
        for name, pairs in per_tuple.process(tup).items():
            for source, target in pairs:
                events.append((name, source, target, tup.timestamp))

    batched = StreamingRPQEngine(WINDOW)
    batched.register("pairs", QUERY)
    batched.register("hops", "x1 x2*")
    batch_events = []
    for start in range(0, len(stream), 211):
        batch_events.extend(
            batched.process_batch(ColumnarBatch.from_tuples(stream[start : start + 211]))
        )

    assert events == batch_events
    for name in ("pairs", "hops"):
        assert_bit_identical(per_tuple.query(name).evaluator, batched.query(name).evaluator)


def test_engine_default_arbitrary_evaluator_is_columnar():
    engine = StreamingRPQEngine(WINDOW)
    engine.register("q", QUERY)
    assert isinstance(engine.query("q").evaluator, ColumnarRAPQEvaluator)


# --------------------------------------------------------------------- #
# Runtime integration: wire formats and both backends
# --------------------------------------------------------------------- #


def run_service(stream, wire_format: str, backend: str, shards: int = 2):
    config = RuntimeConfig(
        shards=shards, batch_size=97, backend=backend, wire_format=wire_format
    )
    service = StreamingQueryService(WINDOW, config)
    service.register("pairs", QUERY)
    service.register("hops", "likes+")
    with service:
        service.ingest(stream)
        service.drain()
        return {name: service.results(name).to_wire() for name in ("pairs", "hops")}


def test_service_wire_format_parity_threading():
    stream = make_stream(10_000, seed=61)
    columnar = run_service(stream, "columnar", "threading")
    rows = run_service(stream, "rows", "threading")
    assert columnar == rows
    assert any(len(events) > 0 for events in columnar.values())


def test_service_wire_format_parity_multiprocessing():
    stream = make_stream(4000, seed=67)
    columnar = run_service(stream, "columnar", "multiprocessing")
    rows = run_service(stream, "rows", "multiprocessing")
    assert columnar == rows


def test_config_validates_wire_format():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        RuntimeConfig(wire_format="parquet")


def test_service_exports_fastpath_gauge():
    service = StreamingQueryService(WINDOW, RuntimeConfig(shards=1))
    text = service.metrics_text()
    assert "repro_fastpath_active" in text
    assert f'impl="{fastpath_name()}"' in text


def test_worker_metrics_report_fastpath():
    from repro.runtime.worker import ShardEngineServer

    server = ShardEngineServer(0, WINDOW, RuntimeConfig(shards=1))
    assert server.metrics()["fastpath"] == fastpath_name()
