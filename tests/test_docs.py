"""The documentation layer is executable: links resolve, examples run.

Runs ``tools/check_docs.py`` (the same script CI's docs job runs) so a
broken intra-repo markdown link or a drifted ``>>>`` example in
README/docs fails the tier-1 suite, not just CI.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def test_docs_links_resolve_and_examples_run():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, f"documentation check failed:\n{result.stdout}\n{result.stderr}"
    assert "documentation check passed" in result.stdout


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for doc in ("docs/ARCHITECTURE.md", "docs/CHECKPOINT_FORMAT.md"):
        assert (REPO_ROOT / doc).exists(), f"{doc} is missing"
        assert doc in readme, f"README does not link {doc}"
