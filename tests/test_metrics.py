"""Tests for the metric collectors and text reporting helpers."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import CounterSeries, LatencyCollector, ThroughputMeter, percentile
from repro.metrics.reporting import Figure, format_mapping, format_series, format_table


class TestPercentile:
    def test_single_sample(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_median_of_even_count(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_p99_close_to_max(self):
        samples = list(range(1, 101))
        assert 99.0 <= percentile(samples, 0.99) <= 100.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyCollector:
    def test_record_and_summary(self):
        collector = LatencyCollector()
        collector.extend([0.001, 0.002, 0.003, 0.010])
        assert len(collector) == 4
        assert collector.mean() == pytest.approx(0.004)
        assert collector.mean_us() == pytest.approx(4000.0)
        assert collector.tail(0.99) <= 0.010
        summary = collector.summary()
        assert summary["count"] == 4
        assert summary["throughput_eps"] == pytest.approx(4 / 0.016)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector().record(-0.1)

    def test_empty_collector_errors(self):
        collector = LatencyCollector()
        with pytest.raises(ValueError):
            collector.mean()
        with pytest.raises(ValueError):
            collector.throughput()

    def test_empty_collector_summary_is_zeroed(self):
        # summary() must not raise on an idle shard: the exporter scrapes
        # before the first tuple arrives.
        summary = LatencyCollector().summary()
        assert summary == {
            "count": 0.0,
            "mean_us": 0.0,
            "p50_us": 0.0,
            "p95_us": 0.0,
            "tail_us": 0.0,
            "throughput_eps": 0.0,
        }

    def test_samples_copy(self):
        collector = LatencyCollector()
        collector.record(0.5)
        samples = collector.samples
        samples.append(99.0)
        assert len(collector) == 1


class TestThroughputMeter:
    def test_edges_per_second(self):
        meter = ThroughputMeter()
        meter.record_batch(100, 2.0)
        meter.record_batch(100, 2.0)
        assert meter.edges_per_second() == pytest.approx(50.0)

    def test_idle_meter_reports_zero(self):
        # An idle meter used to raise ValueError; the metrics exporter
        # scrapes shards before their first batch, so it must read 0.0.
        assert ThroughputMeter().edges_per_second() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().record_batch(-1, 1.0)


class TestCounterSeries:
    def test_record_and_stats(self):
        series = CounterSeries("nodes")
        for value in (1, 5, 3):
            series.record(value)
        assert len(series) == 3
        assert series.last() == 3
        assert series.max() == 5
        assert series.mean() == 3

    def test_empty_series(self):
        series = CounterSeries("empty")
        assert series.last() is None
        with pytest.raises(ValueError):
            series.max()


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 123456.789]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4

    def test_format_table_with_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_format_series(self):
        text = format_series("x", {"s1": {1: 10.0, 2: 20.0}, "s2": {1: 5.0}})
        assert "s1" in text and "s2" in text
        assert "10" in text

    def test_format_mapping(self):
        text = format_mapping({"alpha": 1, "beta": 2.5}, title="Params")
        assert "alpha" in text and "2.5" in text and "Params" in text


class TestFigure:
    def test_add_and_get(self):
        figure = Figure("Figure X", "query")
        figure.add_point("throughput", "Q1", 100.0)
        figure.add_series("latency", {"Q1": 5.0, "Q2": 7.0})
        assert figure.get("throughput") == {"Q1": 100.0}
        assert figure.get("latency")["Q2"] == 7.0
        assert figure.get("missing") == {}

    def test_render_contains_everything(self):
        figure = Figure("Figure X", "query", description="demo")
        figure.add_point("throughput", "Q1", 100.0)
        text = figure.render()
        assert "Figure X" in text and "Q1" in text and "throughput" in text
        assert str(figure) == text
