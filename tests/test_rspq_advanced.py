"""Tests for RSPQ window maintenance, deletions and tree internals (§4.1)."""

from __future__ import annotations

import pytest

from repro import EdgeOp, RSPQEvaluator, WindowSpec, sgt
from repro.core.rspq_tree import RSPQTree
from repro.graph.tuples import StreamingGraphTuple
from repro.regex.dfa import compile_query

from helpers import insert_stream, streaming_oracle


def delete(ts, u, v, label):
    return StreamingGraphTuple(ts, u, v, label, EdgeOp.DELETE)


class TestExpiry:
    def test_expired_nodes_are_removed(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        vertices = {node.vertex for tree in evaluator.trees.values() for node in tree.nodes()}
        assert "u" not in vertices and "v" not in vertices
        assert "p" in vertices and "q" in vertices

    def test_marked_node_reconnected_through_valid_edge(self):
        """A marked node whose tree path expired must be reconnected if an
        alternative valid edge still supports it."""
        window = WindowSpec(size=8, slide=4)
        evaluator = RSPQEvaluator("a+", window)
        evaluator.process(sgt(1, "x", "m", "a"))   # will expire
        evaluator.process(sgt(6, "y", "m", "a"))   # alternative support arrives later
        evaluator.process(sgt(7, "m", "t", "a"))
        evaluator.process(sgt(13, "z", "w", "a"))  # crosses a slide boundary, expiring t=1
        # (y, t) must still be derivable: y -> m -> t with timestamps 6, 7
        assert ("y", "t") in evaluator.answer_pairs()
        vertices = {node.vertex for tree in evaluator.trees.values() for node in tree.nodes()}
        assert "m" in vertices

    def test_results_match_oracle_across_windows(self):
        window = WindowSpec(size=6, slide=3)
        stream = insert_stream([(t, f"v{t % 4}", f"v{(t * 3 + 1) % 4}", "a") for t in range(1, 25)])
        evaluator = RSPQEvaluator("a+", window)
        evaluator.process_stream(stream)
        expected = streaming_oracle(stream, compile_query("a+"), window.size, simple_paths=True)
        assert evaluator.answer_pairs() == expected

    def test_eager_vs_lazy_expiration_same_answers(self):
        stream = insert_stream([(t, f"v{t % 5}", f"v{(t * 2 + 1) % 5}", "a") for t in range(1, 30)])
        eager = RSPQEvaluator("a+", WindowSpec(size=8, slide=1))
        lazy = RSPQEvaluator("a+", WindowSpec(size=8, slide=8))
        eager.process_stream(stream)
        lazy.process_stream(stream)
        assert eager.answer_pairs() == lazy.answer_pairs()

    def test_expiry_stats_recorded(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=5, slide=5))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        assert evaluator.stats["expiry_runs"] >= 1
        assert evaluator.stats["expiry_seconds"] >= 0.0


class TestDeletions:
    def test_delete_only_support_invalidates(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(delete(2, "u", "v", "a"))
        assert evaluator.active_pairs() == set()
        assert evaluator.answer_pairs() == {("u", "v")}

    def test_delete_with_alternative_support_keeps_pair(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [(1, "s", "m1", "a"), (2, "m1", "t", "a"), (3, "s", "m2", "a"), (4, "m2", "t", "a")]
        ))
        evaluator.process(delete(5, "m1", "t", "a"))
        assert ("s", "t") in evaluator.active_pairs()

    def test_delete_middle_of_chain(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [(1, "p1", "p2", "a"), (2, "p2", "p3", "a"), (3, "p3", "p4", "a")]
        ))
        evaluator.process(delete(4, "p2", "p3", "a"))
        active = evaluator.active_pairs()
        assert ("p1", "p2") in active
        assert ("p3", "p4") in active
        assert ("p1", "p4") not in active

    def test_deletion_counter(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(delete(2, "u", "v", "a"))
        assert evaluator.stats["deletions_processed"] == 1


class TestRSPQTreeInternals:
    def test_root_and_instances(self):
        tree = RSPQTree("x", 0)
        assert tree.has_key(("x", 0))
        assert len(tree) == 1
        assert tree.root.path_from_root() == [tree.root]

    def test_add_child_and_paths(self):
        tree = RSPQTree("x", 0)
        child = tree.add_child(tree.root, ("y", 1), timestamp=5)
        grandchild = tree.add_child(child, ("z", 2), timestamp=4)
        assert [node.key for node in grandchild.path_from_root()] == [("x", 0), ("y", 1), ("z", 2)]
        assert grandchild.states_at_vertex("y") == [1]
        assert grandchild.first_state_at_vertex("x") == 0
        assert grandchild.first_state_at_vertex("nope") is None

    def test_duplicate_child_key_under_same_parent_rejected(self):
        tree = RSPQTree("x", 0)
        tree.add_child(tree.root, ("y", 1), timestamp=5)
        with pytest.raises(ValueError):
            tree.add_child(tree.root, ("y", 1), timestamp=6)

    def test_multiple_instances_of_same_key(self):
        tree = RSPQTree("x", 0)
        a = tree.add_child(tree.root, ("a", 1), timestamp=5)
        b = tree.add_child(tree.root, ("b", 1), timestamp=5)
        tree.add_child(a, ("m", 2), timestamp=4)
        tree.add_child(b, ("m", 2), timestamp=4)
        assert len(tree.instances_of(("m", 2))) == 2
        assert len(tree) == 5

    def test_detach_subtree(self):
        tree = RSPQTree("x", 0)
        a = tree.add_child(tree.root, ("a", 1), timestamp=5)
        m = tree.add_child(a, ("m", 2), timestamp=4)
        tree.add_child(m, ("t", 1), timestamp=3)
        removed = tree.detach_subtree(a)
        assert len(removed) == 3
        assert len(tree) == 1
        assert not tree.has_key(("a", 1))
        assert not tree.contains_vertex("m")
        assert all(node.detached for node in removed)

    def test_detach_root_rejected(self):
        tree = RSPQTree("x", 0)
        with pytest.raises(ValueError):
            tree.detach_subtree(tree.root)

    def test_add_child_to_detached_parent_rejected(self):
        tree = RSPQTree("x", 0)
        a = tree.add_child(tree.root, ("a", 1), timestamp=5)
        tree.detach_subtree(a)
        with pytest.raises(ValueError):
            tree.add_child(a, ("q", 1), timestamp=2)

    def test_markings(self):
        tree = RSPQTree("x", 0)
        tree.mark(("a", 1))
        assert tree.is_marked(("a", 1))
        assert tree.unmark(("a", 1))
        assert not tree.unmark(("a", 1))

    def test_size_summary(self):
        tree = RSPQTree("x", 0)
        tree.add_child(tree.root, ("a", 1), timestamp=5)
        tree.mark(("a", 1))
        assert tree.size_summary() == {"nodes": 2, "markings": 1}
