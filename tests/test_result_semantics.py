"""Tests for explicit vs implicit window result semantics (§2).

Implicit windows (the paper's default) never retract results when their
supporting tuples expire; explicit windows emit invalidations so the active
result set always reflects the current window content (incremental view
maintenance).
"""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, RSPQEvaluator, WindowSpec, sgt


class TestImplicitWindows:
    def test_no_invalidation_on_expiry(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5), result_semantics="implicit")
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        assert evaluator.results.negatives() == []
        assert evaluator.answer_pairs() == {("u", "v"), ("p", "q")}
        assert evaluator.active_pairs() == {("u", "v"), ("p", "q")}


class TestExplicitWindows:
    def test_expiry_invalidates_results(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=5, slide=5), result_semantics="explicit")
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        # the (u, v) support expired with the window slide
        negatives = evaluator.results.negatives()
        assert [event.pair for event in negatives] == [("u", "v")]
        assert evaluator.active_pairs() == {("p", "q")}
        # the full history is still available on the result stream
        assert evaluator.answer_pairs() == {("u", "v"), ("p", "q")}

    def test_surviving_results_not_invalidated(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=10, slide=5), result_semantics="explicit")
        evaluator.process(sgt(1, "a", "b", "a"))
        evaluator.process(sgt(8, "b", "c", "a"))
        evaluator.process(sgt(12, "c", "d", "a"))
        # (b, c) and (c, d) are still inside the window at t=12
        active = evaluator.active_pairs()
        assert ("b", "c") in active
        assert ("c", "d") in active

    def test_reconnected_results_not_invalidated(self):
        """A result whose tree node survives through an alternative edge stays active."""
        evaluator = RAPQEvaluator("a+", WindowSpec(size=8, slide=4), result_semantics="explicit")
        evaluator.process(sgt(1, "x", "m", "a"))
        evaluator.process(sgt(6, "y", "m", "a"))
        evaluator.process(sgt(7, "m", "t", "a"))
        evaluator.process(sgt(13, "z", "w", "a"))   # expires the t=1 edge
        active = evaluator.active_pairs()
        assert ("y", "t") in active
        assert ("x", "m") not in active

    def test_rspq_explicit_windows(self):
        evaluator = RSPQEvaluator("a", WindowSpec(size=5, slide=5), result_semantics="explicit")
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(20, "p", "q", "a"))
        assert [event.pair for event in evaluator.results.negatives()] == [("u", "v")]
        assert evaluator.active_pairs() == {("p", "q")}


class TestValidation:
    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            RAPQEvaluator("a", WindowSpec(size=5), result_semantics="sometimes")
        with pytest.raises(ValueError):
            RSPQEvaluator("a", WindowSpec(size=5), result_semantics="sometimes")
