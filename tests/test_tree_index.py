"""Unit tests for the Delta tree index (spanning trees of the product graph)."""

from __future__ import annotations

import pytest

from repro.core.tree_index import ROOT_TIMESTAMP, SpanningTree, TreeIndex


@pytest.fixture
def tree():
    """A small tree rooted at ('x', 0) with a chain x->y->u and a sibling z."""
    t = SpanningTree("x", start_state=0)
    t.add_node(("y", 1), parent=("x", 0), timestamp=13)
    t.add_node(("u", 2), parent=("y", 1), timestamp=4)
    t.add_node(("z", 1), parent=("x", 0), timestamp=6)
    return t


class TestSpanningTreeBasics:
    def test_root_exists(self):
        t = SpanningTree("x", 0)
        assert t.root_key == ("x", 0)
        assert t.root.timestamp == ROOT_TIMESTAMP
        assert len(t) == 1

    def test_add_and_get(self, tree):
        node = tree.get(("y", 1))
        assert node is not None
        assert node.parent == ("x", 0)
        assert node.timestamp == 13
        assert ("y", 1) in tree

    def test_add_duplicate_key_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.add_node(("y", 1), parent=("x", 0), timestamp=20)

    def test_add_with_missing_parent_rejected(self, tree):
        with pytest.raises(KeyError):
            tree.add_node(("q", 1), parent=("nope", 7), timestamp=1)

    def test_children_links(self, tree):
        assert ("y", 1) in tree.root.children
        assert ("u", 2) in tree.get(("y", 1)).children

    def test_contains_vertex_and_states_of(self, tree):
        assert tree.contains_vertex("y")
        assert not tree.contains_vertex("w")
        assert tree.states_of("y") == [1]

    def test_node_count(self, tree):
        assert len(tree) == 4
        assert len(list(tree.nodes())) == 4


class TestPathsAndSubtrees:
    def test_path_to_root(self, tree):
        assert tree.path_to_root(("u", 2)) == [("x", 0), ("y", 1), ("u", 2)]

    def test_path_of_root_is_singleton(self, tree):
        assert tree.path_to_root(("x", 0)) == [("x", 0)]

    def test_path_of_unknown_node_raises(self, tree):
        with pytest.raises(KeyError):
            tree.path_to_root(("nope", 9))

    def test_subtree_keys(self, tree):
        assert set(tree.subtree_keys(("y", 1))) == {("y", 1), ("u", 2)}
        assert set(tree.subtree_keys(("x", 0))) == {("x", 0), ("y", 1), ("u", 2), ("z", 1)}
        assert tree.subtree_keys(("nope", 0)) == []


class TestMutation:
    def test_reparent(self, tree):
        tree.reparent(("u", 2), ("z", 1), timestamp=6)
        node = tree.get(("u", 2))
        assert node.parent == ("z", 1)
        assert node.timestamp == 6
        assert ("u", 2) not in tree.get(("y", 1)).children
        assert ("u", 2) in tree.get(("z", 1)).children

    def test_reparent_to_self_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.reparent(("u", 2), ("u", 2), timestamp=1)

    def test_remove(self, tree):
        removed = tree.remove(("u", 2))
        assert removed is not None
        assert ("u", 2) not in tree
        assert ("u", 2) not in tree.get(("y", 1)).children
        assert not tree.contains_vertex("u")

    def test_remove_missing_returns_none(self, tree):
        assert tree.remove(("nope", 3)) is None

    def test_remove_many(self, tree):
        removed = tree.remove_many(iter([("y", 1), ("u", 2)]))
        assert len(removed) == 2
        assert len(tree) == 2


class TestTreeIndex:
    def test_get_or_create(self):
        index = TreeIndex(start_state=0)
        tree = index.get_or_create("x")
        assert index.get("x") is tree
        assert index.get_or_create("x") is tree
        assert index.num_trees == 1

    def test_trees_containing_tracks_registrations(self):
        index = TreeIndex(start_state=0)
        tx = index.get_or_create("x")
        ty = index.get_or_create("y")
        tx.add_node(("u", 1), parent=("x", 0), timestamp=3)
        index.register_node(tx, "u")
        containing = index.trees_containing("u")
        assert containing == [tx]
        assert set(t.root_vertex for t in index.trees_containing("x")) == {"x"}
        assert index.trees_containing("unknown") == []
        assert ty in index.trees_containing("y")

    def test_unregister_node_only_when_vertex_gone(self):
        index = TreeIndex(start_state=0)
        tx = index.get_or_create("x")
        tx.add_node(("u", 1), parent=("x", 0), timestamp=3)
        tx.add_node(("u", 2), parent=("x", 0), timestamp=3)
        index.register_node(tx, "u")
        # still present in another state: unregister must be a no-op
        tx.remove(("u", 1))
        index.unregister_node(tx, "u")
        assert index.trees_containing("u") == [tx]
        tx.remove(("u", 2))
        index.unregister_node(tx, "u")
        assert index.trees_containing("u") == []

    def test_discard_tree(self):
        index = TreeIndex(start_state=0)
        tx = index.get_or_create("x")
        tx.add_node(("u", 1), parent=("x", 0), timestamp=3)
        index.register_node(tx, "u")
        index.discard_tree("x")
        assert index.get("x") is None
        assert index.trees_containing("u") == []
        assert index.num_trees == 0

    def test_size_summary(self):
        index = TreeIndex(start_state=0)
        tx = index.get_or_create("x")
        tx.add_node(("u", 1), parent=("x", 0), timestamp=3)
        index.get_or_create("y")
        assert index.size_summary() == {"trees": 2, "nodes": 3}
        assert index.num_nodes == 3
        assert len(index) == 2
