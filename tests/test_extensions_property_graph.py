"""Tests for the property-graph extension (attribute predicates on edges)."""

from __future__ import annotations

import pytest

from repro import WindowSpec
from repro.extensions.property_graph import (
    EdgePredicate,
    PropertyEdge,
    PropertyGraphEngine,
    PropertyPathQuery,
)
from repro.graph.tuples import EdgeOp


class TestPropertyEdge:
    def test_to_tuple_defaults(self):
        edge = PropertyEdge(5, "a", "b", "knows", {"since": 2019})
        tup = edge.to_tuple()
        assert tup.timestamp == 5 and tup.label == "knows" and tup.is_insert

    def test_to_tuple_with_relabel(self):
        edge = PropertyEdge(5, "a", "b", "knows")
        assert edge.to_tuple(label="other").label == "other"

    def test_delete_edge(self):
        edge = PropertyEdge(5, "a", "b", "knows", op=EdgeOp.DELETE)
        assert edge.to_tuple().is_delete


class TestEdgePredicate:
    def test_matches_only_its_label(self):
        predicate = EdgePredicate("knows", lambda p: p.get("since", 0) >= 2020)
        assert predicate.matches(PropertyEdge(1, "a", "b", "likes", {"since": 1999}))
        assert predicate.matches(PropertyEdge(1, "a", "b", "knows", {"since": 2021}))
        assert not predicate.matches(PropertyEdge(1, "a", "b", "knows", {"since": 2010}))

    def test_missing_attribute_fails_closed(self):
        predicate = EdgePredicate("knows", lambda p: p["since"] >= 2020)
        assert not predicate.matches(PropertyEdge(1, "a", "b", "knows", {}))

    def test_description(self):
        predicate = EdgePredicate("knows", lambda p: True, description="since >= 2020")
        assert str(predicate) == "since >= 2020"
        assert "knows" in str(EdgePredicate("knows", lambda p: True))


class TestPropertyPathQuery:
    def test_predicate_lookup(self):
        query = PropertyPathQuery("a b", predicates=[EdgePredicate("a", lambda p: True)])
        assert query.predicate_for("a") is not None
        assert query.predicate_for("b") is None

    def test_analysis_compiles(self):
        query = PropertyPathQuery("a b*")
        assert query.analysis().num_states >= 2


class TestPropertyGraphEngine:
    def make_engine(self):
        engine = PropertyGraphEngine(WindowSpec(size=100))
        engine.register(
            "heavy",
            PropertyPathQuery(
                "knows+",
                predicates=[EdgePredicate("knows", lambda p: p.get("weight", 0) >= 5)],
            ),
        )
        engine.register("all", PropertyPathQuery("knows+"))
        return engine

    def test_predicate_filters_results(self):
        engine = self.make_engine()
        engine.process(PropertyEdge(1, "a", "b", "knows", {"weight": 9}))
        engine.process(PropertyEdge(2, "b", "c", "knows", {"weight": 1}))
        assert engine.answer_pairs("heavy") == {("a", "b")}
        assert engine.answer_pairs("all") == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_filtered_edge_counter(self):
        engine = self.make_engine()
        engine.process(PropertyEdge(1, "a", "b", "knows", {"weight": 1}))
        assert engine.edges_filtered["heavy"] == 1
        assert engine.edges_filtered["all"] == 0

    def test_transitive_closure_with_predicates(self):
        engine = self.make_engine()
        stream = [
            PropertyEdge(1, "a", "b", "knows", {"weight": 7}),
            PropertyEdge(2, "b", "c", "knows", {"weight": 8}),
            PropertyEdge(3, "c", "d", "knows", {"weight": 2}),   # breaks the heavy chain
            PropertyEdge(4, "d", "e", "knows", {"weight": 9}),
        ]
        engine.process_stream(stream)
        heavy = engine.answer_pairs("heavy")
        assert ("a", "c") in heavy
        assert ("a", "d") not in heavy
        assert ("a", "e") not in heavy
        assert ("d", "e") in heavy

    def test_simple_semantics_supported(self):
        engine = PropertyGraphEngine(WindowSpec(size=100))
        engine.register("simple", PropertyPathQuery("knows+", semantics="simple"))
        engine.process(PropertyEdge(1, "x", "y", "knows"))
        engine.process(PropertyEdge(2, "y", "x", "knows"))
        assert engine.answer_pairs("simple") == {("x", "y"), ("y", "x")}

    def test_duplicate_registration_rejected(self):
        engine = self.make_engine()
        with pytest.raises(ValueError):
            engine.register("heavy", PropertyPathQuery("knows"))

    def test_deregister(self):
        engine = self.make_engine()
        engine.deregister("all")
        assert engine.queries() == ["heavy"]
        with pytest.raises(KeyError):
            engine.deregister("all")
        with pytest.raises(KeyError):
            engine.answer_pairs("all")

    def test_summary(self):
        engine = self.make_engine()
        engine.process(PropertyEdge(1, "a", "b", "knows", {"weight": 1}))
        summary = engine.summary()
        assert summary["heavy"]["edges_filtered"] == 1
        assert summary["all"]["results"] == 1

    def test_results_stream_accessible(self):
        engine = self.make_engine()
        engine.process(PropertyEdge(1, "a", "b", "knows", {"weight": 9}))
        assert len(engine.results("heavy")) == 1
        with pytest.raises(KeyError):
            engine.results("missing")

    def test_docstring_example(self):
        engine = PropertyGraphEngine(WindowSpec(size=100))
        engine.register(
            "close-friends",
            PropertyPathQuery(
                "follows+",
                predicates=[EdgePredicate("follows", lambda p: p.get("weight", 0) >= 5)],
            ),
        )
        engine.process(PropertyEdge(1, "a", "b", "follows", {"weight": 9}))
        engine.process(PropertyEdge(2, "b", "c", "follows", {"weight": 1}))
        assert engine.answer_pairs("close-friends") == {("a", "b")}
