"""Tests for the out-of-order reordering buffer."""

from __future__ import annotations

import pytest

from repro import RAPQEvaluator, WindowSpec, sgt
from repro.errors import StreamOrderError
from repro.graph.ordering import ReorderingBuffer, reorder_stream


def shuffled_stream():
    return [
        sgt(3, "a", "b", "x"),
        sgt(1, "b", "c", "x"),
        sgt(2, "c", "d", "x"),
        sgt(6, "d", "e", "x"),
        sgt(5, "e", "f", "x"),
        sgt(9, "f", "g", "x"),
    ]


class TestReorderingBuffer:
    def test_releases_in_timestamp_order(self):
        buffer = ReorderingBuffer(max_lateness=3)
        released = []
        for tup in shuffled_stream():
            released.extend(buffer.push(tup))
        released.extend(buffer.flush())
        stamps = [t.timestamp for t in released]
        assert stamps == sorted(stamps)
        assert len(released) == 6

    def test_watermark_controls_release(self):
        buffer = ReorderingBuffer(max_lateness=5)
        assert buffer.push(sgt(10, "a", "b", "x")) == [sgt(5, "a", "b", "x")] or True
        # nothing older than watermark 5 buffered, so the tuple itself waits
        assert len(buffer) in (0, 1)
        released = buffer.push(sgt(20, "b", "c", "x"))
        assert any(t.timestamp == 10 for t in released)

    def test_flush_empties_buffer(self):
        buffer = ReorderingBuffer(max_lateness=100)
        buffer.push(sgt(3, "a", "b", "x"))
        buffer.push(sgt(1, "b", "c", "x"))
        released = buffer.flush()
        assert [t.timestamp for t in released] == [1, 3]
        assert len(buffer) == 0

    def test_late_tuple_dropped_by_default(self):
        buffer = ReorderingBuffer(max_lateness=1)
        buffer.push(sgt(10, "a", "b", "x"))
        buffer.push(sgt(12, "b", "c", "x"))   # releases up to watermark 11
        buffer.push(sgt(2, "c", "d", "x"))    # far too late
        assert buffer.late_dropped == 1

    def test_late_tuple_raises_when_configured(self):
        buffer = ReorderingBuffer(max_lateness=1, late_policy="raise")
        buffer.push(sgt(10, "a", "b", "x"))
        buffer.push(sgt(12, "b", "c", "x"))
        with pytest.raises(StreamOrderError):
            buffer.push(sgt(2, "c", "d", "x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReorderingBuffer(max_lateness=-1)
        with pytest.raises(ValueError):
            ReorderingBuffer(max_lateness=1, late_policy="explode")

    def test_equal_timestamps_keep_arrival_order(self):
        buffer = ReorderingBuffer(max_lateness=0)
        first = sgt(5, "a", "b", "x")
        second = sgt(5, "b", "c", "y")
        released = buffer.push(first) + buffer.push(second) + buffer.flush()
        assert released == [first, second]


class TestReorderStream:
    def test_generator_form(self):
        ordered = list(reorder_stream(shuffled_stream(), max_lateness=3))
        stamps = [t.timestamp for t in ordered]
        assert stamps == sorted(stamps)
        assert len(ordered) == 6

    def test_feeds_an_evaluator(self):
        """An almost-ordered stream becomes consumable by the evaluators."""
        evaluator = RAPQEvaluator("x+", WindowSpec(size=100))
        evaluator.process_stream(reorder_stream(shuffled_stream(), max_lateness=5))
        assert ("a", "e") in evaluator.answer_pairs() or ("a", "b") in evaluator.answer_pairs()

    def test_unordered_input_without_buffer_fails(self):
        evaluator = RAPQEvaluator("x+", WindowSpec(size=100))
        with pytest.raises(ValueError):
            evaluator.process_stream(shuffled_stream())
