"""Unit tests for the runtime building blocks: config, router, merger, worker."""

from __future__ import annotations

import pytest

from repro import WindowSpec, sgt
from repro.core.results import ResultStream
from repro.regex.analysis import analyze
from repro.runtime import (
    HashPolicy,
    LabelAffinityPolicy,
    RoundRobinPolicy,
    RuntimeConfig,
    StreamRouter,
    collect_results,
    create_worker,
    make_policy,
    merge_result_events,
    merge_result_streams,
)


class TestRuntimeConfig:
    def test_defaults_are_valid(self):
        config = RuntimeConfig()
        assert config.shards >= 1
        assert config.backend == "threading"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"batch_size": 0},
            {"queue_depth": 0},
            {"backend": "fibers"},
            {"sharding": "alphabetical"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)

    def test_dict_round_trip(self):
        config = RuntimeConfig(shards=5, batch_size=7, queue_depth=3, sharding="round_robin")
        assert RuntimeConfig.from_dict(config.to_dict()) == config

    def test_with_shards(self):
        assert RuntimeConfig(shards=2).with_shards(8).shards == 8


class TestShardingPolicies:
    def test_round_robin_cycles(self):
        router = StreamRouter(3, "round_robin")
        shards = [router.assign(f"q{i}", analyze("a+")) for i in range(6)]
        assert shards == [0, 1, 2, 0, 1, 2]

    def test_hash_is_deterministic_and_name_keyed(self):
        first = StreamRouter(4, "hash")
        second = StreamRouter(4, "hash")
        for name in ("alpha", "beta", "gamma"):
            assert first.assign(name, analyze("a+")) == second.assign(name, analyze("a+"))

    def test_label_affinity_colocates_overlapping_alphabets(self):
        router = StreamRouter(3, "label_affinity")
        router.assign("a-query", analyze("a+"))
        router.assign("b-query", analyze("b+"))
        # shares a label with "a-query" -> same shard
        assert router.shard_of("a-query") == router.assign("ab-query", analyze("(a b)+"))

    def test_label_affinity_prefers_empty_shard_for_disjoint_alphabet(self):
        router = StreamRouter(2, "label_affinity")
        router.assign("a-query", analyze("a+"))
        assert router.assign("c-query", analyze("c+")) != router.shard_of("a-query")

    def test_make_policy_accepts_names_and_instances(self):
        assert isinstance(make_policy("hash"), HashPolicy)
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        policy = LabelAffinityPolicy()
        assert make_policy(policy) is policy
        with pytest.raises(ValueError):
            make_policy("nope")


class TestStreamRouter:
    def test_routes_only_to_shards_with_matching_labels(self):
        router = StreamRouter(2, "round_robin")
        router.assign("qa", analyze("a+"))  # shard 0
        router.assign("qb", analyze("b+"))  # shard 1
        assert router.route(sgt(1, "x", "y", "a")) == (0,)
        assert router.route(sgt(1, "x", "y", "b")) == (1,)
        assert router.route(sgt(1, "x", "y", "zzz")) == ()

    def test_tuple_reaches_all_interested_shards(self):
        router = StreamRouter(2, "round_robin")
        router.assign("qa", analyze("a+"))  # shard 0
        router.assign("qab", analyze("(a b)+"))  # shard 1
        assert router.route(sgt(1, "x", "y", "a")) == (0, 1)

    def test_release_updates_routing(self):
        router = StreamRouter(2, "round_robin")
        router.assign("qa", analyze("a+"))
        router.assign("qa2", analyze("a b"))
        assert router.route(sgt(1, "x", "y", "a")) == (0, 1)
        assert router.release("qa") == 0
        assert router.route(sgt(1, "x", "y", "a")) == (1,)
        with pytest.raises(KeyError):
            router.shard_of("qa")

    def test_route_batch_preserves_order(self):
        router = StreamRouter(2, "round_robin")
        router.assign("qa", analyze("a+"))
        router.assign("qb", analyze("b+"))
        batch = [sgt(1, "u", "v", "a"), sgt(2, "v", "w", "b"), sgt(3, "w", "x", "a")]
        routed = router.route_batch(batch)
        assert [t.timestamp for t in routed[0]] == [1, 3]
        assert [t.timestamp for t in routed[1]] == [2]

    def test_duplicate_assignment_rejected(self):
        router = StreamRouter(2)
        router.assign("q", analyze("a+"))
        with pytest.raises(ValueError):
            router.assign("q", analyze("b+"))


class TestMerger:
    @staticmethod
    def make_stream(pairs):
        stream = ResultStream()
        for source, target, timestamp, positive in pairs:
            if positive:
                stream.report(source, target, timestamp)
            else:
                stream.invalidate(source, target, timestamp)
        return stream

    def test_merge_is_timestamp_ordered_and_tagged(self):
        left = self.make_stream([("a", "b", 1, True), ("a", "c", 5, True)])
        right = self.make_stream([("x", "y", 2, True), ("x", "y", 4, False)])
        merged = merge_result_streams({"left": left, "right": right})
        assert [tagged.timestamp for tagged in merged] == [1, 2, 4, 5]
        assert [tagged.query for tagged in merged] == ["left", "right", "right", "left"]

    def test_merge_result_events_is_lazy(self):
        def boom():
            raise AssertionError("must not be consumed eagerly")
            yield  # pragma: no cover

        merged = merge_result_events({"q": boom()})
        with pytest.raises(AssertionError):
            next(merged)

    def test_collect_results_rebuilds_active_bookkeeping(self):
        first = self.make_stream([("a", "b", 1, True)])
        second = self.make_stream([("a", "b", 2, False), ("c", "d", 3, True)])
        combined = collect_results([first, second])
        assert combined.distinct_pairs == {("a", "b"), ("c", "d")}
        assert combined.active_pairs == {("c", "d")}


class TestWorker:
    def test_control_ops_run_inline_when_not_started(self):
        worker = create_worker(0, WindowSpec(size=10, slide=1), RuntimeConfig(shards=1))
        worker.register_query("q", "a+")
        assert worker.fetch_results("q").distinct_pairs == set()
        assert worker.metrics()["tuples"] == 0.0

    @pytest.mark.parametrize("backend", ["threading", "multiprocessing"])
    def test_metrics_and_results_after_processing(self, backend):
        worker = create_worker(0, WindowSpec(size=10, slide=1), RuntimeConfig(shards=1, backend=backend))
        worker.register_query("q", "a+")
        worker.start()
        worker.submit([sgt(1, "u", "v", "a"), sgt(2, "v", "w", "a")])
        worker.drain()
        metrics = worker.metrics()
        worker.stop()
        assert metrics["tuples"] == 2.0
        assert metrics["batches"] == 1.0
        # post-stop the worker stays inspectable through the same typed API
        assert worker.fetch_results("q").distinct_pairs == {("u", "v"), ("v", "w"), ("u", "w")}

    @pytest.mark.parametrize("backend", ["threading", "multiprocessing"])
    def test_failure_is_sticky_and_blocks_restart(self, backend):
        from repro import ShardWorkerError

        worker = create_worker(0, WindowSpec(size=10, slide=1), RuntimeConfig(shards=1, backend=backend))
        worker.register_query("q", "a+")
        worker.start()
        # an out-of-order batch makes the engine raise on the worker
        worker.submit([sgt(5, "u", "v", "a")])
        worker.submit([sgt(1, "v", "w", "a")])
        with pytest.raises(ShardWorkerError):
            worker.drain()
        with pytest.raises(ShardWorkerError):
            worker.drain()  # the poison does not clear on first raise
        with pytest.raises(ShardWorkerError):
            worker.stop()
        assert not worker.running  # the transport is gone even though stop raised
        with pytest.raises(ShardWorkerError):
            worker.start()  # a poisoned shard cannot be restarted

    def test_unknown_backend_rejected(self):
        config = RuntimeConfig(shards=1)
        object.__setattr__(config, "backend", "fibers")  # bypass frozen validation
        with pytest.raises(ValueError):
            create_worker(0, WindowSpec(size=10, slide=1), config)


class TestRouterEpochAndMove:
    def router_with(self, *names, shards=3):
        router = StreamRouter(shards, "round_robin")
        for name, expression in names:
            router.assign(name, analyze(expression))
        return router

    def test_epoch_bumps_on_every_placement_change(self):
        router = StreamRouter(2)
        assert router.epoch == 0
        router.assign("q", analyze("a+"))
        assert router.epoch == 1
        router.move("q", 1 - router.shard_of("q"))
        assert router.epoch == 2
        router.release("q")
        assert router.epoch == 3

    def test_move_rehomes_routing(self):
        router = self.router_with(("qa", "a+"), ("qb", "b+"))
        source = router.shard_of("qa")
        target = (source + 1) % 3
        assert router.move("qa", target) == source
        assert router.shard_of("qa") == target
        # tuples with label 'a' now route to the new shard only
        from repro import sgt as make_tuple

        assert router.route(make_tuple(1, "u", "v", "a")) == (target,)
        views = {view.shard_id: view for view in router.shards()}
        assert "qa" in views[target].queries
        assert "qa" not in views[source].queries
        assert views[source].label_counts.get("a", 0) == 0

    def test_move_to_current_shard_is_a_noop(self):
        router = self.router_with(("qa", "a+"))
        shard = router.shard_of("qa")
        epoch = router.epoch
        assert router.move("qa", shard) == shard
        assert router.epoch == epoch

    def test_move_validates_inputs(self):
        router = self.router_with(("qa", "a+"))
        with pytest.raises(KeyError):
            router.move("ghost", 1)
        with pytest.raises(ValueError):
            router.move("qa", 9)

    def test_alphabet_of(self):
        router = self.router_with(("qa", "a b+"))
        assert router.alphabet_of("qa") == {"a", "b"}
        with pytest.raises(KeyError):
            router.alphabet_of("ghost")
