"""Tests for the observability layer: registry, exposition, logging, HTTP endpoints.

Covers the metric primitives and their Prometheus text rendering, the
structured-logging helpers (operation-ID correlation across coordinator
and workers), the ``/metrics`` + ``/healthz`` HTTP endpoints scraped over
real sockets during live ingestion on both worker backends, and the
durability/recovery instrumentation.
"""

from __future__ import annotations

import io
import json
import logging
import math
import re
import time
import urllib.error
import urllib.request

import pytest

from repro import WindowSpec
from repro.datasets.synthetic import UniformStreamGenerator
from repro.errors import ShardWorkerError
from repro.graph.stream import with_deletions
from conftest import ALL_BACKENDS
from repro.runtime import BACKENDS, RecoveryManager, RuntimeConfig, StreamingQueryService
from repro.runtime.observability import (
    CONTENT_TYPE_METRICS,
    Counter,
    Gauge,
    Histogram,
    JsonFormatter,
    MetricsRegistry,
    configure_logging,
    get_logger,
    histogram_quantiles,
    merge_histogram_states,
    new_operation_id,
)
from repro.runtime.observability.registry import format_value

WINDOW = WindowSpec(size=40, slide=4)

QUERIES = {"chains": "a+", "pair": "b c"}


def make_stream(count, seed=11):
    generator = UniformStreamGenerator(
        num_vertices=80, labels=("a", "b", "c", "noise"), edges_per_timestamp=5, seed=seed
    )
    return with_deletions(list(generator.generate(count)), 0.1, seed=seed)


def make_service(backend="threading", metrics_port=None, shards=2, worker_addresses=None, **kwargs):
    config = RuntimeConfig(
        shards=shards,
        batch_size=32,
        backend=backend,
        metrics_port=metrics_port,
        worker_addresses=worker_addresses,
        **kwargs,
    )
    service = StreamingQueryService(WINDOW, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    return service


def scrape(port, path):
    """GET one observability endpoint; returns (status, headers, body)."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read().decode("utf-8")
    except urllib.error.HTTPError as error:  # non-2xx still carries a body
        return error.code, dict(error.headers), error.read().decode("utf-8")


_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def assert_valid_exposition(text):
    """Minimal structural validator for Prometheus text format 0.0.4."""
    assert text.endswith("\n"), "exposition must end with a newline"
    typed = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in typed, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram"), line
            typed[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        sample = match.group(1)
        if sample in typed:
            assert typed[sample] != "histogram", f"bare sample for histogram family: {line!r}"
            continue
        base = re.sub(r"_(bucket|sum|count)$", "", sample)
        assert typed.get(base) == "histogram", f"sample {sample!r} has no TYPE line"
    # Every histogram family with samples exposes a +Inf bucket.
    for name, kind in typed.items():
        if kind == "histogram" and f"{name}_count" in text:
            assert f"{name}_bucket{{" in text and 'le="+Inf"' in text


def series_names(text):
    """The set of fully-labelled sample identifiers in an exposition."""
    return {
        line.rsplit(" ", 1)[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }


class TestCounterGaugeHistogram:
    def test_counter_is_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_ignores_stale_snapshots(self):
        counter = Counter()
        counter.inc(5)
        counter.set_total(3)  # a restarted worker's smaller total must not regress
        assert counter.value == 5
        counter.set_total(10)
        assert counter.value == 10

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        assert histogram.sum == pytest.approx(5.55)
        assert histogram.count == 3

    def test_histogram_boundary_lands_in_le_bucket(self):
        histogram = Histogram((0.1, 1.0))
        histogram.observe(0.1)  # le="0.1" means <=, so the boundary counts
        assert histogram.cumulative()[0] == (0.1, 1)

    def test_histogram_state_round_trip(self):
        source = Histogram((0.5, 2.0))
        source.observe(0.3)
        source.observe(9.0)
        clone = Histogram()
        clone.load_state(source.state())
        assert clone.bounds == source.bounds
        assert clone.cumulative() == source.cumulative()
        assert clone.sum == source.sum

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_format_value(self):
        assert format_value(17.0) == "17"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"


class TestHistogramMerging:
    def states(self, values_per_shard, buckets=(0.1, 1.0)):
        states = []
        for values in values_per_shard:
            histogram = Histogram(buckets)
            for value in values:
                histogram.observe(value)
            states.append(histogram.state())
        return states

    def test_merge_is_the_elementwise_bucket_sum(self):
        states = self.states([(0.05, 0.5), (0.5, 5.0), ()])
        merged = merge_histogram_states(states)
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(6.05)
        expected = [sum(state["counts"][index] for state in states) for index in range(3)]
        assert list(merged["counts"]) == expected
        # Identity with a histogram that saw every observation directly.
        direct = Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            direct.observe(value)
        clone = Histogram()
        clone.load_state(merged)
        assert clone.cumulative() == direct.cumulative()
        assert clone.sum == pytest.approx(direct.sum)

    def test_merge_rejects_empty_and_mismatched_bounds(self):
        with pytest.raises(ValueError):
            merge_histogram_states([])
        with pytest.raises(ValueError):
            merge_histogram_states(self.states([(1,)]) + self.states([(1,)], buckets=(0.5, 2.0)))

    def test_quantiles_interpolate_and_handle_empty(self):
        (state,) = self.states([(0.05,) * 50 + (0.5,) * 50])
        p50, p99 = histogram_quantiles(state, (0.5, 0.99))
        assert 0.0 <= p50 <= 0.1 < p99 <= 1.0
        (empty,) = self.states([()])
        assert histogram_quantiles(empty, (0.5,)) == [None]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_worker_snapshot_merge_identity_across_backends(
        self, backend, tcp_worker_farm, standby_farm
    ):
        """Satellite acceptance: per-worker METRICS histogram states merge
        to the elementwise bucket sum on every backend."""
        standbys = standby_farm(2) if backend == "tcp+standby" else None
        backend = "tcp" if backend == "tcp+standby" else backend
        addresses = tcp_worker_farm(2) if backend == "tcp" else None
        service = make_service(
            backend=backend,
            worker_addresses=addresses,
            standby_addresses=standbys,
            trace_sample_rate=1.0,  # so event_latency states fill too
        )
        with service:
            service.ingest(make_stream(1_000))
            service.drain()
            snapshots = service.shard_metrics()
        assert len(snapshots) == 2
        for key in ("batch_seconds", "event_latency"):
            states = [snapshot[key] for snapshot in snapshots]
            assert all(state["bounds"] == states[0]["bounds"] for state in states)
            merged = merge_histogram_states(states)
            assert merged["count"] == sum(state["count"] for state in states) > 0
            assert merged["sum"] == pytest.approx(sum(state["sum"] for state in states))
            for index in range(len(merged["counts"])):
                assert merged["counts"][index] == sum(state["counts"][index] for state in states)


class TestMetricsRegistry:
    def test_family_creation_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("shard",))
        second = registry.counter("x_total", "other help", ("shard",))
        assert first is second

    def test_kind_or_schema_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", ("shard",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help", ("shard",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("query",))

    def test_label_arity_enforced(self):
        family = MetricsRegistry().counter("x_total", "help", ("shard", "query"))
        with pytest.raises(ValueError):
            family.labels("0")

    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs seen").inc(3)
        registry.gauge("depth", "Queue depth", ("shard",)).labels(0).set(2)
        registry.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render()
        assert_valid_exposition(text)
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert 'depth{shard="0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "help", ("name",)).labels('he"llo\\wor\nld').set(1)
        text = registry.render()
        assert 'g{name="he\\"llo\\\\wor\\nld"} 1' in text
        assert_valid_exposition(text)

    def test_remove_drops_the_series(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "help", ("query",))
        family.labels("doomed").inc()
        family.remove("doomed")
        assert 'query="doomed"' not in registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


@pytest.fixture()
def clean_logging():
    """Restore the default log configuration after a test that reconfigures it."""
    yield
    configure_logging()


class TestStructuredLogging:
    def test_text_formatter_appends_extras(self, clean_logging):
        sink = io.StringIO()
        configure_logging("info", "text", stream=sink)
        get_logger("runtime.test").info("hello", extra={"operation_id": "migrate-abc", "shard": 2})
        line = sink.getvalue().strip()
        assert "INFO repro.runtime.test hello" in line
        assert line.endswith("operation_id=migrate-abc shard=2")

    def test_json_formatter_emits_one_object_per_record(self, clean_logging):
        sink = io.StringIO()
        configure_logging("info", "json", stream=sink)
        get_logger("cli").info("did %d things", 3, extra={"operation_id": "split-def"})
        record = json.loads(sink.getvalue().strip())
        assert record["message"] == "did 3 things"
        assert record["level"] == "info"
        assert record["logger"] == "repro.cli"
        assert record["operation_id"] == "split-def"
        assert isinstance(JsonFormatter().format(logging.getLogRecordFactory()(
            "repro", logging.INFO, __file__, 1, "x", (), None
        )), str)

    def test_reconfiguration_replaces_the_handler(self, clean_logging):
        configure_logging("info", "text", stream=io.StringIO())
        configure_logging("debug", "json", stream=io.StringIO())
        tagged = [
            handler
            for handler in logging.getLogger("repro").handlers
            if getattr(handler, "_repro_observability_handler", False)
        ]
        assert len(tagged) == 1

    def test_invalid_level_and_format_rejected(self, clean_logging):
        with pytest.raises(ValueError):
            configure_logging("chatty")
        with pytest.raises(ValueError):
            configure_logging("info", "yaml")

    def test_new_operation_id_is_prefixed_and_unique(self):
        first, second = new_operation_id("migrate"), new_operation_id("migrate")
        assert first.startswith("migrate-") and second.startswith("migrate-")
        assert first != second

    def test_get_logger_namespacing(self):
        assert get_logger("runtime.worker").name == "repro.runtime.worker"
        assert get_logger("repro.cli").name == "repro.cli"


class TestConfigValidation:
    def test_metrics_port_range(self):
        with pytest.raises(ValueError):
            RuntimeConfig(metrics_port=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(metrics_port=70_000)
        assert RuntimeConfig(metrics_port=0).metrics_port == 0

    def test_log_level_and_format_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(log_level="chatty")
        with pytest.raises(ValueError):
            RuntimeConfig(log_format="yaml")


class TestLiveExposition:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_scrape_during_ingestion(self, backend, tcp_worker_farm, standby_farm):
        """Acceptance: /metrics is valid Prometheus text while tuples flow."""
        stream = make_stream(1_500)
        standbys = standby_farm(2) if backend == "tcp+standby" else None
        backend = "tcp" if backend == "tcp+standby" else backend
        addresses = tcp_worker_farm(2) if backend == "tcp" else None
        service = make_service(
            backend=backend,
            metrics_port=0,
            worker_addresses=addresses,
            standby_addresses=standbys,
        )
        with service:
            port = service.observability_port
            assert port is not None and port > 0
            for position, tup in enumerate(stream):
                service.ingest_one(tup)
                if position == len(stream) // 2:
                    status, headers, body = scrape(port, "/metrics")
                    assert status == 200
                    assert headers["Content-Type"] == CONTENT_TYPE_METRICS
                    assert_valid_exposition(body)
                    assert 'repro_shard_up{shard="0"} 1' in body
                    assert 'repro_shard_up{shard="1"} 1' in body
            service.drain()
            text = service.metrics_text(refresh=True)
        assert_valid_exposition(text)
        # One series per shard and per query.
        for shard in (0, 1):
            assert f'repro_shard_tuples_total{{shard="{shard}"}}' in text
            assert f'repro_shard_queue_depth{{shard="{shard}"}}' in text
        for name in QUERIES:
            assert f'query="{name}"' in text
        assert "repro_batch_seconds_bucket" in text
        assert "repro_ingested_tuples_total" in text
        assert service.observability_port is None  # server released on stop

    def test_backends_export_identically_shaped_series(self, tcp_worker_farm):
        """Acceptance: all backends expose the same set of core series.

        The ``tcp`` transport additionally exports its socket-level
        ``repro_worker_*`` series (connections, frames, bytes, send
        latency) — those are the only series allowed to differ.
        """
        shapes = {}
        for backend in BACKENDS:
            addresses = tcp_worker_farm(2) if backend == "tcp" else None
            service = make_service(backend=backend, worker_addresses=addresses)
            with service:
                service.ingest(make_stream(1_000))
                service.drain()
                shapes[backend] = series_names(service.metrics_text(refresh=True))
        baseline = shapes["threading"]
        assert shapes["multiprocessing"] == baseline
        assert shapes["tcp"] >= baseline
        extra = shapes["tcp"] - baseline
        assert extra and all(name.startswith("repro_worker_") for name in extra)

    def test_healthz_healthy_service(self):
        service = make_service(metrics_port=0)
        with service:
            service.ingest(make_stream(300))
            status, _, body = scrape(service.observability_port, "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["healthy"] is True
            assert len(health["shards"]) == 2
            assert all(shard["ok"] for shard in health["shards"])
            service.drain()

    def test_healthz_unhealthy_when_worker_killed(self):
        """Acceptance: /healthz goes non-200 when a shard worker dies."""
        service = make_service(backend="multiprocessing", metrics_port=0)
        port = None
        try:
            service.start()
            port = service.observability_port
            service.ingest(make_stream(300))
            service.drain()
            victim = service.workers[1]
            victim._process.kill()
            deadline = time.monotonic() + 10.0
            while victim.running and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not victim.running
            status, _, body = scrape(port, "/healthz")
            health = json.loads(body)
            assert status == 503
            assert health["healthy"] is False
            assert health["shards"][1]["ok"] is False
            assert health["shards"][0]["ok"] is True
        finally:
            with pytest.raises(ShardWorkerError):
                service.stop()
        if port is not None:  # the server must be released despite the dead shard
            with pytest.raises(OSError):
                urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=2)

    def test_unknown_path_is_404(self):
        service = make_service(metrics_port=0)
        with service:
            status, _, body = scrape(service.observability_port, "/nope")
            assert status == 404

    def test_healthz_reports_replication_state(self, tcp_worker_farm, standby_farm):
        """With standbys armed, /healthz carries per-shard replication facts."""
        service = make_service(
            backend="tcp",
            metrics_port=0,
            worker_addresses=tcp_worker_farm(2),
            standby_addresses=standby_farm(2),
        )
        with service:
            service.ingest(make_stream(600))
            service.drain()
            status, _, body = scrape(service.observability_port, "/healthz")
        health = json.loads(body)
        assert status == 200 and health["healthy"] is True
        for entry in health["shards"]:
            replication = entry["replication"]
            assert replication["standby_armed"] is True
            assert replication["standby_address"].startswith("127.0.0.1:")
            assert replication["acked_lsn"] >= 0
            assert replication["shipped_records"] >= replication["lag_records"] >= 0
            assert replication["pending_rearm"] is False
        assert health["pending_rearms"] == {}

    def test_healthz_stays_healthy_after_standby_loss(self, tcp_worker_farm):
        """A lost standby degrades the shard, never the liveness probe."""
        from repro.runtime import TcpWorkerServer

        standbys = [TcpWorkerServer("127.0.0.1", 0) for _ in range(2)]
        standby_addresses = tuple(f"127.0.0.1:{server.start_in_background()}" for server in standbys)
        service = make_service(
            backend="tcp",
            metrics_port=0,
            worker_addresses=tcp_worker_farm(2),
            standby_addresses=standby_addresses,
        )
        stream = make_stream(800)
        try:
            with service:
                service.ingest(stream[:400])
                service.drain()
                for server in standbys:
                    server.stop()  # the whole standby fleet vanishes
                service.ingest(stream[400:])
                service.drain()
                status, _, body = scrape(service.observability_port, "/healthz")
        finally:
            for server in standbys:
                server.stop()
        health = json.loads(body)
        assert status == 200 and health["healthy"] is True
        assert all(entry["replication"]["standby_armed"] is False for entry in health["shards"])

    def test_healthz_omits_replication_without_standbys(self):
        service = make_service(metrics_port=0)
        with service:
            service.ingest(make_stream(200))
            status, _, body = scrape(service.observability_port, "/healthz")
            service.drain()
        health = json.loads(body)
        assert "replication" not in health["shards"][0]
        assert "pending_rearms" not in health


class TestOperationCorrelation:
    def test_migrate_logs_share_one_operation_id(self, caplog):
        """Acceptance: one operation ID correlates coordinator and both workers."""
        stream = make_stream(800)
        service = make_service()
        with service:
            service.ingest(stream[:400])
            source = service.shard_of("chains")
            target = 1 - source
            caplog.clear()
            with caplog.at_level(logging.INFO, logger="repro"):
                service.migrate("chains", target)
            service.ingest(stream[400:])
            service.drain()
            summary = service.summary()
        records = [
            record
            for record in caplog.records
            if getattr(record, "operation_id", "").startswith("migrate-")
        ]
        operation_ids = {record.operation_id for record in records}
        assert len(operation_ids) == 1
        operation_id = operation_ids.pop()
        loggers = {record.name for record in records}
        assert "repro.runtime.service" in loggers  # the coordinator
        assert "repro.runtime.worker" in loggers  # both shard workers
        shards = {record.shard for record in records if hasattr(record, "shard")}
        assert {source, target} <= shards
        assert summary["migrations"][0]["operation_id"] == operation_id

    def test_split_records_an_operation_id(self):
        service = make_service(shards=3)
        with service:
            service.ingest(make_stream(600))
            service.split("chains", 2)
            service.drain()
            summary = service.summary()
        assert summary["splits"][0]["operation_id"].startswith("split-")

    def test_lifecycle_metrics_count_operations(self):
        service = make_service()
        with service:
            service.ingest(make_stream(400))
            service.migrate("chains", 1 - service.shard_of("chains"))
            service.drain()
            text = service.metrics_text(refresh=True)
        assert 'repro_lifecycle_operations_total{operation="migrate"} 1' in text
        assert 'repro_lifecycle_operation_seconds_count{operation="migrate"} 1' in text


class TestSlowBatchWarning:
    def test_slow_batches_are_warned_about(self, caplog, monkeypatch):
        import repro.runtime.worker as worker_module

        monkeypatch.setattr(worker_module, "SLOW_BATCH_SECONDS", -1.0)
        monkeypatch.setattr(worker_module, "SLOW_BATCH_WARN_INTERVAL", 0.0)
        service = make_service()
        with caplog.at_level(logging.WARNING, logger="repro"):
            with service:
                service.ingest(make_stream(300))
                service.drain()
        warnings = [r for r in caplog.records if "slow batch" in r.getMessage()]
        assert warnings
        assert all(hasattr(record, "shard") for record in warnings)


class TestDurabilityInstrumentation:
    def durable_run(self, tmp_path, fsync="always"):
        wal_dir = tmp_path / "state"
        service = make_service(
            wal_dir=str(wal_dir), checkpoint_interval=300, wal_fsync=fsync
        )
        with service:
            service.ingest(make_stream(900))
            service.drain()
            text = service.metrics_text(refresh=True)
        return wal_dir, text

    def test_wal_and_checkpoint_series(self, tmp_path):
        _, text = self.durable_run(tmp_path)
        assert_valid_exposition(text)
        for shard in (0, 1):
            assert f'repro_wal_appended_bytes_total{{shard="{shard}"}}' in text
            assert f'repro_wal_append_seconds_count{{shard="{shard}"}}' in text
            assert f'repro_wal_fsync_seconds_count{{shard="{shard}"}}' in text
        assert 'repro_checkpoints_total{kind="base"}' in text
        assert 'repro_checkpoints_total{kind="delta"}' in text
        assert "repro_checkpoint_seconds_count" in text
        assert 'repro_checkpoint_bytes{kind=' in text
        assert "repro_checkpoint_delta_ratio" in text

    def test_recovery_reports_phase_timings(self, tmp_path):
        wal_dir, _ = self.durable_run(tmp_path, fsync="batch")
        result = RecoveryManager(str(wal_dir)).recover()
        assert result.operation_id.startswith("recover-")
        assert {"fold", "restore", "replay"} <= set(result.phase_seconds)
        assert all(seconds >= 0.0 for seconds in result.phase_seconds.values())
