"""Property-based tests for the streaming evaluators (hypothesis).

The central invariant: under the implicit window model, the set of distinct
pairs produced by the incremental algorithms over a stream equals the union
over all arrival timestamps of the batch answer on the corresponding window
snapshot (the streaming oracle).
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro import RAPQEvaluator, RSPQEvaluator, WindowSpec
from repro.graph.tuples import StreamingGraphTuple
from repro.regex.dfa import compile_query

from helpers import streaming_oracle

VERTICES = ["v0", "v1", "v2", "v3", "v4"]
LABELS = ["a", "b"]

#: Query pool mixing conflict-free and conflict-prone shapes.
QUERIES = ["a", "a b", "a+", "a*", "(a b)+", "a b*", "a* b*", "(a | b)+", "a | b a"]


@st.composite
def small_streams(draw, max_edges: int = 22) -> List[StreamingGraphTuple]:
    """Random small insertion-only streams with non-decreasing timestamps."""
    count = draw(st.integers(min_value=1, max_value=max_edges))
    tuples: List[StreamingGraphTuple] = []
    timestamp = 0
    for _ in range(count):
        timestamp += draw(st.integers(min_value=0, max_value=3))
        source = draw(st.sampled_from(VERTICES))
        target = draw(st.sampled_from([v for v in VERTICES if v != source]))
        label = draw(st.sampled_from(LABELS))
        tuples.append(StreamingGraphTuple(max(timestamp, 1), source, target, label))
    return tuples


@st.composite
def windows(draw) -> WindowSpec:
    size = draw(st.integers(min_value=2, max_value=12))
    slide = draw(st.integers(min_value=1, max_value=size))
    return WindowSpec(size=size, slide=slide)


@settings(max_examples=80, deadline=None)
@given(stream=small_streams(), window=windows(), query=st.sampled_from(QUERIES))
def test_rapq_matches_streaming_oracle(stream, window, query):
    evaluator = RAPQEvaluator(query, window)
    evaluator.process_stream(stream)
    expected = streaming_oracle(stream, compile_query(query), window.size)
    assert evaluator.answer_pairs() == expected


@settings(max_examples=60, deadline=None)
@given(stream=small_streams(max_edges=14), window=windows(), query=st.sampled_from(QUERIES))
def test_rspq_matches_simple_path_oracle(stream, window, query):
    evaluator = RSPQEvaluator(query, window, max_nodes_per_tree=100_000)
    evaluator.process_stream(stream)
    expected = streaming_oracle(stream, compile_query(query), window.size, simple_paths=True)
    assert evaluator.answer_pairs() == expected


@settings(max_examples=50, deadline=None)
@given(stream=small_streams(max_edges=14), window=windows(), query=st.sampled_from(QUERIES))
def test_simple_path_results_are_a_subset_of_arbitrary(stream, window, query):
    rapq = RAPQEvaluator(query, window)
    rspq = RSPQEvaluator(query, window, max_nodes_per_tree=100_000)
    rapq.process_stream(stream)
    rspq.process_stream(stream)
    assert rspq.answer_pairs() <= rapq.answer_pairs()


@settings(max_examples=50, deadline=None)
@given(stream=small_streams(), window=windows(), query=st.sampled_from(QUERIES))
def test_results_are_monotone_over_time(stream, window, query):
    """Processing a prefix of the stream never yields pairs missing from the full run."""
    evaluator_full = RAPQEvaluator(query, window)
    evaluator_full.process_stream(stream)
    prefix = stream[: len(stream) // 2]
    evaluator_prefix = RAPQEvaluator(query, window)
    evaluator_prefix.process_stream(prefix)
    assert evaluator_prefix.answer_pairs() <= evaluator_full.answer_pairs()


@settings(max_examples=40, deadline=None)
@given(stream=small_streams(), window=windows(), query=st.sampled_from(["a", "a+", "(a b)+"]))
def test_beta_does_not_change_the_answer_set(stream, window, query):
    """The slide interval controls cleanup frequency only, never the answers."""
    eager = RAPQEvaluator(query, WindowSpec(size=window.size, slide=1))
    lazy = RAPQEvaluator(query, WindowSpec(size=window.size, slide=window.size))
    eager.process_stream(stream)
    lazy.process_stream(stream)
    assert eager.answer_pairs() == lazy.answer_pairs()


@settings(max_examples=40, deadline=None)
@given(
    stream=small_streams(max_edges=16),
    window=windows(),
    query=st.sampled_from(["a", "a+", "a b"]),
    data=st.data(),
)
def test_deletions_keep_active_pairs_within_reported_pairs(stream, window, query, data):
    """With explicit deletions mixed in, the active view stays inside the
    reported set and the reported set still matches the insert-only oracle of
    the effective stream."""
    # interleave deletions of previously inserted edges
    augmented: List[StreamingGraphTuple] = []
    inserted: List[StreamingGraphTuple] = []
    for tup in stream:
        augmented.append(tup)
        inserted.append(tup)
        if inserted and data.draw(st.booleans(), label="delete_here"):
            victim = data.draw(st.sampled_from(inserted), label="victim")
            augmented.append(victim.as_delete(tup.timestamp))
    evaluator = RAPQEvaluator(query, window)
    evaluator.process_stream(augmented)
    assert evaluator.active_pairs() <= evaluator.answer_pairs()
