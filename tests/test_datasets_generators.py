"""Tests for the synthetic streaming-graph generators."""

from __future__ import annotations

import pytest

from repro.datasets.gmark import (
    GMarkGraphGenerator,
    GMarkQueryGenerator,
    GMarkRelation,
    GMarkSchema,
    default_social_schema,
)
from repro.datasets.ldbc import LDBC_LABELS, LDBCLikeGenerator
from repro.datasets.stackoverflow import SO_LABELS, StackOverflowGenerator
from repro.datasets.synthetic import (
    PreferentialAttachmentStreamGenerator,
    UniformStreamGenerator,
    timestamps_at_fixed_rate,
)
from repro.datasets.yago import YAGO_QUERY_LABELS, YagoLikeGenerator
from repro.regex.analysis import analyze


def assert_valid_stream(tuples, expected_count):
    assert len(tuples) == expected_count
    stamps = [t.timestamp for t in tuples]
    assert stamps == sorted(stamps), "timestamps must be non-decreasing"
    assert all(t.is_insert for t in tuples)
    assert all(t.source != t.target or True for t in tuples)


class TestTimestampsAtFixedRate:
    def test_groups_of_equal_timestamps(self):
        assert timestamps_at_fixed_rate(6, 2) == [1, 1, 2, 2, 3, 3]

    def test_rate_one(self):
        assert timestamps_at_fixed_rate(3, 1) == [1, 2, 3]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            timestamps_at_fixed_rate(3, 0)


class TestUniformGenerator:
    def test_basic_properties(self):
        stream = UniformStreamGenerator(num_vertices=20, labels=["a", "b"], seed=5).generate(200)
        assert_valid_stream(list(stream), 200)
        assert {t.label for t in stream} == {"a", "b"}
        assert all(t.source != t.target for t in stream)

    def test_deterministic_for_seed(self):
        gen = lambda: list(UniformStreamGenerator(num_vertices=10, labels=["a"], seed=3).generate(50))
        assert gen() == gen()

    def test_different_seeds_differ(self):
        a = list(UniformStreamGenerator(num_vertices=10, labels=["a"], seed=1).generate(50))
        b = list(UniformStreamGenerator(num_vertices=10, labels=["a"], seed=2).generate(50))
        assert a != b

    def test_label_weights_respected(self):
        stream = UniformStreamGenerator(
            num_vertices=10, labels=["common", "rare"], label_weights=[0.95, 0.05], seed=7
        ).generate(500)
        labels = [t.label for t in stream]
        assert labels.count("common") > labels.count("rare") * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformStreamGenerator(num_vertices=1, labels=["a"])
        with pytest.raises(ValueError):
            UniformStreamGenerator(num_vertices=5, labels=[])
        with pytest.raises(ValueError):
            UniformStreamGenerator(num_vertices=5, labels=["a"], label_weights=[1.0, 2.0])


class TestPreferentialAttachment:
    def test_basic_properties(self):
        stream = PreferentialAttachmentStreamGenerator(labels=["x"], seed=11).generate(300)
        assert_valid_stream(list(stream), 300)

    def test_skewed_degrees(self):
        """Preferential attachment must produce hubs (degree skew)."""
        stream = PreferentialAttachmentStreamGenerator(
            labels=["x"], new_vertex_probability=0.05, seed=13
        ).generate(1000)
        degree = {}
        for tup in stream:
            degree[tup.source] = degree.get(tup.source, 0) + 1
            degree[tup.target] = degree.get(tup.target, 0) + 1
        degrees = sorted(degree.values(), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees)), "expected a hub vertex"

    def test_validation(self):
        with pytest.raises(ValueError):
            PreferentialAttachmentStreamGenerator(labels=[], seed=1)
        with pytest.raises(ValueError):
            PreferentialAttachmentStreamGenerator(labels=["a"], new_vertex_probability=0.0)


class TestStackOverflowGenerator:
    def test_labels_and_order(self):
        stream = list(StackOverflowGenerator(seed=3).generate(500))
        assert_valid_stream(stream, 500)
        assert {t.label for t in stream} <= set(SO_LABELS)
        # the SO graph is label-dense: all three labels appear
        assert {t.label for t in stream} == set(SO_LABELS)

    def test_deterministic(self):
        a = list(StackOverflowGenerator(seed=9).generate(100))
        b = list(StackOverflowGenerator(seed=9).generate(100))
        assert a == b


class TestLDBCGenerator:
    def test_schema_type_correctness(self):
        stream = list(LDBCLikeGenerator(seed=5).generate(800))
        assert_valid_stream(stream, 800)
        assert {t.label for t in stream} <= set(LDBC_LABELS)
        for tup in stream:
            if tup.label == "knows":
                assert str(tup.source).startswith("person") and str(tup.target).startswith("person")
            elif tup.label == "likes":
                assert str(tup.source).startswith("person")
                assert str(tup.target).startswith(("post", "comment"))
            elif tup.label == "hasCreator":
                assert str(tup.source).startswith(("post", "comment"))
                assert str(tup.target).startswith("person")
            elif tup.label == "replyOf":
                assert str(tup.source).startswith("comment")
                assert str(tup.target).startswith(("post", "comment"))

    def test_recursive_relations_present(self):
        labels = {t.label for t in LDBCLikeGenerator(seed=5).generate(800)}
        assert "knows" in labels and "replyOf" in labels


class TestYagoGenerator:
    def test_many_predicates_mostly_noise(self):
        stream = list(YagoLikeGenerator(seed=7).generate(2000))
        assert_valid_stream(stream, 2000)
        labels = {t.label for t in stream}
        assert len(labels) > 30, "Yago-like graph should have a large predicate vocabulary"
        query_label_tuples = [t for t in stream if t.label in YAGO_QUERY_LABELS]
        assert 0 < len(query_label_tuples) < len(stream) / 2

    def test_fixed_rate_timestamps(self):
        generator = YagoLikeGenerator(seed=7, edges_per_timestamp=10)
        stream = list(generator.generate(100))
        from collections import Counter

        counts = Counter(t.timestamp for t in stream)
        assert set(counts.values()) == {10}


class TestGMark:
    def test_default_schema_valid(self):
        schema = default_social_schema()
        schema.validate()
        assert "knows" in schema.labels()

    def test_schema_validation_errors(self):
        schema = GMarkSchema(
            vertex_populations={"person": 10},
            relations=[GMarkRelation("likes", "person", "post")],
        )
        with pytest.raises(ValueError):
            schema.validate()

    def test_graph_generator_type_correct(self):
        schema = default_social_schema(scale=50)
        stream = list(GMarkGraphGenerator(schema=schema, seed=3).generate(500))
        assert_valid_stream(stream, 500)
        relations = {r.label: r for r in schema.relations}
        for tup in stream:
            relation = relations[tup.label]
            assert str(tup.source).startswith(relation.source_type)
            assert str(tup.target).startswith(relation.target_type)

    def test_query_generator_sizes(self):
        generator = GMarkQueryGenerator(labels=["a", "b", "c"], seed=5)
        for size in range(2, 21):
            expression = generator.generate_query(size)
            node = analyze(expression).expression
            assert node.size() == size, f"requested {size}, got {node.size()} for {expression}"

    def test_query_workload_covers_size_range(self):
        generator = GMarkQueryGenerator(labels=["a", "b"], seed=5)
        workload = generator.generate_workload(40, min_size=2, max_size=10)
        assert len(workload) == 40
        sizes = {size for size, _ in workload}
        assert sizes == set(range(2, 11))

    def test_query_generator_validation(self):
        with pytest.raises(ValueError):
            GMarkQueryGenerator(labels=[])
        generator = GMarkQueryGenerator(labels=["a"])
        with pytest.raises(ValueError):
            generator.generate_query(0)
        with pytest.raises(ValueError):
            generator.generate_workload(5, min_size=8, max_size=2)
