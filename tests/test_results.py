"""Unit tests for the append-only result stream."""

from __future__ import annotations

from repro.core.results import ResultEvent, ResultStream


class TestReport:
    def test_report_appends_event(self):
        stream = ResultStream()
        event = stream.report("x", "y", 7)
        assert event.pair == ("x", "y")
        assert event.positive
        assert len(stream) == 1
        assert ("x", "y") in stream

    def test_distinct_pairs_deduplicate(self):
        stream = ResultStream()
        stream.report("x", "y", 1)
        stream.report("x", "y", 5)
        assert len(stream) == 2
        assert stream.distinct_pairs == {("x", "y")}

    def test_events_preserve_order(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        stream.report("c", "d", 2)
        assert [e.pair for e in stream.events] == [("a", "b"), ("c", "d")]

    def test_pairs_reported_at(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        stream.report("c", "d", 2)
        stream.report("e", "f", 2)
        assert stream.pairs_reported_at(2) == {("c", "d"), ("e", "f")}


class TestInvalidate:
    def test_invalidation_removes_from_active(self):
        stream = ResultStream()
        stream.report("x", "y", 1)
        stream.invalidate("x", "y", 5)
        assert stream.active_pairs == set()
        # implicit-window semantics: the distinct set never shrinks
        assert stream.distinct_pairs == {("x", "y")}

    def test_multiple_supports(self):
        stream = ResultStream()
        stream.report("x", "y", 1)
        stream.report("x", "y", 2)
        stream.invalidate("x", "y", 3)
        assert stream.active_pairs == {("x", "y")}
        stream.invalidate("x", "y", 4)
        assert stream.active_pairs == set()

    def test_positives_and_negatives(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        stream.invalidate("a", "b", 2)
        assert len(stream.positives()) == 1
        assert len(stream.negatives()) == 1

    def test_invalidate_unknown_pair_is_harmless(self):
        stream = ResultStream()
        stream.invalidate("p", "q", 3)
        assert stream.active_pairs == set()
        assert len(stream) == 1


class TestExtendAndIteration:
    def test_extend_merges_events(self):
        source = ResultStream()
        source.report("a", "b", 1)
        source.invalidate("a", "b", 2)
        target = ResultStream()
        target.extend(iter(source.events))
        assert len(target) == 2
        assert target.distinct_pairs == {("a", "b")}
        assert target.active_pairs == set()

    def test_iteration(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        assert [event.pair for event in stream] == [("a", "b")]

    def test_str(self):
        stream = ResultStream()
        stream.report("a", "b", 1)
        assert "events=1" in str(stream)


class TestResultEvent:
    def test_str_sign(self):
        positive = ResultEvent(1, "a", "b", positive=True)
        negative = ResultEvent(2, "a", "b", positive=False)
        assert str(positive).startswith("+")
        assert str(negative).startswith("-")
