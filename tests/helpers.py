"""Shared helpers for the test suite: oracles and tiny stream builders."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.batch import batch_rapq, batch_rspq
from repro.graph.snapshot import SnapshotGraph
from repro.graph.tuples import StreamingGraphTuple
from repro.regex.dfa import DFA


def window_snapshot(
    tuples: Sequence[StreamingGraphTuple],
    now: int,
    window_size: int,
) -> SnapshotGraph:
    """Build the snapshot graph of the window ``(now - window_size, now]``.

    Explicit deletions are applied in stream order, exactly as the engine
    would apply them.
    """
    snapshot = SnapshotGraph()
    for tup in tuples:
        if tup.timestamp > now:
            break
        if tup.is_delete:
            snapshot.delete(tup.source, tup.target, tup.label)
        else:
            snapshot.insert_tuple(tup)
    snapshot.expire(now - window_size)
    return snapshot


def streaming_oracle(
    tuples: Sequence[StreamingGraphTuple],
    dfa: DFA,
    window_size: int,
    simple_paths: bool = False,
) -> Set[Tuple[object, object]]:
    """Ground truth for implicit-window streaming RPQ results.

    Under implicit window semantics the streaming answer is the union, over
    every arrival timestamp ``tau``, of the batch answer on the snapshot of
    the window ``(tau - |W|, tau]``.
    """
    answers: Set[Tuple[object, object]] = set()
    seen_timestamps: Set[int] = set()
    for tup in tuples:
        if tup.timestamp in seen_timestamps:
            continue
        seen_timestamps.add(tup.timestamp)
    for now in sorted(seen_timestamps):
        snapshot = window_snapshot(tuples, now, window_size)
        if simple_paths:
            answers |= batch_rspq(snapshot, dfa)
        else:
            answers |= batch_rapq(snapshot, dfa)
    return answers


def insert_stream(edges: Iterable[Tuple[int, object, object, str]]) -> List[StreamingGraphTuple]:
    """Build an insertion-only stream from ``(timestamp, source, target, label)`` tuples."""
    return [StreamingGraphTuple(ts, src, dst, label) for ts, src, dst, label in edges]
