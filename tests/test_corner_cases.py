"""Corner-case and robustness tests for the streaming evaluators."""

from __future__ import annotations

from repro import RAPQEvaluator, RSPQEvaluator, StreamingRPQEngine, WindowSpec, sgt
from repro.regex.dfa import compile_query

from helpers import insert_stream, streaming_oracle


class TestSelfLoops:
    def test_self_loop_under_arbitrary_semantics(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=10))
        evaluator.process(sgt(1, "v", "v", "a"))
        assert ("v", "v") in evaluator.answer_pairs()

    def test_self_loop_with_concatenation(self):
        evaluator = RAPQEvaluator("a a", WindowSpec(size=10))
        evaluator.process(sgt(1, "v", "v", "a"))
        assert evaluator.answer_pairs() == {("v", "v")}

    def test_self_loop_excluded_under_simple_semantics(self):
        evaluator = RSPQEvaluator("a+", WindowSpec(size=10))
        evaluator.process(sgt(1, "v", "v", "a"))
        assert evaluator.answer_pairs() == set()

    def test_self_loop_matches_oracle(self):
        stream = insert_stream([(1, "v", "v", "a"), (2, "v", "w", "a"), (3, "w", "v", "a")])
        window = WindowSpec(size=10)
        evaluator = RAPQEvaluator("a+", window)
        evaluator.process_stream(stream)
        expected = streaming_oracle(stream, compile_query("a+"), window.size)
        assert evaluator.answer_pairs() == expected


class TestVertexAndLabelTypes:
    def test_integer_vertices(self):
        evaluator = RAPQEvaluator("edge+", WindowSpec(size=10))
        evaluator.process(sgt(1, 10, 20, "edge"))
        evaluator.process(sgt(2, 20, 30, "edge"))
        assert (10, 30) in evaluator.answer_pairs()

    def test_tuple_vertices(self):
        evaluator = RAPQEvaluator("e", WindowSpec(size=10))
        evaluator.process(sgt(1, ("a", 1), ("b", 2), "e"))
        assert ((("a", 1), ("b", 2))) in {tuple(p) for p in evaluator.answer_pairs()}

    def test_unicode_and_uri_labels(self):
        evaluator = RAPQEvaluator("<http://example.org/knows>+", WindowSpec(size=10))
        evaluator.process(sgt(1, "α", "β", "http://example.org/knows"))
        evaluator.process(sgt(2, "β", "γ", "http://example.org/knows"))
        assert ("α", "γ") in evaluator.answer_pairs()


class TestTimestampPatterns:
    def test_all_tuples_share_one_timestamp(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=5))
        stream = insert_stream([(7, "a", "b", "a"), (7, "b", "c", "a"), (7, "c", "d", "a")])
        evaluator.process_stream(stream)
        assert ("a", "d") in evaluator.answer_pairs()

    def test_large_timestamp_gap_resets_state(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=10, slide=10))
        evaluator.process(sgt(1, "a", "b", "a"))
        evaluator.process(sgt(1_000_000, "b", "c", "a"))
        assert ("a", "c") not in evaluator.answer_pairs()
        assert evaluator.index.num_trees <= 2

    def test_timestamp_zero_and_negative_watermark(self):
        evaluator = RAPQEvaluator("a b", WindowSpec(size=100))
        evaluator.process(sgt(0, "u", "v", "a"))
        evaluator.process(sgt(1, "v", "w", "b"))
        assert ("u", "w") in evaluator.answer_pairs()


class TestLongChains:
    def test_cascade_deeper_than_default_recursion_limit(self):
        """The iterative Insert must handle traversals far deeper than Python's
        recursion limit (the reason the implementation is not recursive).

        The chain carries label 'a' but the query only starts on 'trigger', so
        only one spanning tree exists; inserting the trigger edge last makes a
        single Insert call cascade through the whole 3000-edge chain.
        """
        length = 3000
        evaluator = RAPQEvaluator("trigger a+", WindowSpec(size=length + 10))
        for i in range(length):
            evaluator.process(sgt(i + 1, f"v{i}", f"v{i+1}", "a"))
        evaluator.process(sgt(length + 1, "root", "v0", "trigger"))
        assert ("root", f"v{length}") in evaluator.answer_pairs()
        assert evaluator.index.num_trees == 1

    def test_deep_cascade_simple_semantics(self):
        length = 1200
        evaluator = RSPQEvaluator("trigger a+", WindowSpec(size=length + 10))
        for i in range(length):
            evaluator.process(sgt(i + 1, f"v{i}", f"v{i+1}", "a"))
        evaluator.process(sgt(length + 1, "root", "v0", "trigger"))
        assert ("root", f"v{length}") in evaluator.answer_pairs()


class TestParallelEdges:
    def test_same_edge_two_labels(self):
        evaluator = RAPQEvaluator("a b", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "u", "v", "b"))
        evaluator.process(sgt(3, "v", "w", "b"))
        assert ("u", "w") in evaluator.answer_pairs()

    def test_opposite_direction_edges_are_distinct(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=10))
        evaluator.process(sgt(1, "u", "v", "a"))
        assert ("v", "u") not in evaluator.answer_pairs()


class TestEngineRobustness:
    def test_engine_with_no_queries(self):
        engine = StreamingRPQEngine(WindowSpec(size=10))
        assert engine.process(sgt(1, "a", "b", "x")) == {}
        assert engine.summary() == {}

    def test_query_registered_mid_stream_sees_only_the_future(self):
        engine = StreamingRPQEngine(WindowSpec(size=100))
        engine.register("first", "a")
        engine.process(sgt(1, "u", "v", "a"))
        engine.register("late", "a")
        engine.process(sgt(2, "x", "y", "a"))
        assert engine.query("first").answer_pairs() == {("u", "v"), ("x", "y")}
        assert engine.query("late").answer_pairs() == {("x", "y")}

    def test_single_vertex_query_on_empty_alphabet_stream(self):
        evaluator = RAPQEvaluator("nonexistent", WindowSpec(size=10))
        evaluator.process_stream(insert_stream([(1, "a", "b", "x"), (2, "b", "c", "y")]))
        assert evaluator.answer_pairs() == set()
        assert evaluator.index.num_trees == 0
