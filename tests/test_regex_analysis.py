"""Unit tests for the suffix-language / conflict-freedom analysis (§4)."""

from __future__ import annotations

import pytest

from repro.regex.analysis import (
    analyze,
    has_containment_property,
    is_restricted_expression,
    suffix_containment_matrix,
)
from repro.regex.dfa import compile_query


class TestSuffixContainment:
    def test_reflexive(self):
        dfa = compile_query("(a b)+")
        matrix = suffix_containment_matrix(dfa)
        for state in dfa.states:
            assert matrix[(state, state)]

    def test_star_query_all_states_equivalent(self):
        """For a* the single state's suffix language is a*, contained in itself."""
        dfa = compile_query("a*")
        matrix = suffix_containment_matrix(dfa)
        assert all(matrix.values())

    def test_figure1_query_conflict_pair(self):
        """For (follows mentions)+ the state after 'follows' does not contain
        the suffix language of the accepting state (Example 4.1)."""
        analysis = analyze("(follows mentions)+")
        dfa = analysis.dfa
        after_follows = dfa.delta(dfa.start, "follows")
        accepting = dfa.delta(after_follows, "mentions")
        assert accepting in dfa.finals
        assert not analysis.suffix_contains(after_follows, accepting)
        assert not analysis.suffix_contains(accepting, after_follows)

    def test_a_star_b_star_containment(self):
        """In a* b*, moving forward only shrinks the suffix language."""
        analysis = analyze("a* b*")
        dfa = analysis.dfa
        after_b = dfa.delta(dfa.start, "b")
        assert analysis.suffix_contains(dfa.start, after_b)


class TestContainmentProperty:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("a*", True),
            ("(a | b | c)*", True),
            # (a|b)+ lacks the property: the accepting state's suffix language
            # includes the empty word while the start state's does not.
            ("(a | b)+", False),
            ("a* b*", True),
            ("a b*", False),
            ("(a b)+", False),
            ("a b* c", False),
            ("a b c", False),
        ],
    )
    def test_known_cases(self, expression, expected):
        assert has_containment_property(compile_query(expression)) is expected

    def test_matrix_can_be_supplied(self):
        dfa = compile_query("a*")
        matrix = suffix_containment_matrix(dfa)
        assert has_containment_property(dfa, matrix)


class TestRestrictedExpressions:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("a*", True),                  # Q1
            ("(a | b | c)*", True),        # Q4
            ("(a | b | c)+", False),       # Q9 is not restricted (see analysis docstring)
            ("a b c", True),               # Q11
            ("a", True),
            ("a b*", False),               # Q2
            ("a b* c*", False),            # Q3
            ("a? b*", False),              # Q8
            ("(a b)+", False),
        ],
    )
    def test_detection(self, expression, expected):
        assert is_restricted_expression(expression) is expected


class TestQueryAnalysis:
    def test_fields(self):
        analysis = analyze("(follows mentions)+")
        assert analysis.num_states == 3
        assert analysis.alphabet == frozenset({"follows", "mentions"})
        assert analysis.restricted is False
        assert analysis.containment_property is False
        assert not analysis.conflict_free_by_query()

    def test_conflict_free_by_query_for_star(self):
        analysis = analyze("knows*")
        assert analysis.conflict_free_by_query()

    def test_str_mentions_k(self):
        assert "k=3" in str(analyze("(a b)+"))

    def test_accepts_ast_input(self):
        from repro.regex.parser import parse

        node = parse("a b*")
        analysis = analyze(node)
        assert analysis.expression == node

    def test_paper_table4_restricted_queries(self):
        """Q1, Q4 and Q11 are restricted and therefore conflict-free anywhere."""
        q1 = analyze("a2q*")
        q4 = analyze("(a2q | c2a | c2q)*")
        q11 = analyze("a2q c2a c2q")
        assert q1.conflict_free_by_query()
        assert q4.conflict_free_by_query()
        assert q11.conflict_free_by_query()

    def test_q9_is_not_conflict_free_by_query(self):
        assert not analyze("(a2q | c2a | c2q)+").conflict_free_by_query()
