"""Write-ahead log unit tests: record format, rotation, torn tails, pruning."""

from __future__ import annotations

import struct

import pytest

from repro.errors import WALCorruptionError
from repro.graph.tuples import sgt
from repro.runtime.durability import wal


def write_tuples(writer, count, start_idx=1):
    for offset in range(count):
        idx = start_idx + offset
        writer.append(wal.TUPLE, idx, 0, sgt(idx, f"u{idx}", f"v{idx}", "a").to_wire())


class TestRecordRoundTrip:
    def test_tuple_records_round_trip_in_order(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "shard-0")
        write_tuples(writer, 5)
        writer.close()
        records = list(wal.read_wal(tmp_path / "shard-0"))
        assert [record.lsn for record in records] == [1, 2, 3, 4, 5]
        assert [record.idx for record in records] == [1, 2, 3, 4, 5]
        assert all(record.type == wal.TUPLE for record in records)
        # the wire form survives byte-exactly (lists from JSON)
        assert records[2].data == [3, "u3", "v3", "a", "+"]

    def test_control_records_carry_op_and_payload(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log")
        writer.append(wal.REGISTER, 0, 1, ["q", "a+", "arbitrary", None, None])
        writer.append(wal.RESTORE, 7, 2, ["q", "arbitrary", {"format": 2, "query": "a+"}])
        writer.append(wal.DEREGISTER, 9, 3, "q")
        writer.close()
        register, restore, deregister = wal.read_wal(tmp_path / "log")
        assert (register.type, register.op) == (wal.REGISTER, 1)
        assert restore.data[2]["query"] == "a+"
        assert (deregister.idx, deregister.data) == (9, "q")

    def test_start_lsn_skips_the_checkpointed_prefix(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log")
        write_tuples(writer, 10)
        writer.close()
        assert [record.lsn for record in wal.read_wal(tmp_path / "log", start_lsn=7)] == [8, 9, 10]

    def test_missing_directory_reads_as_empty(self, tmp_path):
        assert list(wal.read_wal(tmp_path / "nothing-here")) == []


class TestRotationAndPruning:
    def test_rotation_splits_the_log_across_segments(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log", segment_bytes=200)
        write_tuples(writer, 20)
        writer.close()
        segments = sorted((tmp_path / "log").glob("seg-*.wal"))
        assert len(segments) > 2
        # reading crosses segment boundaries seamlessly
        assert [record.lsn for record in wal.read_wal(tmp_path / "log")] == list(range(1, 21))

    def test_prune_deletes_only_fully_covered_segments(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log", segment_bytes=200)
        write_tuples(writer, 20)
        writer.close()
        before = len(list((tmp_path / "log").glob("seg-*.wal")))
        deleted = wal.prune_segments(tmp_path / "log", horizon_lsn=10)
        assert deleted and len(deleted) < before
        # every record past the horizon is still readable
        survivors = [record.lsn for record in wal.read_wal(tmp_path / "log", start_lsn=10)]
        assert survivors == list(range(11, 21))

    def test_prune_never_deletes_the_active_segment(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log")  # everything fits one segment
        write_tuples(writer, 5)
        writer.close()
        assert wal.prune_segments(tmp_path / "log", horizon_lsn=5) == []
        assert len(list((tmp_path / "log").glob("seg-*.wal"))) == 1

    def test_segment_gap_is_corruption(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log", segment_bytes=200)
        write_tuples(writer, 20)
        writer.close()
        segments = sorted((tmp_path / "log").glob("seg-*.wal"))
        segments[1].unlink()  # a hole in the middle of the chain
        with pytest.raises(WALCorruptionError, match="chain broken"):
            list(wal.read_wal(tmp_path / "log"))


class TestTornTailsAndCorruption:
    def test_torn_tail_of_last_segment_is_tolerated(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log")
        write_tuples(writer, 5)
        writer.close()
        segment = next((tmp_path / "log").glob("seg-*.wal"))
        blob = segment.read_bytes()
        segment.write_bytes(blob[:-3])  # the crash tore the last record
        records = list(wal.read_wal(tmp_path / "log"))
        assert [record.lsn for record in records] == [1, 2, 3, 4]

    def test_torn_header_of_last_segment_is_tolerated(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log")
        write_tuples(writer, 3)
        writer.close()
        segment = next((tmp_path / "log").glob("seg-*.wal"))
        with segment.open("ab") as handle:
            handle.write(b"\x05")  # a lone partial length prefix
        assert [record.lsn for record in wal.read_wal(tmp_path / "log")] == [1, 2, 3]

    def test_crc_mismatch_mid_log_raises_with_offset(self, tmp_path):
        writer = wal.WalWriter(tmp_path / "log", segment_bytes=200)
        write_tuples(writer, 20)
        writer.close()
        segments = sorted((tmp_path / "log").glob("seg-*.wal"))
        victim = segments[0]  # earlier segment: corruption, not a torn tail
        blob = bytearray(victim.read_bytes())
        blob[struct.calcsize("<II") + 2] ^= 0xFF  # flip a payload byte
        victim.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError, match="offset"):
            list(wal.read_wal(tmp_path / "log"))

    def test_crc_mismatch_with_records_after_it_is_corruption_even_in_the_last_segment(self, tmp_path):
        """A torn tail has nothing after it; a mid-segment flip is corruption."""
        writer = wal.WalWriter(tmp_path / "log")  # single segment
        write_tuples(writer, 5)
        writer.close()
        segment = next((tmp_path / "log").glob("seg-*.wal"))
        blob = bytearray(segment.read_bytes())
        blob[struct.calcsize("<II") + 2] ^= 0xFF  # flip a byte of record 1 of 5
        segment.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError, match="CRC mismatch"):
            list(wal.read_wal(tmp_path / "log"))

    def test_fsync_always_and_off_round_trip_too(self, tmp_path):
        for policy in ("always", "off"):
            writer = wal.WalWriter(tmp_path / policy, fsync=policy)
            write_tuples(writer, 3)
            writer.sync()
            writer.close()
            assert len(list(wal.read_wal(tmp_path / policy))) == 3
