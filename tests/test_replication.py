"""Hot-standby replication: codec, standby sessions, promotion, chaos.

The acceptance property of warm failover: kill a shard's primary TCP
worker at any point of the stream and the service *promotes* the shard's
hot standby — zero WAL records replayed, and a global result stream
bit-identical (order, content, deletions included) to an uninterrupted
run.  Every hostile condition along the way — torn or corrupt
``REPLICATE`` frames, LSN gaps, stale promotion LSNs, dead standbys,
double failures, promotion racing a migration — must surface as a clean,
typed error (:class:`ReplicationError` or :class:`WireProtocolError`),
never as a hang or a silently diverged replica.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamingRPQEngine, WindowSpec, WireProtocolError, WorkerUnavailableError, sgt
from repro.datasets.synthetic import UniformStreamGenerator
from repro.errors import ConfigError, ReplicationError
from repro.graph.stream import with_deletions
from repro.runtime import (
    ReplicationManager,
    RuntimeConfig,
    StreamingQueryService,
    TcpWorkerServer,
    create_worker,
)
from repro.runtime.durability import wal as wal_mod
from repro.runtime.replication import (
    PROMOTE,
    PROMOTE_FAILED,
    PROMOTED,
    REPLICATE_ACK,
    STANDBY_ROLE,
    decode_replicate,
    encode_replicate,
    validate_records,
)
from repro.runtime.transport_tcp import (
    WIRE_VERSION,
    _send_all,
    encode_frame,
    recv_frame,
)

WINDOW = WindowSpec(size=40, slide=4)

QUERIES = {"qa": "a+", "qb": "(a b)+", "qc": "c b*", "qd": "b c"}


def make_stream(count, seed=11, deletions=0.0):
    generator = UniformStreamGenerator(
        num_vertices=40, labels=("a", "b", "c", "noise"), edges_per_timestamp=4, seed=seed
    )
    stream = list(generator.generate(count))
    if deletions > 0:
        stream = with_deletions(stream, deletions, seed=seed)
    return stream


def engine_events(stream, queries=QUERIES):
    """The single-threaded oracle: per-query full event streams."""
    engine = StreamingRPQEngine(WINDOW)
    for name, expression in queries.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in engine.query(name).results.events]
        for name in queries
    }


def service_events(service, queries=QUERIES):
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in queries
    }


def start_servers(count):
    """``count`` loopback worker servers on ephemeral ports."""
    servers = [TcpWorkerServer("127.0.0.1", 0) for _ in range(count)]
    addresses = tuple(f"127.0.0.1:{server.start_in_background()}" for server in servers)
    return servers, addresses


def stop_servers(servers):
    for server in servers:
        server.stop()


@pytest.fixture
def server_farm():
    """Factory for loopback worker fleets, all stopped at teardown."""
    started = []

    def farm(count):
        servers, addresses = start_servers(count)
        started.extend(servers)
        return servers, addresses

    yield farm
    stop_servers(started)


def standby_service(farm, shards=2, queries=QUERIES, **kwargs):
    """A tcp service with a hot standby per shard; returns it + both fleets."""
    primaries, primary_addresses = farm(shards)
    standbys, standby_addresses = farm(shards)
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("tcp_read_timeout", 15.0)
    config = RuntimeConfig(
        shards=shards,
        backend="tcp",
        worker_addresses=primary_addresses,
        standby_addresses=standby_addresses,
        **kwargs,
    )
    service = StreamingQueryService(WINDOW, config)
    for name, expression in queries.items():
        service.register(name, expression)
    return service, primaries, standbys


def frame_pipe():
    """A connected non-blocking socket pair ready for the framing helpers."""
    left, right = socket.socketpair()
    left.setblocking(False)
    right.setblocking(False)
    return left, right


def tuple_record(lsn, idx=None):
    """A well-formed replicated tuple record at ``lsn``."""
    position = lsn if idx is None else idx
    return (lsn, wal_mod.TUPLE, position, 0, sgt(position, f"u{position}", f"v{position}", "a").to_wire())


# --------------------------------------------------------------------- #
# Record codec: strict validation on both sides of the wire
# --------------------------------------------------------------------- #


class TestRecordCodec:
    def test_round_trip_over_socket_exact(self):
        """A REPLICATE frame survives the real framing layer bit-exactly."""
        records = (
            tuple_record(1),
            (2, wal_mod.REGISTER, 5, 0, ("q", "a+", "arbitrary", 0, None)),
            (3, wal_mod.DEREGISTER, 6, 0, "q"),
        )
        left, right = frame_pipe()
        try:
            left.sendall(encode_replicate(records))
            got, _ = recv_frame(right, read_timeout=5.0)
            assert decode_replicate(got) == records
        finally:
            left.close()
            right.close()

    def test_validate_returns_tuples(self):
        out = validate_records([[1, wal_mod.TUPLE, 0, 0, ("w",)]])
        assert out == ((1, wal_mod.TUPLE, 0, 0, ("w",)),)
        assert isinstance(out[0], tuple)

    @pytest.mark.parametrize(
        "record",
        [
            (1, wal_mod.TUPLE, 0, 0),  # wrong arity
            (1, wal_mod.TUPLE, 0, 0, None, "extra"),
            "not a record",
            None,
        ],
    )
    def test_malformed_record_shape_raises(self, record):
        with pytest.raises(WireProtocolError, match="malformed replication record"):
            validate_records([record])

    @pytest.mark.parametrize("lsn", [0, -1, True, False, "7", 1.0, None])
    def test_bad_lsn_raises(self, lsn):
        with pytest.raises(WireProtocolError, match="LSN must be an int >= 1"):
            validate_records([(lsn, wal_mod.TUPLE, 0, 0, None)])

    def test_unknown_record_type_raises(self):
        with pytest.raises(WireProtocolError, match="unknown replication record type"):
            validate_records([(1, "X", 0, 0, None)])

    @pytest.mark.parametrize("field", ["idx", "op"])
    @pytest.mark.parametrize("value", [-1, True, "3", None])
    def test_bad_idx_or_op_raises(self, field, value):
        record = (1, wal_mod.TUPLE, 0 if field == "op" else value, value if field == "op" else 0, None)
        with pytest.raises(WireProtocolError, match="must be an int >= 0"):
            validate_records([record])

    def test_records_must_be_a_sequence(self):
        with pytest.raises(WireProtocolError, match="must be a sequence"):
            validate_records(7)

    @pytest.mark.parametrize(
        "frame",
        [
            ("NOPE", ()),
            ("REPLICATE",),
            "REPLICATE",
            None,
        ],
    )
    def test_decode_rejects_non_replicate_frames(self, frame):
        with pytest.raises(WireProtocolError, match="malformed REPLICATE frame"):
            decode_replicate(frame)

    def test_decode_tolerates_trailing_elements(self):
        # The trace-context slot rides as an optional trailing element, and
        # the codec stays forward-compatible: unknown extras are ignored.
        assert decode_replicate(("REPLICATE", (), "extra")) == ()

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=2**60),
                st.sampled_from(sorted(wal_mod.RECORD_TYPES)),
                st.integers(min_value=0, max_value=2**32),
                st.integers(min_value=0, max_value=8),
                st.recursive(
                    st.none() | st.booleans() | st.integers() | st.text() | st.binary(),
                    lambda leaf: st.lists(leaf, max_size=3).map(tuple),
                    max_leaves=8,
                ),
            ),
            max_size=8,
        )
    )
    def test_round_trip_property(self, records):
        """Random record batches survive encode -> frame -> decode exactly."""
        left, right = frame_pipe()
        try:
            left.sendall(encode_replicate(records))
            got, _ = recv_frame(right, read_timeout=5.0)
            assert decode_replicate(got) == tuple(tuple(record) for record in records)
        finally:
            left.close()
            right.close()

    def test_truncated_replicate_frame_raises_not_desyncs(self):
        """A peer dying mid-REPLICATE surfaces as a typed error, not a hang."""
        left, right = frame_pipe()
        try:
            wire = encode_replicate([tuple_record(1), tuple_record(2)])
            left.sendall(wire[: len(wire) // 2])
            left.close()
            with pytest.raises(WorkerUnavailableError, match="closed mid-frame|between header"):
                recv_frame(right, read_timeout=5.0)
        finally:
            right.close()

    def test_corrupted_replicate_frame_raises_not_desyncs(self):
        """One flipped payload bit is caught by the CRC before any decode."""
        left, right = frame_pipe()
        try:
            wire = bytearray(encode_replicate([tuple_record(1)]))
            wire[-3] ^= 0x10
            left.sendall(bytes(wire))
            with pytest.raises(WorkerUnavailableError, match="CRC mismatch"):
                recv_frame(right, read_timeout=5.0)
        finally:
            left.close()
            right.close()


# --------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------- #


class TestStandbyConfig:
    def test_requires_tcp_backend(self):
        with pytest.raises(ConfigError, match="only meaningful with backend 'tcp'"):
            RuntimeConfig(shards=1, backend="threading", standby_addresses=("127.0.0.1:7401",))

    def test_requires_one_entry_per_shard(self):
        with pytest.raises(ConfigError, match="exactly one entry per"):
            RuntimeConfig(
                shards=2,
                backend="tcp",
                worker_addresses=("127.0.0.1:7301", "127.0.0.1:7302"),
                standby_addresses=("127.0.0.1:7401",),
            )

    def test_standby_must_differ_from_its_primary(self):
        with pytest.raises(ConfigError, match="different worker process"):
            RuntimeConfig(
                shards=1,
                backend="tcp",
                worker_addresses=("127.0.0.1:7301",),
                standby_addresses=("127.0.0.1:7301",),
            )

    def test_placeholder_entries_mean_unprotected(self):
        """'', 'none' and '-' are CLI-friendly spellings of None."""
        config = RuntimeConfig(
            shards=4,
            backend="tcp",
            worker_addresses=tuple(f"127.0.0.1:{7301 + i}" for i in range(4)),
            standby_addresses=("", "none", "-", "127.0.0.1:7405"),
        )
        assert config.standby_addresses == (None, None, None, "127.0.0.1:7405")

    def test_with_backend_always_clears_standbys(self):
        """A checkpointed fleet's standbys never leak onto a restored run."""
        config = RuntimeConfig(
            shards=1,
            backend="tcp",
            worker_addresses=("127.0.0.1:7301",),
            standby_addresses=("127.0.0.1:7401",),
        )
        assert config.with_backend("threading").standby_addresses is None
        assert config.with_backend("tcp", worker_addresses=("127.0.0.1:7309",)).standby_addresses is None


# --------------------------------------------------------------------- #
# Standby sessions against a real worker server (worker side)
# --------------------------------------------------------------------- #


def standby_hello(shard=0, base_lsn=0, bootstrap=()):
    config = RuntimeConfig(
        shards=1, backend="tcp", batch_size=8, worker_addresses=("127.0.0.1:9",)
    )
    return (
        "HELLO",
        WIRE_VERSION,
        shard,
        WINDOW.size,
        WINDOW.slide,
        config.to_dict(),
        tuple(bootstrap),
        False,
        STANDBY_ROLE,
        base_lsn,
    )


def open_standby_session(port, base_lsn=0, deadline_seconds=10.0):
    """Dial a worker as a raw standby coordinator; returns the socket.

    Retries through BUSY replies so a test can re-arm immediately after
    aborting a previous session (the server reaps it asynchronously).
    """
    deadline = time.monotonic() + deadline_seconds
    while True:
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        sock.setblocking(False)
        _send_all(sock, encode_frame(standby_hello(base_lsn=base_lsn)), 5.0)
        got = recv_frame(sock, read_timeout=5.0, idle_ok=True)
        assert got is not None, "worker hung up during the standby handshake"
        if got[0][0] == "BUSY" and time.monotonic() < deadline:
            sock.close()
            time.sleep(0.05)
            continue
        assert got[0] == ("WELCOME", WIRE_VERSION), got[0]
        return sock


class TestStandbySession:
    def test_replicate_frames_are_acked_at_the_lsn_reached(self, server_farm):
        servers, _ = server_farm(1)
        sock = open_standby_session(servers[0].port)
        try:
            _send_all(sock, encode_replicate([tuple_record(1), tuple_record(2)]), 5.0)
            got, _ = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got == (REPLICATE_ACK, 2)
            _send_all(sock, encode_replicate([tuple_record(3)]), 5.0)
            got, _ = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got == (REPLICATE_ACK, 3)
        finally:
            sock.close()

    def test_stale_promote_lsn_is_refused_and_the_standby_survives(self, server_farm):
        """A wrong unmute LSN gets PROMOTE_FAILED; the right one still works."""
        servers, _ = server_farm(1)
        sock = open_standby_session(servers[0].port)
        try:
            _send_all(sock, encode_replicate([tuple_record(1), tuple_record(2), tuple_record(3)]), 5.0)
            assert recv_frame(sock, read_timeout=5.0, idle_ok=True)[0] == (REPLICATE_ACK, 3)
            _send_all(sock, encode_frame((PROMOTE, 2, False)), 5.0)
            got, _ = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got[0] == PROMOTE_FAILED
            assert got[1] == 3 and "stale promotion LSN 2" in got[2]
            # Still a standby: the correct LSN promotes it on the same socket.
            _send_all(sock, encode_frame((PROMOTE, 3, False)), 5.0)
            got, _ = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got == (PROMOTED, 3)
        finally:
            sock.close()

    def test_lsn_gap_aborts_the_session_not_the_server(self, server_farm):
        """Lost/reordered records end the session; the worker keeps listening."""
        servers, _ = server_farm(1)
        sock = open_standby_session(servers[0].port)
        try:
            _send_all(sock, encode_replicate([tuple_record(1)]), 5.0)
            assert recv_frame(sock, read_timeout=5.0, idle_ok=True)[0] == (REPLICATE_ACK, 1)
            _send_all(sock, encode_replicate([tuple_record(3)]), 5.0)  # gap: 2 missing
            assert recv_frame(sock, read_timeout=10.0, idle_ok=True) is None  # hung up, no ack
        finally:
            sock.close()
        replacement = open_standby_session(servers[0].port)  # server survived
        replacement.close()

    def test_stale_base_lsn_resumes_continuity_from_the_handshake(self, server_farm):
        """A base LSN in HELLO positions the continuity check, not at zero."""
        servers, _ = server_farm(1)
        sock = open_standby_session(servers[0].port, base_lsn=41)
        try:
            _send_all(sock, encode_replicate([tuple_record(1)]), 5.0)  # stale: expects 42
            assert recv_frame(sock, read_timeout=10.0, idle_ok=True) is None
        finally:
            sock.close()
        sock = open_standby_session(servers[0].port, base_lsn=41)
        try:
            _send_all(sock, encode_replicate([tuple_record(42)]), 5.0)
            assert recv_frame(sock, read_timeout=5.0, idle_ok=True)[0] == (REPLICATE_ACK, 42)
        finally:
            sock.close()

    def test_non_replication_frame_aborts_the_session(self, server_farm):
        """A standby session speaks REPLICATE/PROMOTE only — nothing else."""
        servers, _ = server_farm(1)
        sock = open_standby_session(servers[0].port)
        try:
            _send_all(sock, encode_frame(("CTRL", 1, "SUMMARY", None)), 5.0)
            assert recv_frame(sock, read_timeout=10.0, idle_ok=True) is None
        finally:
            sock.close()
        replacement = open_standby_session(servers[0].port)
        replacement.close()

    def test_released_standby_discards_state_and_server_keeps_listening(self, server_farm):
        """A coordinator hanging up cleanly frees the worker for a new role."""
        servers, addresses = server_farm(1)
        sock = open_standby_session(servers[0].port)
        _send_all(sock, encode_replicate([tuple_record(1)]), 5.0)
        assert recv_frame(sock, read_timeout=5.0, idle_ok=True)[0] == (REPLICATE_ACK, 1)
        sock.close()  # clean EOF at a frame boundary: the standby is released
        # The same worker process can now host a normal primary session.
        config = RuntimeConfig(shards=1, backend="tcp", batch_size=8, worker_addresses=addresses)
        worker = create_worker(0, WINDOW, config)
        worker.register_query("q", "a+")
        worker.start()
        worker.submit([sgt(1, "u", "v", "a")])
        assert worker.fetch_results("q").active_pairs == {("u", "v")}
        worker.stop()


# --------------------------------------------------------------------- #
# Single-session enforcement (the PR 8 latent assumption, now explicit)
# --------------------------------------------------------------------- #


class TestSingleSessionEnforcement:
    def test_dialing_a_worker_hosting_a_standby_fails_fast_not_hangs(self, server_farm):
        """A coordinator reaching a standby-hosting worker gets a typed error."""
        servers, addresses = server_farm(1)
        sock = open_standby_session(servers[0].port)
        try:
            config = RuntimeConfig(
                shards=1,
                backend="tcp",
                worker_addresses=addresses,
                tcp_connect_attempts=2,
                tcp_connect_backoff=0.01,
            )
            worker = create_worker(0, WINDOW, config)
            started = time.monotonic()
            with pytest.raises(WorkerUnavailableError, match="busy with another session"):
                worker.start()
            assert time.monotonic() - started < 10.0  # explicit error, not a hang
            assert servers[0].sessions_rejected >= 2
        finally:
            sock.close()

    def test_arming_a_standby_on_a_busy_worker_raises(self, server_farm):
        """The reverse collision: a primary session blocks a standby HELLO."""
        servers, addresses = server_farm(1)
        config = RuntimeConfig(shards=1, backend="tcp", batch_size=8, worker_addresses=addresses)
        worker = create_worker(0, WINDOW, config)
        worker.start()
        try:
            manager = ReplicationManager(
                WINDOW,
                RuntimeConfig(
                    shards=1,
                    backend="tcp",
                    worker_addresses=("127.0.0.1:9",),
                    standby_addresses=addresses,
                    tcp_connect_attempts=1,
                ),
            )
            with pytest.raises(ReplicationError, match="busy with another session"):
                manager.arm(0, addresses[0], ())
        finally:
            worker.stop()

    def test_rejected_dial_retries_until_the_worker_frees_up(self, server_farm):
        """BUSY is retried on the connect backoff: a released worker is reused."""
        servers, addresses = server_farm(1)
        sock = open_standby_session(servers[0].port)

        def release_soon():
            time.sleep(0.5)
            sock.close()

        thread = threading.Thread(target=release_soon)
        thread.start()
        config = RuntimeConfig(
            shards=1,
            backend="tcp",
            worker_addresses=addresses,
            tcp_connect_attempts=30,
            tcp_connect_backoff=0.05,
        )
        worker = create_worker(0, WINDOW, config)
        worker.register_query("q", "a+")
        try:
            worker.start()  # survives the BUSY window
            worker.submit([sgt(1, "u", "v", "a")])
            assert worker.fetch_results("q").active_pairs == {("u", "v")}
            worker.stop()
        finally:
            thread.join()


# --------------------------------------------------------------------- #
# Coordinator side vs hostile standbys
# --------------------------------------------------------------------- #


def make_manager(standby_address):
    return ReplicationManager(
        WINDOW,
        RuntimeConfig(
            shards=1,
            backend="tcp",
            batch_size=4,
            worker_addresses=("127.0.0.1:9",),
            standby_addresses=(standby_address,),
            tcp_connect_attempts=1,
            tcp_read_timeout=5.0,
        ),
    )


def fake_standby(behavior):
    """A raw listener that welcomes one standby session, then misbehaves."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def run():
        sock, _ = listener.accept()
        sock.setblocking(False)
        got = recv_frame(sock, read_timeout=5.0, idle_ok=True)
        assert got is not None and got[0][0] == "HELLO" and got[0][8] == STANDBY_ROLE
        _send_all(sock, encode_frame(("WELCOME", WIRE_VERSION)), 5.0)
        behavior(sock)
        time.sleep(0.2)  # let the peer read before the fd dies
        sock.close()

    thread = threading.Thread(target=run)
    thread.start()
    return listener, thread, f"127.0.0.1:{port}"


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(0.01)


class TestHostileStandbys:
    def test_garbage_ack_marks_the_replica_dead_not_the_service(self):
        def babble(sock):
            got = recv_frame(sock, read_timeout=5.0, idle_ok=True)
            assert got is not None
            _send_all(sock, encode_frame(("WAT", 1)), 5.0)

        listener, thread, address = fake_standby(babble)
        try:
            manager = make_manager(address)
            replica = manager.arm(0, address, ())
            manager.ship_tuple(0, sgt(1, "u", "v", "a").to_wire(), [0])
            manager.flush(0)
            wait_until(lambda: replica.dead)
            assert "unexpected replication frame" in replica.failure
            assert manager.stats(0)["armed"] is False
            manager.stop()
        finally:
            thread.join()
            listener.close()

    def test_standby_hangup_is_absorbed_by_the_shipper(self):
        """Shipping to a dead replica never raises — replication is best-effort."""

        def hang_up(sock):
            return None  # close immediately after WELCOME

        listener, thread, address = fake_standby(hang_up)
        try:
            manager = make_manager(address)
            replica = manager.arm(0, address, ())
            wait_until(lambda: replica.dead)
            for position in range(20):  # every ship after death is a no-op
                manager.ship_tuple(position, sgt(position + 1, "u", "v", "a").to_wire(), [0])
            manager.flush(0)
            manager.flush_all()
            assert manager.stats(0) == {
                "armed": False,
                "address": address,
                "acked_lsn": 0,
                "shipped_records": 0,
                "lag_records": 0,
                "pending_rearm": False,
            }
            manager.stop()
        finally:
            thread.join()
            listener.close()

    def test_promoting_a_dead_replica_raises_replication_error(self):
        def hang_up(sock):
            return None

        listener, thread, address = fake_standby(hang_up)
        try:
            manager = make_manager(address)
            replica = manager.arm(0, address, ())
            wait_until(lambda: replica.dead)
            with pytest.raises(ReplicationError, match="is dead"):
                manager.promote(0, emit_results=False)
            manager.stop()
        finally:
            thread.join()
            listener.close()

    def test_promoting_an_unarmed_shard_raises(self):
        manager = make_manager("127.0.0.1:7401")
        with pytest.raises(ReplicationError, match="no armed hot standby"):
            manager.promote(0, emit_results=False)

    def test_arming_twice_raises_while_the_first_is_alive(self, server_farm):
        servers, addresses = server_farm(2)
        manager = make_manager(addresses[0])
        try:
            manager.arm(0, addresses[0], ())
            with pytest.raises(ReplicationError, match="already has an armed standby"):
                manager.arm(0, addresses[1], ())
        finally:
            manager.stop()

    def test_arming_an_unreachable_address_raises(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        manager = make_manager(f"127.0.0.1:{port}")
        with pytest.raises(ReplicationError, match="cannot connect to standby"):
            manager.arm(0, f"127.0.0.1:{port}", ())


# --------------------------------------------------------------------- #
# Failover end to end: crash, promote, stay exact
# --------------------------------------------------------------------- #


class TestFailover:
    def test_crash_promotion_is_bit_identical_with_zero_replay(self, server_farm):
        """The headline acceptance: kill a primary mid-stream, results exact."""
        stream = make_stream(2_000)
        expected = engine_events(stream)
        service, primaries, _ = standby_service(server_farm)
        with service:
            shard = service.router.shard_of("qa")
            half = len(stream) // 2
            service.ingest(stream[:half])
            service.drain()
            primaries[shard].stop()  # the host vanishes, session and all
            service.ingest(stream[half:])
            service.drain()
            events = service_events(service)
        assert events == expected
        assert [promo["shard"] for promo in service.promotions] == [shard]
        facts = service.promotions[0]
        assert facts["replayed_records"] == 0
        assert facts["previous_address"] != facts["address"]
        assert facts["lsn"] >= facts["waited_records"] >= 0
        assert service.replication.promotions == 1

    def test_crash_mid_batch_promotes_without_losing_the_tail(self, server_farm):
        """Death with a partially-shipped batch in flight: nothing is lost."""
        stream = make_stream(1_200)
        expected = engine_events(stream)
        service, primaries, _ = standby_service(server_farm, batch_size=32)
        with service:
            shard = service.router.shard_of("qa")
            for position, tup in enumerate(stream):
                if position == 777:  # mid-stream, mid-batch: no drain first
                    primaries[shard].stop()
                service.ingest_one(tup)
            service.drain()
            events = service_events(service)
        assert events == expected
        assert service.promotions[0]["replayed_records"] == 0

    def test_crash_promotion_with_deletions_stays_exact(self, server_farm):
        stream = make_stream(1_500, deletions=0.15)
        expected = engine_events(stream)
        service, primaries, _ = standby_service(server_farm)
        with service:
            shard = service.router.shard_of("qb")
            service.ingest(stream[:600])
            service.drain()
            primaries[shard].stop()
            service.ingest(stream[600:])
            service.drain()
            events = service_events(service)
        assert events == expected
        assert len(service.promotions) == 1

    def test_standby_loss_leaves_the_service_running_on_the_primary(self, server_farm):
        """A dead standby degrades the shard to cold recovery — nothing more."""
        stream = make_stream(1_000)
        expected = engine_events(stream)
        service, _, standbys = standby_service(server_farm)
        with service:
            service.ingest(stream[:400])
            service.drain()
            for server in standbys:
                server.stop()  # the whole standby fleet vanishes
            service.ingest(stream[400:])
            service.drain()
            events = service_events(service)
            stats = [service.replication.stats(shard) for shard in range(2)]
        assert events == expected
        assert service.promotions == []
        assert all(entry["armed"] is False for entry in stats)

    def test_double_failure_surfaces_the_transport_error_with_the_cause(self, server_farm):
        """Primary and standby both dead: the original failure, chained."""
        stream = make_stream(600)
        service, primaries, standbys = standby_service(server_farm, tcp_read_timeout=5.0)
        with pytest.raises(WorkerUnavailableError) as excinfo:
            with service:
                shard = service.router.shard_of("qa")
                service.ingest(stream[:200])
                service.drain()
                standbys[shard].stop()
                primaries[shard].stop()
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    service.ingest(make_stream(50, seed=2))
                    service.drain()
        assert isinstance(excinfo.value.__cause__, ReplicationError)
        assert service.promotions == []

    def test_planned_promotion_is_a_failover_drill(self, server_farm):
        """promote() on a healthy shard: same takeover, same exactness."""
        stream = make_stream(1_200)
        expected = engine_events(stream)
        service, primaries, _ = standby_service(server_farm)
        with service:
            shard = service.router.shard_of("qc")
            old_address = service.config.worker_addresses[shard]
            service.ingest(stream[:500])
            service.drain()
            facts = service.promote(shard)
            assert facts["replayed_records"] == 0
            assert facts["previous_address"] == old_address
            assert service.config.worker_addresses[shard] == facts["address"]
            assert service.config.standby_addresses[shard] is None
            service.ingest(stream[500:])
            service.drain()
            events = service_events(service)
            health = service.health()
        assert events == expected
        assert health["healthy"] is True
        stop_servers(primaries)  # the abandoned primary was already out of the loop

    def test_rearm_then_second_promotion_still_exact(self, server_farm):
        """Promote, re-arm onto a fresh worker, promote again: still exact."""
        stream = make_stream(1_800)
        expected = engine_events(stream)
        service, primaries, _ = standby_service(server_farm)
        fresh, fresh_addresses = server_farm(1)
        with service:
            shard = service.router.shard_of("qa")
            service.ingest(stream[:600])
            service.drain()
            primaries[shard].stop()
            service.ingest(stream[600:1200])
            service.drain()
            assert len(service.promotions) == 1
            assert service.replication.pending_rearms() == {shard: service.promotions[0]["previous_address"]}
            service.rearm_standby(shard, fresh_addresses[0])
            assert service.config.standby_addresses[shard] == fresh_addresses[0]
            assert service.replication.stats(shard)["armed"] is True
            second = service.promote(shard)
            assert second["address"] == fresh_addresses[0]
            assert second["replayed_records"] == 0
            service.ingest(stream[1200:])
            service.drain()
            events = service_events(service)
        assert events == expected
        assert len(service.promotions) == 2

    def test_promotion_is_refused_while_a_migration_is_in_flight(self, server_farm):
        """Mid-migration shard state lives outside any worker: never promote."""
        stream = make_stream(600)
        service, primaries, _ = standby_service(server_farm, tcp_read_timeout=5.0)
        with pytest.raises(WorkerUnavailableError) as excinfo:
            with service:
                shard = service.router.shard_of("qa")
                service.ingest(stream[:200])
                service.drain()
                service._migrating = "qa"  # a migration holds the choreography lock
                try:
                    primaries[shard].stop()
                    deadline = time.monotonic() + 30.0
                    while time.monotonic() < deadline:
                        service.drain()  # drains reach the dead worker directly
                finally:
                    service._migrating = None
        # Refused before any promotion ran: no ReplicationError in the chain.
        assert not isinstance(excinfo.value.__cause__, ReplicationError)
        assert service.promotions == []

    def test_planned_promotion_refused_while_migrating(self, server_farm):
        service, _, _ = standby_service(server_farm)
        from repro.errors import RuntimeStateError

        with service:
            service._migrating = "qa"
            try:
                with pytest.raises(RuntimeStateError, match="while query 'qa' is migrating"):
                    service.promote(0)
            finally:
                service._migrating = None
        assert service.promotions == []

    def test_promote_without_standbys_configured_raises(self, server_farm):
        _, addresses = server_farm(1)
        config = RuntimeConfig(shards=1, backend="tcp", worker_addresses=addresses)
        service = StreamingQueryService(WINDOW, config)
        service.register("q", "a+")
        with service:
            assert service.replication is None
            with pytest.raises(ReplicationError, match="no replication manager"):
                service.promote(0)

    def test_replication_metrics_cover_shipping_and_promotion(self, server_farm):
        stream = make_stream(800)
        service, primaries, _ = standby_service(server_farm)
        with service:
            shard = service.router.shard_of("qa")
            service.ingest(stream[:300])
            service.drain()
            text = service.metrics_text(refresh=True)
            for series in (
                "repro_standby_connected",
                "repro_replication_lag_records",
                "repro_replication_shipped_records_total",
                "repro_replication_acked_lsn",
                "repro_promotions_total",
            ):
                assert series in text
            assert f'repro_standby_connected{{shard="{shard}"}} 1' in text
            primaries[shard].stop()
            service.ingest(stream[300:])
            service.drain()
            text = service.metrics_text(refresh=True)
        assert f'repro_promotions_total{{shard="{shard}"}} 1' in text
        assert f'repro_promotion_replayed_records_total{{shard="{shard}"}} 0' in text
        assert f'repro_standby_connected{{shard="{shard}"}} 0' in text  # consumed


# --------------------------------------------------------------------- #
# Differential chaos: random streams, random kill points
# --------------------------------------------------------------------- #


class TestDifferentialFailover:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        kill_fraction=st.floats(min_value=0.1, max_value=0.9),
        deletions=st.sampled_from([0.0, 0.1, 0.2]),
        victim_query=st.sampled_from(sorted(QUERIES)),
    )
    def test_promoted_run_matches_uninterrupted_engine(
        self, seed, kill_fraction, deletions, victim_query
    ):
        """Whatever dies, whenever: the promoted stream is bit-identical."""
        stream = make_stream(700, seed=seed, deletions=deletions)
        expected = engine_events(stream)
        primaries, primary_addresses = start_servers(2)
        standbys, standby_addresses = start_servers(2)
        try:
            config = RuntimeConfig(
                shards=2,
                backend="tcp",
                batch_size=8,
                worker_addresses=primary_addresses,
                standby_addresses=standby_addresses,
                tcp_read_timeout=15.0,
            )
            service = StreamingQueryService(WINDOW, config)
            for name, expression in QUERIES.items():
                service.register(name, expression)
            with service:
                shard = service.router.shard_of(victim_query)
                kill_at = max(1, int(len(stream) * kill_fraction))
                service.ingest(stream[:kill_at])
                primaries[shard].stop()
                service.ingest(stream[kill_at:])
                service.drain()
                events = service_events(service)
            assert events == expected
            assert len(service.promotions) == 1
            assert service.promotions[0]["shard"] == shard
            assert service.promotions[0]["replayed_records"] == 0
        finally:
            stop_servers(primaries)
            stop_servers(standbys)
