"""Tests for the real-world query workload (Tables 2 and 3)."""

from __future__ import annotations

import pytest

from repro.datasets.queries import (
    DATASET_LABELS,
    DATASET_QUERY_LABELS,
    QUERY_NAMES,
    applicable_queries,
    build_workload,
    instantiate,
)
from repro.regex.analysis import analyze
from repro.regex.ast import Plus, Star
from repro.regex.parser import parse


class TestTemplates:
    def test_eleven_queries(self):
        assert len(QUERY_NAMES) == 11
        assert QUERY_NAMES[0] == "Q1" and QUERY_NAMES[-1] == "Q11"

    def test_q1_shape(self):
        assert parse(instantiate("Q1", ["a"])) == Star(parse("a"))

    def test_q9_shape(self):
        node = parse(instantiate("Q9", ["a", "b", "c"]))
        assert isinstance(node, Plus)
        assert node.labels() == frozenset({"a", "b", "c"})

    def test_q11_is_non_recursive(self):
        node = parse(instantiate("Q11", ["a", "b", "c"]))
        assert not node.is_recursive()

    def test_all_other_templates_are_recursive(self):
        for name in QUERY_NAMES:
            if name == "Q11":
                continue
            node = parse(instantiate(name, ["a", "b", "c", "d"]))
            assert node.is_recursive(), f"{name} should contain a Kleene star/plus"

    def test_every_template_parses(self):
        for name in QUERY_NAMES:
            expression = instantiate(name, ["l1", "l2", "l3", "l4"])
            analyze(expression)  # must not raise

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            instantiate("Q99", ["a"])

    def test_too_few_labels_rejected(self):
        with pytest.raises(ValueError):
            instantiate("Q3", ["a"])


class TestDatasetBindings:
    def test_label_vocabularies(self):
        assert DATASET_LABELS["stackoverflow"] == ["a2q", "c2a", "c2q"]
        assert "knows" in DATASET_LABELS["ldbc"]

    @pytest.mark.parametrize("dataset", ["stackoverflow", "ldbc", "yago"])
    def test_workload_queries_parse_and_use_dataset_labels(self, dataset):
        workload = build_workload(dataset)
        vocabulary = set(DATASET_LABELS[dataset])
        for name, expression in workload.items():
            analysis = analyze(expression)
            assert analysis.alphabet <= vocabulary, f"{name} uses labels outside {dataset}"

    def test_stackoverflow_has_all_eleven(self):
        assert applicable_queries("stackoverflow") == QUERY_NAMES

    def test_yago_has_all_eleven(self):
        assert applicable_queries("yago") == QUERY_NAMES

    def test_ldbc_subset_matches_figure4b(self):
        assert applicable_queries("ldbc") == ["Q1", "Q2", "Q3", "Q5", "Q6", "Q7", "Q11"]

    def test_bindings_reference_known_queries(self):
        for dataset, bindings in DATASET_QUERY_LABELS.items():
            for name in bindings:
                assert name in QUERY_NAMES, f"{dataset} binds unknown query {name}"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            build_workload("imaginary")
        with pytest.raises(KeyError):
            applicable_queries("imaginary")

    def test_workload_examples(self):
        workload = build_workload("stackoverflow")
        assert workload["Q1"] == "a2q*"
        assert workload["Q11"] == "a2q c2a c2q"
        assert workload["Q9"] == "(a2q | c2a | c2q)+"
