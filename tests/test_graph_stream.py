"""Unit tests for streaming graph sources and stream transformations."""

from __future__ import annotations

import pytest

from repro.graph.stream import (
    GeneratorStream,
    ListStream,
    iter_csv,
    merge_by_timestamp,
    merge_streams,
    read_csv,
    with_deletions,
    write_csv,
)
from repro.graph.tuples import EdgeOp, sgt


def make_stream(n=10, label="x"):
    return [sgt(i + 1, f"v{i}", f"v{i+1}", label) for i in range(n)]


class TestListStream:
    def test_iterates_in_order(self):
        tuples = make_stream(5)
        stream = ListStream(tuples)
        assert list(stream) == tuples

    def test_len_and_getitem(self):
        stream = ListStream(make_stream(4))
        assert len(stream) == 4
        assert stream[0].timestamp == 1

    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError):
            ListStream([sgt(5, "a", "b", "x"), sgt(3, "c", "d", "x")])

    def test_allows_equal_timestamps(self):
        ListStream([sgt(3, "a", "b", "x"), sgt(3, "c", "d", "x")])

    def test_take(self):
        stream = ListStream(make_stream(10))
        assert len(stream.take(3)) == 3
        assert len(stream.take(100)) == 10

    def test_filter_labels(self):
        tuples = [sgt(1, "a", "b", "x"), sgt(2, "a", "b", "y"), sgt(3, "a", "b", "x")]
        filtered = list(ListStream(tuples).filter_labels({"x"}))
        assert len(filtered) == 2
        assert all(t.label == "x" for t in filtered)


class TestGeneratorStream:
    def test_wraps_iterable(self):
        tuples = make_stream(3)
        assert list(GeneratorStream(iter(tuples))) == tuples

    def test_factory_allows_multiple_iterations(self):
        tuples = make_stream(3)
        stream = GeneratorStream(lambda: iter(tuples))
        assert list(stream) == tuples
        assert list(stream) == tuples


class TestMergeStreams:
    def test_merges_by_timestamp(self):
        a = ListStream([sgt(1, "a", "b", "x"), sgt(5, "a", "b", "x")])
        b = ListStream([sgt(2, "c", "d", "y"), sgt(4, "c", "d", "y")])
        merged = merge_streams(a, b)
        assert [t.timestamp for t in merged] == [1, 2, 4, 5]

    def test_merge_is_lazy(self):
        def exploding():
            yield sgt(1, "a", "b", "x")
            raise AssertionError("consumed past the first tuple")

        merged = merge_streams(GeneratorStream(exploding()))
        assert isinstance(merged, GeneratorStream)
        assert next(iter(merged)).timestamp == 1  # no eager materialization

    def test_merged_stream_is_reiterable(self):
        a = ListStream([sgt(1, "a", "b", "x")])
        b = ListStream([sgt(2, "c", "d", "y")])
        merged = merge_streams(a, b)
        assert [t.timestamp for t in merged] == [1, 2]
        assert [t.timestamp for t in merged] == [1, 2]

    def test_merge_by_timestamp_stable_on_ties(self):
        first = [sgt(3, "a", "b", "x")]
        second = [sgt(3, "c", "d", "y")]
        merged = list(merge_by_timestamp(first, second))
        assert [t.source for t in merged] == ["a", "c"]


class TestWithDeletions:
    def test_zero_ratio_is_identity(self):
        tuples = make_stream(10)
        assert with_deletions(tuples, 0.0) == tuples

    def test_ratio_one_deletes_everything(self):
        tuples = make_stream(10)
        output = with_deletions(tuples, 1.0)
        deletes = [t for t in output if t.is_delete]
        inserts = [t for t in output if t.is_insert]
        assert len(inserts) == 10
        assert len(deletes) == 10

    def test_deletions_follow_their_insertions(self):
        tuples = make_stream(20)
        output = with_deletions(tuples, 0.5, seed=3)
        seen = set()
        for tup in output:
            key = (tup.source, tup.target, tup.label)
            if tup.is_delete:
                assert key in seen, "deletion emitted before its insertion"
            else:
                seen.add(key)

    def test_timestamps_non_decreasing(self):
        output = with_deletions(make_stream(30), 0.3, seed=5)
        stamps = [t.timestamp for t in output]
        assert stamps == sorted(stamps)

    def test_deterministic_given_seed(self):
        tuples = make_stream(30)
        assert with_deletions(tuples, 0.3, seed=9) == with_deletions(tuples, 0.3, seed=9)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            with_deletions(make_stream(3), 1.5)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        tuples = make_stream(7) + [sgt(8, "v0", "v1", "x", EdgeOp.DELETE)]
        path = tmp_path / "stream.csv"
        written = write_csv(path, tuples)
        assert written == 8
        replayed = read_csv(path)
        assert list(replayed) == tuples

    def test_vertex_type_conversion(self, tmp_path):
        tuples = [sgt(1, 10, 20, "x"), sgt(2, 20, 30, "x")]
        path = tmp_path / "ints.csv"
        write_csv(path, tuples)
        replayed = read_csv(path, vertex_type=int)
        assert list(replayed) == tuples

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,stream,file,at-all\n1,2,3,4,5\n")
        with pytest.raises(ValueError):
            read_csv(path)


class TestIterCsv:
    def test_yields_same_tuples_as_read_csv(self, tmp_path):
        tuples = make_stream(9) + [sgt(10, "v0", "v1", "x", EdgeOp.DELETE)]
        path = tmp_path / "stream.csv"
        write_csv(path, tuples)
        assert list(iter_csv(path)) == list(read_csv(path)) == tuples

    def test_is_lazy(self, tmp_path):
        path = tmp_path / "stream.csv"
        write_csv(path, make_stream(5))
        stream = iter_csv(path)
        path.unlink()  # nothing was read at construction time
        with pytest.raises(OSError):
            list(stream)

    def test_reiterable(self, tmp_path):
        path = tmp_path / "stream.csv"
        write_csv(path, make_stream(4))
        stream = iter_csv(path)
        assert len(list(stream)) == 4
        assert len(list(stream)) == 4

    def test_vertex_type_conversion(self, tmp_path):
        tuples = [sgt(1, 10, 20, "x")]
        path = tmp_path / "ints.csv"
        write_csv(path, tuples)
        assert list(iter_csv(path, vertex_type=int)) == tuples

    def test_bad_header_rejected_on_iteration(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,stream,file,at-all\n")
        stream = iter_csv(path)  # construction is fine: the file is untouched
        with pytest.raises(ValueError):
            list(stream)
