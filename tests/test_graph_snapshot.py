"""Unit tests for the window snapshot graph."""

from __future__ import annotations

import pytest

from repro.graph.snapshot import LabeledEdge, SnapshotGraph
from repro.graph.tuples import sgt


@pytest.fixture
def graph():
    g = SnapshotGraph()
    g.insert("a", "b", "knows", 1)
    g.insert("b", "c", "knows", 2)
    g.insert("a", "c", "likes", 3)
    return g


class TestInsert:
    def test_new_edge_returns_true(self):
        g = SnapshotGraph()
        assert g.insert("a", "b", "x", 1) is True

    def test_duplicate_edge_returns_false_and_refreshes_timestamp(self):
        g = SnapshotGraph()
        g.insert("a", "b", "x", 1)
        assert g.insert("a", "b", "x", 5) is False
        assert g.edge_timestamp("a", "b", "x") == 5

    def test_duplicate_with_older_timestamp_keeps_newer(self):
        g = SnapshotGraph()
        g.insert("a", "b", "x", 5)
        g.insert("a", "b", "x", 1)
        assert g.edge_timestamp("a", "b", "x") == 5

    def test_parallel_edges_with_different_labels(self, graph):
        graph.insert("a", "b", "likes", 4)
        assert graph.has_edge("a", "b", "knows")
        assert graph.has_edge("a", "b", "likes")
        assert graph.num_edges == 4

    def test_insert_tuple(self):
        g = SnapshotGraph()
        assert g.insert_tuple(sgt(7, "x", "y", "follows")) is True
        assert g.edge_timestamp("x", "y", "follows") == 7


class TestDelete:
    def test_delete_existing(self, graph):
        assert graph.delete("a", "b", "knows") is True
        assert not graph.has_edge("a", "b", "knows")
        assert graph.num_edges == 2

    def test_delete_missing_returns_false(self, graph):
        assert graph.delete("a", "b", "likes") is False
        assert graph.num_edges == 3

    def test_delete_cleans_up_vertices(self):
        g = SnapshotGraph()
        g.insert("a", "b", "x", 1)
        g.delete("a", "b", "x")
        assert g.num_vertices == 0
        assert list(g.out_edges("a")) == []
        assert list(g.in_edges("b")) == []


class TestExpire:
    def test_expire_removes_old_edges(self, graph):
        expired = graph.expire(2)
        assert {(e.source, e.target) for e in expired} == {("a", "b"), ("b", "c")}
        assert graph.num_edges == 1
        assert graph.has_edge("a", "c", "likes")

    def test_expire_boundary_is_inclusive(self):
        g = SnapshotGraph()
        g.insert("a", "b", "x", 5)
        assert len(g.expire(5)) == 1

    def test_expire_nothing(self, graph):
        assert graph.expire(0) == []
        assert graph.num_edges == 3

    def test_refreshed_edge_survives_expiry(self):
        g = SnapshotGraph()
        g.insert("a", "b", "x", 1)
        g.insert("a", "b", "x", 10)
        g.expire(5)
        assert g.has_edge("a", "b", "x")


class TestQueries:
    def test_out_edges(self, graph):
        edges = list(graph.out_edges("a"))
        assert {(e.target, e.label) for e in edges} == {("b", "knows"), ("c", "likes")}
        assert all(isinstance(e, LabeledEdge) for e in edges)

    def test_in_edges(self, graph):
        edges = list(graph.in_edges("c"))
        assert {(e.source, e.label) for e in edges} == {("b", "knows"), ("a", "likes")}

    def test_edges_iterates_all(self, graph):
        assert len(list(graph.edges())) == 3

    def test_vertices(self, graph):
        assert graph.vertices() == {"a", "b", "c"}
        assert graph.num_vertices == 3

    def test_labels(self, graph):
        assert graph.labels() == {"knows", "likes"}

    def test_contains_and_len(self, graph):
        assert ("a", "b", "knows") in graph
        assert ("a", "b", "likes") not in graph
        assert len(graph) == 3

    def test_out_edges_of_unknown_vertex(self, graph):
        assert list(graph.out_edges("zzz")) == []

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert graph.num_vertices == 0

    def test_str(self, graph):
        assert "|E|=3" in str(graph)
