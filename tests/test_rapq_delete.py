"""Tests for explicit deletions (Algorithm Delete, §3.2)."""

from __future__ import annotations

from repro import EdgeOp, RAPQEvaluator, WindowSpec, sgt
from repro.graph.tuples import StreamingGraphTuple

from helpers import insert_stream


def delete(ts, u, v, label):
    return StreamingGraphTuple(ts, u, v, label, EdgeOp.DELETE)


class TestSnapshotMaintenance:
    def test_delete_removes_edge_from_window(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(delete(2, "u", "v", "a"))
        assert not evaluator.snapshot.has_edge("u", "v", "a")
        assert evaluator.stats["deletions_processed"] == 1

    def test_delete_of_absent_edge_is_harmless(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(delete(1, "u", "v", "a"))
        assert evaluator.answer_pairs() == set()

    def test_delete_with_irrelevant_label_is_discarded(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(delete(1, "u", "v", "zzz"))
        assert evaluator.stats["tuples_discarded"] == 1
        assert evaluator.stats["deletions_processed"] == 0


class TestResultInvalidation:
    def test_deleting_the_only_support_invalidates_the_pair(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        assert evaluator.active_pairs() == {("u", "v")}
        evaluator.process(delete(2, "u", "v", "a"))
        assert evaluator.active_pairs() == set()
        # implicit-window history is preserved
        assert evaluator.answer_pairs() == {("u", "v")}

    def test_deleting_one_hop_of_a_chain_invalidates_downstream(self):
        evaluator = RAPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [(1, "p1", "p2", "a"), (2, "p2", "p3", "a"), (3, "p3", "p4", "a")]
        ))
        assert ("p1", "p4") in evaluator.active_pairs()
        evaluator.process(delete(4, "p2", "p3", "a"))
        active = evaluator.active_pairs()
        assert ("p1", "p4") not in active
        assert ("p1", "p3") not in active
        assert ("p1", "p2") in active
        assert ("p3", "p4") in active

    def test_alternative_path_keeps_result_alive(self):
        """Deleting a tree edge must reconnect through a parallel support."""
        evaluator = RAPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [
                (1, "s", "m1", "a"),
                (2, "m1", "t", "a"),
                (3, "s", "m2", "a"),
                (4, "m2", "t", "a"),
            ]
        ))
        assert ("s", "t") in evaluator.active_pairs()
        evaluator.process(delete(5, "m1", "t", "a"))
        # the path s -> m2 -> t still supports the pair
        assert ("s", "t") in evaluator.active_pairs()

    def test_non_tree_edge_deletion_changes_nothing(self):
        """Deleting an edge that is not a tree edge leaves the index untouched."""
        evaluator = RAPQEvaluator("a+", WindowSpec(size=100))
        evaluator.process_stream(insert_stream(
            [
                (1, "s", "m1", "a"),
                (2, "m1", "t", "a"),
                (3, "s", "m2", "a"),
                (4, "m2", "t", "a"),   # (t, accepting) already in T_s: non-tree edge there
            ]
        ))
        nodes_before = evaluator.index.num_nodes
        evaluator.process(delete(5, "m2", "t", "a"))
        assert ("s", "t") in evaluator.active_pairs()
        assert evaluator.index.num_nodes <= nodes_before

    def test_reinsert_after_delete_reports_again(self):
        evaluator = RAPQEvaluator("a", WindowSpec(size=100))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(delete(2, "u", "v", "a"))
        evaluator.process(sgt(3, "u", "v", "a"))
        assert evaluator.active_pairs() == {("u", "v")}
        assert len(evaluator.results.positives()) == 2

    def test_delete_then_window_behaviour_stays_correct(self):
        """Mixing deletions with expiry keeps the index consistent."""
        evaluator = RAPQEvaluator("a b", WindowSpec(size=6, slide=2))
        evaluator.process(sgt(1, "u", "v", "a"))
        evaluator.process(sgt(2, "v", "w", "b"))
        assert ("u", "w") in evaluator.active_pairs()
        evaluator.process(delete(3, "u", "v", "a"))
        assert ("u", "w") not in evaluator.active_pairs()
        evaluator.process(sgt(9, "u", "v", "a"))
        evaluator.process(sgt(10, "v", "w", "b"))
        assert ("u", "w") in evaluator.active_pairs()


class TestDeletionHeavyWorkload:
    def test_insert_delete_churn_matches_final_window_recomputation(self):
        """After heavy churn, pairs supported by the final window content must be active."""
        from repro.core.batch import batch_rapq

        window = WindowSpec(size=1000)
        evaluator = RAPQEvaluator("a+", window)
        edges = [(1, "a", "b"), (2, "b", "c"), (3, "c", "d"), (4, "d", "a"), (5, "b", "d"), (6, "a", "c")]
        for ts, u, v in edges:
            evaluator.process(sgt(ts, u, v, "a"))
        evaluator.process(delete(7, "b", "c", "a"))
        evaluator.process(delete(8, "d", "a", "a"))
        evaluator.process(sgt(9, "c", "a", "a"))
        expected = batch_rapq(evaluator.snapshot, evaluator.dfa)
        # everything supported by the final window content was reported ...
        assert expected <= evaluator.answer_pairs()
        # ... and the active view reflects exactly the surviving support.
        assert evaluator.active_pairs() == expected
