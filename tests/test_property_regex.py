"""Property-based tests for the regex/automaton substrate (hypothesis)."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.regex.analysis import suffix_containment_matrix
from repro.regex.ast import Alternation, Concat, Label, Optional, Plus, RegexNode, Star
from repro.regex.dfa import compile_query, determinize
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse

ALPHABET = ["a", "b", "c"]


def regex_nodes(max_depth: int = 3) -> st.SearchStrategy[RegexNode]:
    """Random regular expressions over a three-letter alphabet."""
    labels = st.sampled_from(ALPHABET).map(Label)

    def extend(children: st.SearchStrategy[RegexNode]) -> st.SearchStrategy[RegexNode]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: Concat(*pair)),
            st.tuples(children, children).map(lambda pair: Alternation(*pair)),
            children.map(Star),
            children.map(Plus),
            children.map(Optional),
        )

    return st.recursive(labels, extend, max_leaves=6)


def short_words(max_length: int = 4):
    for length in range(max_length + 1):
        yield from itertools.product(ALPHABET, repeat=length)


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_nfa_and_minimal_dfa_accept_the_same_language(node):
    nfa = build_nfa(node)
    dfa = compile_query(node)
    for word in short_words(4):
        assert dfa.accepts(word) == nfa.accepts(word), (node, word)


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_minimization_never_grows_the_automaton(node):
    raw = determinize(build_nfa(node))
    minimal = raw.minimize()
    assert minimal.num_states <= raw.num_states


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_minimization_is_idempotent(node):
    minimal = compile_query(node)
    assert minimal.minimize().num_states == minimal.num_states


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_rendered_expression_reparses_to_same_language(node):
    """str(ast) must parse back to an expression with the same language."""
    reparsed = parse(str(node))
    original_dfa = compile_query(node)
    reparsed_dfa = compile_query(reparsed)
    for word in short_words(4):
        assert original_dfa.accepts(word) == reparsed_dfa.accepts(word), (node, word)


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_nullable_agrees_with_automaton_empty_word(node):
    dfa = compile_query(node)
    assert node.nullable() == dfa.accepts([])


@settings(max_examples=40, deadline=None)
@given(regex_nodes())
def test_suffix_containment_is_sound(node):
    """If [s] contains [t], every short word accepted from t is accepted from s."""
    dfa = compile_query(node)
    if dfa.num_states > 6:
        return  # keep the brute-force verification cheap
    matrix = suffix_containment_matrix(dfa)
    for s in dfa.states:
        for t in dfa.states:
            if not matrix[(s, t)]:
                continue
            for word in short_words(4):
                accepted_from_t = dfa.extended_delta(t, word) in dfa.finals \
                    if dfa.extended_delta(t, word) is not None else False
                accepted_from_s = dfa.extended_delta(s, word) in dfa.finals \
                    if dfa.extended_delta(s, word) is not None else False
                if accepted_from_t:
                    assert accepted_from_s, (node, s, t, word)


@settings(max_examples=60, deadline=None)
@given(regex_nodes())
def test_query_size_counts_labels_and_recursion(node):
    """size() equals #labels plus #stars/pluses (the paper's |Q_R|)."""
    labels = sum(1 for n in node.walk() if isinstance(n, Label))
    stars = sum(1 for n in node.walk() if isinstance(n, (Star, Plus)))
    assert node.size() == labels + stars
