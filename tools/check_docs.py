"""Executable documentation checks: markdown links resolve, examples run.

Two checks over ``README.md`` and every ``docs/*.md`` file:

1. **links** — every intra-repo markdown link ``[text](path)`` must point
   at an existing file or directory (resolved relative to the file the
   link appears in; ``#fragment`` suffixes are stripped, absolute URLs
   and ``mailto:`` are skipped);
2. **doctests** — every fenced code block tagged ``python`` that contains
   ``>>>`` prompts is run through :mod:`doctest`; the blocks of one file
   share a globals dict in order (like one interpreter session per
   document), so later examples may build on earlier imports.  Fenced
   blocks without prompts (illustrative snippets, shell examples) are not
   executed.

Run locally (CI's docs job runs exactly this)::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 when everything passes; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose links and examples are checked.
DOC_FILES = ["README.md", "docs"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def doc_paths() -> List[Path]:
    """The markdown files under check, in deterministic order."""
    paths: List[Path] = []
    for entry in DOC_FILES:
        target = REPO_ROOT / entry
        if target.is_dir():
            paths.extend(sorted(target.glob("**/*.md")))
        elif target.exists():
            paths.append(target)
    return paths


def check_links(path: Path) -> List[str]:
    """Return one message per unresolvable intra-repo link in ``path``."""
    problems = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}:{number}: broken link -> {target}")
    return problems


def python_fences(path: Path) -> List[Tuple[int, str]]:
    """``(starting line, body)`` of every fenced ``python`` block in ``path``."""
    fences = []
    language = None
    body: List[str] = []
    started = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line)
        if match is None:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language = match.group(1).lower()
            body = []
            started = number
        else:
            if language == "python":
                fences.append((started, "\n".join(body)))
            language = None
    return fences


def check_doctests(path: Path) -> List[str]:
    """Run every ``>>>``-bearing python fence of ``path`` through doctest."""
    problems = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS, verbose=False)
    session_globals: dict = {}
    failures: List[str] = []
    for started, body in python_fences(path):
        if ">>>" not in body:
            continue
        name = f"{path.relative_to(REPO_ROOT)}:{started}"
        test = parser.get_doctest(body, session_globals, name, str(path), started)
        result = runner.run(test, out=failures.append, clear_globs=False)
        # keep names defined by this block visible to the next one
        session_globals.update(test.globs)
        if result.failed:
            detail = "".join(failures).strip()
            failures.clear()
            problems.append(
                f"{name}: {result.failed} of {result.attempted} doctest example(s) failed\n"
                + "\n".join(f"    {line}" for line in detail.splitlines())
            )
    return problems


def main() -> int:
    paths = doc_paths()
    if not paths:
        print("no documentation files found — nothing to check")
        return 1
    problems: List[str] = []
    examples = 0
    for path in paths:
        problems.extend(check_links(path))
        fences = [body for _, body in python_fences(path) if ">>>" in body]
        examples += len(fences)
        problems.extend(check_doctests(path))
    if problems:
        print(f"documentation check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"documentation check passed: {len(paths)} file(s), "
        f"{examples} runnable example block(s), all links resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
