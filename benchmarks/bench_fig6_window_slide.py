"""Figure 6 — sensitivity to the window size |W| and the slide interval beta.

The paper's findings, reproduced here on the Yago-like stream:

* tail latency grows roughly linearly with the window size (Fig. 6(a) left);
* the time spent in window maintenance (expiry) also grows with |W|
  (Fig. 6(b) left);
* tail latency is essentially flat in the slide interval (Fig. 6(a) right),
  because the per-slide expiry cost grows with beta (Fig. 6(b) right) and
  therefore amortizes to a constant overhead per tuple.
"""

from __future__ import annotations

from repro.experiments.figures import SWEEP_QUERIES, figure6


def test_figure6_window_and_slide_sweep(benchmark, save_result, bench_scale):
    figures = benchmark.pedantic(
        figure6, kwargs={"scale": bench_scale, "queries": SWEEP_QUERIES}, rounds=1, iterations=1
    )
    for name, figure in figures.items():
        save_result(f"figure6_{name}", figure.render())

    latency_by_window = figures["latency_vs_window"]
    expiry_by_slide = figures["expiry_vs_slide"]

    # Latency shape: for most queries the largest window should not be faster
    # than the smallest one.
    grows = 0
    total = 0
    for query, points in latency_by_window.series.items():
        sizes = sorted(points)
        if len(sizes) >= 2 and points[sizes[0]] > 0:
            total += 1
            if points[sizes[-1]] >= points[sizes[0]] * 0.8:
                grows += 1
    assert total > 0 and grows >= total / 2

    # Expiry cost per run grows with the slide interval for at least one query.
    grows_with_slide = False
    for query, points in expiry_by_slide.series.items():
        slides = sorted(points)
        if len(slides) >= 2 and points[slides[-1]] > points[slides[0]]:
            grows_with_slide = True
            break
    assert grows_with_slide
