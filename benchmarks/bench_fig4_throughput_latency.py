"""Figure 4 — throughput and tail latency of Algorithm RAPQ per query.

The paper reports, for each of the eleven real-world queries (Table 2), the
sustained throughput (edges/s) and the 99th-percentile per-tuple latency on
Yago2s, LDBC SNB and StackOverflow.  Expected shape: the non-recursive Q11
is the cheapest; queries with several Kleene stars (Q3, Q6) and the
alternation-under-star queries (Q4, Q9) are the most expensive on the dense
StackOverflow-like graph; the sparse Yago-like graph sustains the highest
rates.
"""

from __future__ import annotations

from repro.experiments.figures import figure4


def _run(dataset: str, scale: str):
    return figure4(scale=scale, datasets=[dataset])[dataset]


def bench_dataset(benchmark, save_result, bench_scale, dataset):
    figure = benchmark.pedantic(_run, args=(dataset, bench_scale), rounds=1, iterations=1)
    save_result(f"figure4_{dataset}", figure.render())
    throughput = figure.get("throughput_eps")
    assert throughput, "figure 4 must produce a throughput series"
    assert all(value > 0 for value in throughput.values())


def test_figure4_yago(benchmark, save_result, bench_scale):
    bench_dataset(benchmark, save_result, bench_scale, "yago")


def test_figure4_ldbc(benchmark, save_result, bench_scale):
    bench_dataset(benchmark, save_result, bench_scale, "ldbc")


def test_figure4_stackoverflow(benchmark, save_result, bench_scale):
    figure = benchmark.pedantic(_run, args=("stackoverflow", bench_scale), rounds=1, iterations=1)
    save_result("figure4_stackoverflow", figure.render())
    throughput = figure.get("throughput_eps")
    # Shape check from the paper: the non-recursive query is among the fastest
    # and the multi-star queries are among the slowest on the SO graph.
    assert throughput["Q11"] > throughput["Q6"]
    assert throughput["Q11"] > throughput["Q4"]
