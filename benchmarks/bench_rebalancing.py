"""Load-aware rebalancing — skewed placement vs live migration.

Not a figure of the paper: this benchmark measures the rebalancing layer
of the runtime.  A label-skewed workload (two hot labels carry ~85% of the
tuples) is served by two shards whose initial `label_affinity` placement
co-locates both hot queries, so one shard does almost all the work:

* **skewed baseline** — `manual` rebalancing: the placement never changes;
* **rebalanced** — `load_aware` rebalancing at interval boundaries: the
  coordinator live-migrates a hot query to the idle shard mid-stream.

Both runs must produce exactly the single-threaded engine's results
(migration is transparent), so the benchmark doubles as a correctness
check on a workload sized beyond the unit tests.

Reported per run: wall-clock throughput, per-shard busy seconds, and the
*critical path* (the busiest shard's processing seconds).  The critical
path is what a parallel deployment's makespan tracks — on CI boxes with a
single quiet core the wall clock of the two runs is identical by
construction (same total work through one core), so the headline
"rebalancing beats the skew" number is the modeled parallel throughput
``tuples / critical_path``, which is hardware-independent.  The JSON
record lands in ``results/BENCH_rebalancing.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.core.engine import StreamingRPQEngine
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

#: Two hot-label queries (co-located by label_affinity) and two cold ones.
QUERIES = {
    "hot-1": "h1+",
    "hot-2": "h2 h1*",
    "cold-1": "c1+",
    "cold-2": "c2 c1*",
}

#: ~85% of routed tuples land on the hot queries' shard before rebalancing.
LABELS = ("h1", "h2", "c1", "c2")
LABEL_WEIGHTS = (0.45, 0.40, 0.10, 0.05)

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}

#: The modeled-parallel speedup the skew guarantees; asserted with margin.
_EXPECTED_MIN_SPEEDUP = 1.1


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    generator = UniformStreamGenerator(
        num_vertices=150,
        labels=LABELS,
        label_weights=LABEL_WEIGHTS,
        edges_per_timestamp=8,
        seed=29,
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=29)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def run_engine_baseline(stream, window):
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: {(e.source, e.target, e.timestamp) for e in engine.query(name).results.positives()}
        for name in QUERIES
    }


def run_service(stream, window, rebalance_policy, rebalance_interval):
    config = RuntimeConfig(
        shards=2,
        batch_size=256,
        sharding="label_affinity",
        rebalance_policy=rebalance_policy,
        rebalance_interval=rebalance_interval,
    )
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    started = time.perf_counter()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
        summary = service.summary()
        triples = {name: service.result_triples(name) for name in QUERIES}
    busy = [stats["busy_seconds"] for stats in summary["shards"]]
    critical_path = max(busy)
    return {
        "wall_seconds": elapsed,
        "throughput_eps": len(stream) / elapsed,
        "busy_seconds_per_shard": busy,
        "critical_path_seconds": critical_path,
        "modeled_parallel_throughput_eps": len(stream) / critical_path,
        "busy_imbalance": critical_path / max(sum(busy), 1e-9),
        "migrations": summary["migrations"],
    }, triples


def rebalancing(scale: str):
    stream, window = build_workload(scale)
    expected = run_engine_baseline(stream, window)
    skewed, skewed_triples = run_service(stream, window, "manual", 0)
    rebalanced, rebalanced_triples = run_service(stream, window, "load_aware", max(1, len(stream) // 10))
    assert skewed_triples == expected, "skewed baseline diverged from the engine"
    assert rebalanced_triples == expected, "rebalanced run diverged from the engine"
    assert rebalanced["migrations"], "load_aware applied no migration on a skewed workload"
    return len(stream), skewed, rebalanced


def render_rebalancing(num_tuples, skewed, rebalanced) -> str:
    speedup = (rebalanced["modeled_parallel_throughput_eps"] / skewed["modeled_parallel_throughput_eps"])
    lines = [
        f"Rebalancing — {num_tuples} tuples, {len(QUERIES)} queries, 2 shards",
        f"{'configuration':<22} {'wall s':>8} {'critical s':>11} {'modeled eps':>12} {'imbalance':>10}",
    ]
    for name, row in (("skewed (manual)", skewed), ("load_aware", rebalanced)):
        lines.append(
            f"{name:<22} {row['wall_seconds']:>8.2f} {row['critical_path_seconds']:>11.2f} "
            f"{row['modeled_parallel_throughput_eps']:>12,.0f} {row['busy_imbalance']:>9.0%}"
        )
    lines.append(f"modeled parallel speedup from rebalancing: {speedup:.2f}x")
    for move in rebalanced["migrations"]:
        lines.append(
            f"  migrated {move['query']!r}: shard {move['source']} -> {move['target']} "
            f"after {move['at_tuples']} tuples"
        )
    return "\n".join(lines)


def write_json(path, scale, num_tuples, skewed, rebalanced) -> None:
    """Emit the machine-readable trajectory record (BENCH_rebalancing.json)."""
    record = {
        "benchmark": "rebalancing",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": list(QUERIES),
        "label_weights": dict(zip(LABELS, LABEL_WEIGHTS)),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "skewed": skewed,
        "rebalanced": rebalanced,
        "modeled_parallel_speedup": (
            rebalanced["modeled_parallel_throughput_eps"]
            / skewed["modeled_parallel_throughput_eps"]
        ),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_rebalancing(benchmark, save_result, results_dir, bench_scale):
    num_tuples, skewed, rebalanced = benchmark.pedantic(
        rebalancing, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("rebalancing", render_rebalancing(num_tuples, skewed, rebalanced))
    json_path = results_dir / "BENCH_rebalancing.json"
    write_json(json_path, bench_scale, num_tuples, skewed, rebalanced)
    print(f"[saved to {json_path}]")

    # The headline claim: on a skewed workload, load-aware rebalancing
    # shortens the critical path (the busiest shard's processing time), so
    # the modeled parallel throughput beats the skewed baseline.
    speedup = (rebalanced["modeled_parallel_throughput_eps"] / skewed["modeled_parallel_throughput_eps"])
    assert speedup > _EXPECTED_MIN_SPEEDUP, (
        f"load_aware rebalancing only reached {speedup:.2f}x the skewed baseline's "
        f"modeled parallel throughput; expected > {_EXPECTED_MIN_SPEEDUP}x"
    )
    # and the busiest shard no longer carries (almost) everything
    assert rebalanced["busy_imbalance"] < skewed["busy_imbalance"]
