"""Columnar fast path — batched vectorized evaluation vs the scalar engine.

Not a figure of the paper: this benchmark measures the columnar hot path
(:mod:`repro.core.columnar`) added on top of it.  The multi-query workload
of ``bench_runtime_scaling`` is evaluated three ways on the same host:

* **scalar** — plain :class:`~repro.core.rapq.RAPQEvaluator` objects fed
  tuple at a time through the engine (the pre-columnar hot path);
* **columnar** — :class:`~repro.core.columnar.ColumnarRAPQEvaluator`
  objects fed :class:`~repro.core.columnar.ColumnarBatch` batches through
  ``engine.process_batch`` (batch construction included in the timing —
  it is part of the path);
* **pure** — the same columnar path with the numpy kernels disabled
  (``set_implementation("pure")``), measuring the fallback floor.

All three must produce exactly the same result triples — the fast path is
a transport/layout change, never a semantic one.  Each configuration is
warmed once and timed as the best of ``ROUNDS`` runs, so the committed
ratios are not skewed by cold caches on whichever configuration happens
to run first.

What the ratio can honestly reach is bounded by Amdahl's law: the Delta
spanning-tree mutations (``_insert``, expiry pruning) are identical work
in both paths and profile at ~70-80% of a dense run, and the scalar
engine's label-routing map already skips irrelevant tuples with one dict
lookup per tuple.  The columnar win is therefore confined to per-tuple
dispatch overhead — batch construction, clock advancement collapsed to
per-run boundary scans, interned int keys instead of string tuples —
which measures at ~1.25-1.5x with numpy on dense workloads (flat across
relevance fractions from 12% to 80%).  Raw throughput is
machine-dependent, so the JSON record gates on same-run *ratios*:
``columnar_vs_scalar_speedup`` (strict target >= 1.2x; the regression
gate's conservative floor is 1.1x) and ``pure_vs_scalar_speedup``
(floor 0.9x — the fallback must not land meaningfully below the scalar
path it replaces).  The ratios are asserted here only when
``REPRO_BENCH_STRICT=1`` is set, so shared/noisy CI runners track the
trajectory without flaking the build; ``check_regression.py`` enforces
the floors on main.

Besides the human-readable table, the run emits machine-readable
``results/BENCH_columnar.json`` so the trajectory is tracked across PRs.
Without numpy installed only the ``pure_vs_scalar_speedup`` ratio is
recorded.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.core.columnar import ColumnarBatch, fastpath_name, have_numpy, set_implementation
from repro.core.engine import StreamingRPQEngine
from repro.core.rapq import RAPQEvaluator
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec

#: Queries over disjoint label groups (same workload as runtime scaling).
QUERIES = {
    "q-a": "a1 a2*",
    "q-b": "b1+ b2",
    "q-c": "(c1 c2)+",
    "q-d": "d1 d2*",
}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}

BATCH_SIZE = 512

#: Timed runs per configuration (best-of, after one warm-up of the
#: columnar path primes allocator/caches for every configuration).
ROUNDS = 2

#: Strict-mode expectations (opt-in via REPRO_BENCH_STRICT=1; the
#: regression gate on main uses the more conservative floors documented in
#: check_regression.py).  See the module docstring for why the columnar
#: target is 1.2x and not higher: the tree mutations dominating dense
#: runs are shared work, and the scalar baseline already label-routes.
_EXPECTED_COLUMNAR_SPEEDUP = 1.2
_EXPECTED_PURE_FLOOR = 0.9


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    labels = ("a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2", "noise1", "noise2")
    generator = UniformStreamGenerator(num_vertices=150, labels=labels, edges_per_timestamp=8, seed=13)
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=13)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def result_triples(engine: StreamingRPQEngine):
    return {
        name: {(e.source, e.target, e.timestamp) for e in engine.query(name).results.positives()}
        for name in QUERIES
    }


def run_scalar(stream, window):
    """Tuple-at-a-time evaluation with plain scalar evaluators."""
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register_evaluator(name, RAPQEvaluator(expression, window), "arbitrary")
    started = time.perf_counter()
    for tup in stream:
        engine.process(tup)
    elapsed = time.perf_counter() - started
    return elapsed, result_triples(engine)


def run_columnar(stream, window):
    """Batched evaluation on the columnar fast path (batch build included)."""
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register(name, expression)
    started = time.perf_counter()
    for start in range(0, len(stream), BATCH_SIZE):
        engine.process_batch(ColumnarBatch.from_tuples(stream[start : start + BATCH_SIZE]))
    elapsed = time.perf_counter() - started
    return elapsed, result_triples(engine)


def _best_of(runner, stream, window, expected=None):
    """Best (minimum) wall time over ROUNDS runs; asserts exact results."""
    best_seconds, triples = runner(stream, window)
    for _ in range(ROUNDS - 1):
        seconds, triples = runner(stream, window)
        best_seconds = min(best_seconds, seconds)
    if expected is not None:
        assert triples == expected, f"{runner.__name__} diverged from the scalar engine"
    return best_seconds, triples


def columnar_benchmark(scale: str):
    stream, window = build_workload(scale)
    run_columnar(stream, window)  # warm-up: prime caches for all configurations
    scalar_seconds, expected = _best_of(run_scalar, stream, window)
    rows = [("scalar (per tuple)", scalar_seconds, len(stream) / scalar_seconds, 1.0)]
    ratios = {}

    if have_numpy():
        columnar_seconds, _ = _best_of(run_columnar, stream, window, expected)
        ratios["columnar_vs_scalar_speedup"] = scalar_seconds / columnar_seconds
        rows.append(
            (
                f"columnar numpy (batch {BATCH_SIZE})",
                columnar_seconds,
                len(stream) / columnar_seconds,
                scalar_seconds / columnar_seconds,
            )
        )

    set_implementation("pure")
    try:
        pure_seconds, _ = _best_of(run_columnar, stream, window, expected)
    finally:
        set_implementation(None)
    ratios["pure_vs_scalar_speedup"] = scalar_seconds / pure_seconds
    rows.append(
        (
            f"columnar pure (batch {BATCH_SIZE})",
            pure_seconds,
            len(stream) / pure_seconds,
            scalar_seconds / pure_seconds,
        )
    )
    return len(stream), rows, ratios


def render(num_tuples, rows) -> str:
    lines = [
        f"Columnar fast path — {num_tuples} tuples, {len(QUERIES)} queries "
        f"(active kernels: {fastpath_name()})",
        f"{'configuration':<28} {'seconds':>8} {'edges/s':>12} {'speedup':>8}",
    ]
    for name, seconds, eps, speedup in rows:
        lines.append(f"{name:<28} {seconds:>8.2f} {eps:>12,.0f} {speedup:>7.2f}x")
    return "\n".join(lines)


def write_json(path, scale, num_tuples, ratios) -> None:
    """Emit the machine-readable trajectory record (BENCH_columnar.json)."""
    record = {
        "benchmark": "columnar",
        "scale": scale,
        "num_tuples": num_tuples,
        "batch_size": BATCH_SIZE,
        "queries": list(QUERIES),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": have_numpy(),
        **ratios,
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_columnar_speedup(benchmark, save_result, results_dir, bench_scale):
    num_tuples, rows, ratios = benchmark.pedantic(
        columnar_benchmark, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("columnar", render(num_tuples, rows))
    json_path = results_dir / "BENCH_columnar.json"
    write_json(json_path, bench_scale, num_tuples, ratios)
    print(f"[saved to {json_path}]")

    for _, seconds, eps, _ in rows:
        assert seconds > 0 and eps > 0

    pure = ratios["pure_vs_scalar_speedup"]
    print(f"[pure vs scalar: {pure:.2f}x]")
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if "columnar_vs_scalar_speedup" in ratios:
        col = ratios["columnar_vs_scalar_speedup"]
        print(f"[columnar (numpy) vs scalar: {col:.2f}x]")
        if strict:
            assert col > _EXPECTED_COLUMNAR_SPEEDUP, (
                f"columnar fast path is only {col:.2f}x the scalar engine; "
                f"expected > {_EXPECTED_COLUMNAR_SPEEDUP}x"
            )
    if strict:
        assert pure > _EXPECTED_PURE_FLOOR, (
            f"pure-Python columnar path is {pure:.2f}x the scalar engine; "
            f"the fallback must stay above {_EXPECTED_PURE_FLOOR}x"
        )
