"""Runtime scaling — sharded service throughput vs the single-threaded engine.

Not a figure of the paper: this benchmark measures the execution subsystem
added on top of it.  A multi-query workload (disjoint label groups, so the
router can keep shards independent) is evaluated by the single-threaded
:class:`~repro.core.engine.StreamingRPQEngine` and by the
:class:`~repro.runtime.StreamingQueryService` at shard counts {1, 2, 4},
reporting end-to-end throughput and the speed-up over the baseline.

Python threads share the GIL, so CPU-bound speed-up is bounded; the win
measured here comes from the router's label filtering (each shard only
touches tuples its queries can use) and the architecture is ready for a
``multiprocessing`` backend.  Results are asserted for correctness: every
configuration must produce exactly the baseline's result triples.
"""

from __future__ import annotations

import time

from repro.core.engine import StreamingRPQEngine
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

SHARD_COUNTS = (1, 2, 4)

#: Queries over disjoint label groups, the shape sharding helps most.
QUERIES = {
    "q-a": "a1 a2*",
    "q-b": "b1+ b2",
    "q-c": "(c1 c2)+",
    "q-d": "d1 d2*",
}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    labels = ("a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2", "noise1", "noise2")
    generator = UniformStreamGenerator(
        num_vertices=150, labels=labels, edges_per_timestamp=8, seed=13
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=13)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def run_baseline(stream, window):
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register(name, expression)
    started = time.perf_counter()
    engine.process_stream(stream)
    elapsed = time.perf_counter() - started
    triples = {
        name: {(e.source, e.target, e.timestamp) for e in engine.query(name).results.positives()}
        for name in QUERIES
    }
    return elapsed, triples


def run_service(stream, window, shards):
    config = RuntimeConfig(shards=shards, batch_size=256, sharding="label_affinity")
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    started = time.perf_counter()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
        triples = {name: service.result_triples(name) for name in QUERIES}
    return elapsed, triples


def runtime_scaling(scale: str):
    stream, window = build_workload(scale)
    baseline_seconds, expected = run_baseline(stream, window)
    rows = [("engine (1 thread)", baseline_seconds, len(stream) / baseline_seconds, 1.0)]
    for shards in SHARD_COUNTS:
        elapsed, triples = run_service(stream, window, shards)
        assert triples == expected, f"service with {shards} shard(s) diverged from the engine"
        rows.append(
            (f"service {shards} shard(s)", elapsed, len(stream) / elapsed, baseline_seconds / elapsed)
        )
    return len(stream), rows


def render_scaling(num_tuples, rows) -> str:
    lines = [
        f"Runtime scaling — {num_tuples} tuples, {len(QUERIES)} queries",
        f"{'configuration':<22} {'seconds':>8} {'edges/s':>12} {'speedup':>8}",
    ]
    for name, seconds, eps, speedup in rows:
        lines.append(f"{name:<22} {seconds:>8.2f} {eps:>12,.0f} {speedup:>7.2f}x")
    return "\n".join(lines)


def test_runtime_scaling(benchmark, save_result, bench_scale):
    num_tuples, rows = benchmark.pedantic(
        runtime_scaling, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("runtime_scaling", render_scaling(num_tuples, rows))

    # every configuration processed the full stream and reported a throughput
    assert len(rows) == 1 + len(SHARD_COUNTS)
    for _, seconds, eps, _ in rows:
        assert seconds > 0 and eps > 0
