"""Runtime scaling — sharded service throughput vs the single-threaded engine.

Not a figure of the paper: this benchmark measures the execution subsystem
added on top of it.  A multi-query workload (disjoint label groups, so the
router can keep shards independent) is evaluated by the single-threaded
:class:`~repro.core.engine.StreamingRPQEngine` and by the
:class:`~repro.runtime.StreamingQueryService` for every worker backend at
shard counts {1, 2, 4}, reporting end-to-end throughput and the speed-up
over the baseline.

The ``threading`` backend shares the GIL, so its CPU-bound speed-up is
bounded — it wins only by the router's label filtering (each shard only
touches tuples its queries can use).  The ``multiprocessing`` backend runs
each shard worker in its own process and is expected to exceed 1.5x the
threading backend at 4 shards on machines with >= 4 quiet cores.  That
ratio is always recorded in the JSON output; it is *asserted* only when
``REPRO_BENCH_STRICT=1`` is set on a >= 4-core host, so shared/noisy CI
runners track the trajectory without flaking the build.  Results are
asserted for correctness unconditionally: every configuration must
produce exactly the baseline's result triples.

Besides the human-readable table, the run emits machine-readable
``results/BENCH_runtime_scaling.json`` (throughput per backend x shard
count) so the performance trajectory can be tracked across PRs and CI
uploads it as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.core.engine import StreamingRPQEngine
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

SHARD_COUNTS = (1, 2, 4)

#: The in-process transports only: the ``tcp`` backend needs standalone
#: worker processes and is benchmarked by ``bench_network.py`` instead.
IN_PROCESS_BACKENDS = ("threading", "multiprocessing")

#: Queries over disjoint label groups, the shape sharding helps most.
QUERIES = {
    "q-a": "a1 a2*",
    "q-b": "b1+ b2",
    "q-c": "(c1 c2)+",
    "q-d": "d1 d2*",
}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}

#: The >1.5x multiprocessing-vs-threading assertion needs real, quiet cores;
#: it is opt-in via REPRO_BENCH_STRICT=1 (the ratio is always recorded).
_MIN_CORES_FOR_SPEEDUP_ASSERT = 4
_EXPECTED_MP_SPEEDUP = 1.5


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    labels = ("a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2", "noise1", "noise2")
    generator = UniformStreamGenerator(num_vertices=150, labels=labels, edges_per_timestamp=8, seed=13)
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=13)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def run_baseline(stream, window):
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register(name, expression)
    started = time.perf_counter()
    engine.process_stream(stream)
    elapsed = time.perf_counter() - started
    triples = {
        name: {(e.source, e.target, e.timestamp) for e in engine.query(name).results.positives()}
        for name in QUERIES
    }
    return elapsed, triples


def run_service(stream, window, shards, backend):
    config = RuntimeConfig(shards=shards, batch_size=256, sharding="label_affinity", backend=backend)
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    started = time.perf_counter()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
        triples = {name: service.result_triples(name) for name in QUERIES}
    return elapsed, triples


def runtime_scaling(scale: str):
    stream, window = build_workload(scale)
    baseline_seconds, expected = run_baseline(stream, window)
    rows = [("engine (1 thread)", baseline_seconds, len(stream) / baseline_seconds, 1.0)]
    throughput = {}
    for backend in IN_PROCESS_BACKENDS:
        for shards in SHARD_COUNTS:
            elapsed, triples = run_service(stream, window, shards, backend)
            assert triples == expected, (f"{backend} service with {shards} shard(s) diverged from the engine")
            eps = len(stream) / elapsed
            throughput[(backend, shards)] = eps
            rows.append((f"{backend} {shards} shard(s)", elapsed, eps, baseline_seconds / elapsed))
    return len(stream), rows, throughput


def render_scaling(num_tuples, rows) -> str:
    lines = [
        f"Runtime scaling — {num_tuples} tuples, {len(QUERIES)} queries",
        f"{'configuration':<26} {'seconds':>8} {'edges/s':>12} {'speedup':>8}",
    ]
    for name, seconds, eps, speedup in rows:
        lines.append(f"{name:<26} {seconds:>8.2f} {eps:>12,.0f} {speedup:>7.2f}x")
    return "\n".join(lines)


def write_json(path, scale, num_tuples, rows, throughput) -> None:
    """Emit the machine-readable trajectory record (BENCH_runtime_scaling.json)."""
    baseline = rows[0]
    record = {
        "benchmark": "runtime_scaling",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": list(QUERIES),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "baseline": {"seconds": baseline[1], "throughput_eps": baseline[2]},
        "multiprocessing_vs_threading_at_4_shards": (
            throughput[("multiprocessing", 4)] / throughput[("threading", 4)]
        ),
        "configs": [
            {
                "backend": backend,
                "shards": shards,
                "throughput_eps": eps,
                "speedup_vs_baseline": eps / baseline[2],
            }
            for (backend, shards), eps in sorted(throughput.items())
        ],
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_runtime_scaling(benchmark, save_result, results_dir, bench_scale):
    num_tuples, rows, throughput = benchmark.pedantic(
        runtime_scaling, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("runtime_scaling", render_scaling(num_tuples, rows))
    json_path = results_dir / "BENCH_runtime_scaling.json"
    write_json(json_path, bench_scale, num_tuples, rows, throughput)
    print(f"[saved to {json_path}]")

    # every configuration processed the full stream and reported a throughput
    assert len(rows) == 1 + len(IN_PROCESS_BACKENDS) * len(SHARD_COUNTS)
    for _, seconds, eps, _ in rows:
        assert seconds > 0 and eps > 0

    # The point of the multiprocessing backend: beat threading on a CPU-bound
    # workload once real cores are available.  The ratio is meaningless on
    # small hosts and noisy on shared runners, so enforcement is opt-in.
    cores = os.cpu_count() or 1
    mp_speedup = throughput[("multiprocessing", 4)] / throughput[("threading", 4)]
    print(f"[multiprocessing vs threading at 4 shards: {mp_speedup:.2f}x on {cores} cores]")
    if os.environ.get("REPRO_BENCH_STRICT") == "1" and cores >= _MIN_CORES_FOR_SPEEDUP_ASSERT:
        assert mp_speedup > _EXPECTED_MP_SPEEDUP, (
            f"multiprocessing at 4 shards is only {mp_speedup:.2f}x threading "
            f"on {cores} cores; expected > {_EXPECTED_MP_SPEEDUP}x"
        )
