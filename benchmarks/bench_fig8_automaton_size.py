"""Figure 8 — RAPQ throughput versus automaton size k (gMark workload).

The paper finds no strong dependence of throughput on the number of DFA
states: queries with the same k can differ by large factors because the
real cost driver is the size of the intermediate result (the Delta index),
not k.  We reproduce the experiment with a synthetic gMark-style workload
and check that the spread within a single k is comparable to the spread
across different k values.
"""

from __future__ import annotations

from repro.experiments.figures import figure8


def test_figure8_throughput_vs_k(benchmark, save_result, bench_scale):
    figure = benchmark.pedantic(
        figure8, kwargs={"scale": bench_scale, "num_queries": 24}, rounds=1, iterations=1
    )
    save_result("figure8_throughput_vs_k", figure.render())

    means = figure.get("mean_throughput_eps")
    minima = figure.get("min_throughput_eps")
    maxima = figure.get("max_throughput_eps")
    assert means, "need at least one automaton-size bucket"
    # Queries with identical k show a wide spread (the paper reports up to 6x).
    spreads = [maxima[k] / minima[k] for k in means if minima[k] > 0 and maxima[k] > minima[k]]
    if spreads:
        assert max(spreads) > 1.5
