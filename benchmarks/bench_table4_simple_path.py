"""Table 4 — feasibility and overhead of simple path semantics.

The paper evaluates Algorithm RSPQ on all three graphs and reports (i)
which queries can be evaluated at all under simple path semantics — all of
them on the sparse heterogeneous Yago2s, only the restricted ones (Q1, Q4,
Q11 and a few others) on the dense cyclic StackOverflow graph — and (ii)
the latency overhead relative to arbitrary path semantics (roughly 1.4x to
5.4x).
"""

from __future__ import annotations

import os

from repro.experiments.tables import render_table4, table4_simple_path


def test_table4_simple_path_feasibility(benchmark, save_result):
    # Simple-path evaluation on the dense SO-like graph deliberately runs into
    # the node budget for the conflict-heavy queries, which is slow; keep this
    # at the tiny scale unless overridden.
    scale = os.environ.get("REPRO_BENCH_TABLE4_SCALE", "tiny")
    rows = benchmark.pedantic(
        table4_simple_path,
        kwargs={"scale": scale, "node_budget": 60_000},
        rounds=1,
        iterations=1,
    )
    save_result("table4_simple_path", render_table4(rows))

    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.query_name] = row

    # Restricted queries (Q1, Q4, Q11) succeed on every graph.
    for dataset, rows_by_query in by_dataset.items():
        for name in ("Q1", "Q11"):
            if name in rows_by_query:
                assert rows_by_query[name].successful, f"{name} must succeed on {dataset}"

    # The overhead of successful queries stays within a moderate factor.
    overheads = [row.overhead for row in rows if row.successful and row.overhead]
    assert overheads
    assert min(overheads) > 0.3
