"""Durability overhead and recovery cost — WAL logging vs no WAL.

Not a figure of the paper: this benchmark measures the durability
subsystem.  Three questions, one workload (two persistent queries over a
uniform labelled stream with deletions, 2 shards):

* **logging overhead** — ingest throughput with no WAL vs a WAL under
  each fsync policy (``off`` / ``batch`` / ``always``).  The headline
  gate is ``wal_relative_throughput`` = batch-fsync throughput divided by
  no-WAL throughput of the *same run pair on the same host* (machine
  speed cancels out); the acceptance bar is > 0.5, i.e. batch-fsync
  logging costs less than 2x.
* **recovery cost vs WAL-tail length** — the same crashed run recovered
  from base + WAL tails of increasing length (no interval checkpoints,
  so the tail is the whole post-base stream prefix); recovery wall time
  and replayed-tuple counts are recorded per tail.
* **incremental checkpoint size** — on a steady-state window (well past
  one window span), the delta between two consecutive coordinated
  checkpoints must encode to fewer bytes than the full checkpoint it
  reproduces.

Every durable run's recovered service must emit *exactly* the
uninterrupted run's result stream, so the benchmark doubles as a parity
check at a scale beyond the unit tests.  The JSON record lands in
``results/BENCH_durability.json`` and is gated by ``check_regression.py``.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RecoveryManager, RuntimeConfig, StreamingQueryService
from repro.runtime.durability.incremental import encoded_size, service_delta

QUERIES = {"chains": "a+", "mixed": "b a*"}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (10_000, 60),
    "medium": (30_000, 120),
}

#: Acceptance bar: batch-fsync WAL keeps more than half the no-WAL
#: throughput (i.e. logging overhead < 2x).
_MIN_RELATIVE_THROUGHPUT = 0.5

#: Crash points for the recovery-cost series, as fractions of the stream.
_TAIL_FRACTIONS = (0.25, 0.5, 1.0)


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    generator = UniformStreamGenerator(
        num_vertices=120, labels=("a", "b", "noise"), edges_per_timestamp=6, seed=47
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=47)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def make_config(wal_dir=None, fsync="batch", interval=0):
    return RuntimeConfig(
        shards=2,
        batch_size=128,
        wal_dir=None if wal_dir is None else str(wal_dir),
        wal_fsync=fsync,
        checkpoint_interval=interval,
    )


def run_service(stream, window, config, crash_at=None):
    """One timed ingest run; returns (throughput record, events or None)."""
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    service.start()
    started = time.perf_counter()
    for position, tup in enumerate(stream, start=1):
        if crash_at is not None and position > crash_at:
            break
        service.ingest_one(tup)
    if crash_at is not None:
        return {"wall_seconds": time.perf_counter() - started}, None  # abandoned: kill -9
    service.drain()
    elapsed = time.perf_counter() - started
    events = {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in QUERIES
    }
    service.stop()
    return {"wall_seconds": elapsed, "throughput_eps": len(stream) / elapsed}, events


def measure_logging_overhead(stream, window, workdir):
    """Throughput with no WAL and under each fsync policy (parity-checked)."""
    rows = {}
    baseline, expected = run_service(stream, window, make_config())
    rows["no-wal"] = baseline
    for fsync in ("off", "batch", "always"):
        wal_dir = workdir / f"wal-{fsync}"
        record, events = run_service(stream, window, make_config(wal_dir, fsync=fsync))
        assert events == expected, f"durable run (fsync={fsync}) diverged from the no-WAL run"
        result = RecoveryManager(wal_dir).recover()
        with result.service as recovered:
            recovered.drain()
            recovered_events = {
                name: [
                    (e.source, e.target, e.timestamp, e.positive)
                    for e in recovered.results(name).events
                ]
                for name in QUERIES
            }
        assert recovered_events == expected, f"recovered run (fsync={fsync}) diverged"
        record["fsync"] = fsync
        rows[f"wal-{fsync}"] = record
    return rows, expected


def measure_recovery_tails(stream, window, workdir, expected):
    """Recovery wall time for WAL tails of increasing length."""
    rows = []
    for fraction in _TAIL_FRACTIONS:
        crash_at = int(len(stream) * fraction)
        wal_dir = workdir / f"tail-{int(fraction * 100)}"
        run_service(stream, window, make_config(wal_dir, fsync="off"), crash_at=crash_at)
        started = time.perf_counter()
        result = RecoveryManager(wal_dir).recover()
        seconds = time.perf_counter() - started
        with result.service as recovered:
            recovered.ingest(stream[result.next_index - 1 :])
            recovered.drain()
            got = {
                name: [
                    (e.source, e.target, e.timestamp, e.positive)
                    for e in recovered.results(name).events
                ]
                for name in QUERIES
            }
        assert got == expected, f"recovery at tail {fraction:.0%} diverged from the oracle"
        rows.append(
            {
                "tail_fraction": fraction,
                "tail_tuples": crash_at,
                "replayed_tuples": sum(result.replayed_tuples.values()),
                "recovery_seconds": seconds,
            }
        )
    return rows


def measure_delta_size(stream, window):
    """Delta vs full checkpoint bytes between two steady-state cuts."""
    service = StreamingQueryService(window, make_config())
    for name, expression in QUERIES.items():
        service.register(name, expression)
    steady = int(len(stream) * 0.7)
    cut = int(len(stream) * 0.85)
    with service:
        service.ingest(stream[:steady])
        base = json.loads(json.dumps(service.checkpoint()))
        service.ingest(stream[steady:cut])
        current = json.loads(json.dumps(service.checkpoint()))
    delta = service_delta(base, current)
    return {
        "full_bytes": encoded_size(current),
        "delta_bytes": encoded_size(delta),
        "delta_to_full_ratio": encoded_size(delta) / encoded_size(current),
    }


def durability(scale: str):
    stream, window = build_workload(scale)
    workdir = Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        overhead, expected = measure_logging_overhead(stream, window, workdir)
        tails = measure_recovery_tails(stream, window, workdir, expected)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    sizes = measure_delta_size(stream, window)
    relative = overhead["wal-batch"]["throughput_eps"] / overhead["no-wal"]["throughput_eps"]
    return len(stream), overhead, tails, sizes, relative


def render_durability(num_tuples, overhead, tails, sizes, relative) -> str:
    lines = [
        f"Durability — {num_tuples} tuples, {len(QUERIES)} queries, 2 shards",
        f"{'configuration':<14} {'wall s':>8} {'eps':>12} {'vs no-wal':>10}",
    ]
    base = overhead["no-wal"]["throughput_eps"]
    for name in ("no-wal", "wal-off", "wal-batch", "wal-always"):
        row = overhead[name]
        lines.append(
            f"{name:<14} {row['wall_seconds']:>8.2f} {row['throughput_eps']:>12,.0f} "
            f"{row['throughput_eps'] / base:>9.0%}"
        )
    lines.append(f"batch-fsync relative throughput: {relative:.2f}x (gate: > {_MIN_RELATIVE_THROUGHPUT})")
    for row in tails:
        lines.append(
            f"  recovery of a {row['tail_fraction']:.0%} tail ({row['replayed_tuples']} replayed "
            f"tuples): {row['recovery_seconds']:.2f}s"
        )
    lines.append(
        f"incremental checkpoint: {sizes['delta_bytes']:,} B delta vs "
        f"{sizes['full_bytes']:,} B full ({sizes['delta_to_full_ratio']:.0%})"
    )
    return "\n".join(lines)


def write_json(path, scale, num_tuples, overhead, tails, sizes, relative) -> None:
    """Emit the machine-readable trajectory record (BENCH_durability.json)."""
    record = {
        "benchmark": "durability",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": list(QUERIES),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "overhead": overhead,
        "recovery_tails": tails,
        "checkpoint_sizes": sizes,
        "wal_relative_throughput": relative,
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_durability(benchmark, save_result, results_dir, bench_scale):
    num_tuples, overhead, tails, sizes, relative = benchmark.pedantic(
        durability, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("durability", render_durability(num_tuples, overhead, tails, sizes, relative))
    json_path = results_dir / "BENCH_durability.json"
    write_json(json_path, bench_scale, num_tuples, overhead, tails, sizes, relative)
    print(f"[saved to {json_path}]")

    # Acceptance: batch-fsync logging keeps more than half the no-WAL
    # throughput (overhead < 2x) ...
    assert relative > _MIN_RELATIVE_THROUGHPUT, (
        f"batch-fsync WAL kept only {relative:.2f}x of the no-WAL throughput; "
        f"the acceptance bar is > {_MIN_RELATIVE_THROUGHPUT}x (overhead < 2x)"
    )
    # ... and a steady-state incremental checkpoint is smaller than a full one.
    assert sizes["delta_bytes"] < sizes["full_bytes"], (
        f"steady-state delta ({sizes['delta_bytes']} B) is not smaller than the "
        f"full checkpoint ({sizes['full_bytes']} B)"
    )
