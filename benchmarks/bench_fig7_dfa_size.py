"""Figure 7 — number of DFA states versus query size (gMark workload).

The combined complexities of the streaming algorithms are polynomial in the
number of automaton states k, which could in principle be exponential in
the query size.  The paper observes (and we reproduce) that for practical
RPQ workloads the minimal DFA grows only linearly with the query size.
"""

from __future__ import annotations

from repro.experiments.figures import figure7


def test_figure7_dfa_size_vs_query_size(benchmark, save_result):
    figure = benchmark.pedantic(
        figure7, kwargs={"num_queries": 100, "min_size": 2, "max_size": 20}, rounds=1, iterations=1
    )
    save_result("figure7_dfa_size", figure.render())

    means = figure.get("mean_states")
    assert means
    # No exponential blow-up: the automaton stays within a small linear factor
    # of the query size across the whole workload.
    for size, states in means.items():
        assert states <= 3 * size + 2, f"DFA for size-{size} queries unexpectedly large ({states})"
    # and the trend is increasing overall
    sizes = sorted(means)
    assert means[sizes[-1]] > means[sizes[0]]
