"""Ablation — multi-query processing with a shared window snapshot.

The paper lists multi-query optimization as future work; DESIGN.md includes
our shared-snapshot engine as an extension.  This benchmark registers the
same set of queries (i) as independent evaluators, each maintaining its own
copy of the window, and (ii) on the shared-snapshot engine, and compares
wall-clock time and window storage.
"""

from __future__ import annotations

import time

from repro.core.rapq import RAPQEvaluator
from repro.datasets import build_workload
from repro.experiments.workloads import dataset_config
from repro.extensions.multi_query import SharedSnapshotEngine
from repro.metrics.reporting import format_table

QUERIES = ["Q1", "Q2", "Q7", "Q11"]


def _run_independent(stream, window, workload):
    evaluators = {name: RAPQEvaluator(workload[name], window) for name in QUERIES}
    started = time.perf_counter()
    for tup in stream:
        for evaluator in evaluators.values():
            evaluator.process(tup)
    elapsed = time.perf_counter() - started
    snapshot_edges = sum(evaluator.snapshot.num_edges for evaluator in evaluators.values())
    answers = {name: evaluator.answer_pairs() for name, evaluator in evaluators.items()}
    return elapsed, snapshot_edges, answers


def _run_shared(stream, window, workload):
    engine = SharedSnapshotEngine(window)
    for name in QUERIES:
        engine.register(name, workload[name])
    started = time.perf_counter()
    for tup in stream:
        engine.process(tup)
    elapsed = time.perf_counter() - started
    answers = {name: engine.answer_pairs(name) for name in QUERIES}
    return elapsed, engine.snapshot.num_edges, answers


def test_ablation_shared_snapshot(benchmark, save_result, bench_scale):
    config = dataset_config("yago", bench_scale)
    stream = list(config.stream())
    workload = build_workload("yago")

    shared_elapsed, shared_edges, shared_answers = benchmark.pedantic(
        _run_shared, args=(stream, config.window, workload), rounds=1, iterations=1
    )
    independent_elapsed, independent_edges, independent_answers = _run_independent(
        stream, config.window, workload
    )

    # correctness: sharing the snapshot must not change any query's answers
    for name in QUERIES:
        assert shared_answers[name] == independent_answers[name], name

    save_result(
        "ablation_multi_query_sharing",
        format_table(
            ["configuration", "wall-clock (s)", "stored window edges (sum)"],
            [
                ["independent evaluators", round(independent_elapsed, 3), independent_edges],
                ["shared snapshot engine", round(shared_elapsed, 3), shared_edges],
            ],
            title=f"Ablation — shared window snapshot across {len(QUERIES)} queries (Yago-like)",
        ),
    )
    # the shared window is stored once instead of once per query
    assert shared_edges <= independent_edges / 2
