"""Hot-standby replication — ingestion overhead and failover downtime.

Not a figure of the paper: this benchmark prices the warm-failover layer
added by the runtime (``repro.runtime.replication``).  Two questions:

1. **What does replication cost while nothing fails?**  The same
   multi-query workload flows through loopback TCP workers twice — once
   with a hot standby armed per shard (every record shipped a second
   time over its replication socket, the standby evaluating it muted),
   and once with no standbys but every query registered *twice* on its
   shard (a ``~mirror`` copy).  The mirrored baseline performs exactly
   the duplicated evaluation a standby performs — a hot spare *is* a
   second copy of the computation, and on a host with fewer spare cores
   than standbys that duplicate cannot overlap, which is a property of
   the hardware, not of the shipping code.  Normalizing the evaluation
   work out leaves the ratio pricing only the replication wire itself —
   record buffering, ``REPLICATE`` framing, socket writes, ack reads,
   and the replica's frame decode + LSN bookkeeping::

       replication_relative_throughput = standby edges/s / mirrored-bare edges/s

   Each configuration runs ``TRIALS`` times and the best (minimum)
   process-CPU time is kept — the loopback servers share this process,
   so process CPU sums everyone's work and sheds scheduler noise that
   whipsaws wall clock on small hosts.  The gate
   in ``check_regression.py`` holds an absolute floor of 0.85 on the
   ratio: the replication wire may not cost more than 15% of ingestion.
   (On hosts with spare cores the standby's evaluation overlaps while
   the mirror's two copies share one worker thread, so the ratio may
   legitimately exceed 1.)

2. **What does failover cost when something does?**  The same crash is
   healed both ways on the same host and stream position: *warm* — a
   planned promotion of the hot standby (``promotion_seconds``, zero WAL
   records replayed) — and *cold* — ``RecoveryManager.recover`` replaying
   base + WAL tail onto a replacement fleet (``cold_recovery_seconds``).
   Their ratio (``failover_speedup``) is reported, not gated: it grows
   with the WAL tail by construction, which is the whole point of the
   replication layer.

Both standby runs must produce exactly the same result triples as the
bare run.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RecoveryManager, RuntimeConfig, StreamingQueryService, TcpWorkerServer

SHARDS = 2

#: Wall-time samples per configuration; the minimum is reported.
TRIALS = 3

#: Suffix of the duplicate registrations in the mirrored baseline.
MIRROR = "~mirror"

#: Queries over disjoint label groups, the shape sharding helps most.
QUERIES = {
    "q-a": "a1 a2*",
    "q-b": "b1+ b2",
}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    labels = ("a1", "a2", "b1", "b2", "noise1", "noise2")
    generator = UniformStreamGenerator(num_vertices=150, labels=labels, edges_per_timestamp=8, seed=13)
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=13)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def start_servers(count):
    servers = [TcpWorkerServer("127.0.0.1", 0) for _ in range(count)]
    addresses = tuple(f"127.0.0.1:{server.start_in_background()}" for server in servers)
    return servers, addresses


def stop_servers(servers):
    for server in servers:
        server.stop()


def make_config(primary_addresses, standby_addresses=None, **kwargs):
    return RuntimeConfig(
        shards=SHARDS,
        batch_size=256,
        sharding="label_affinity",
        backend="tcp",
        worker_addresses=primary_addresses,
        standby_addresses=standby_addresses,
        **kwargs,
    )


def make_service(window, config, mirror=False):
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
        if mirror:
            # label_affinity places the copy on the same shard as the
            # original: the shard evaluates its stream twice, exactly
            # like a primary/standby pair does.
            service.register(name + MIRROR, expression)
    return service


def run_once(stream, window, config, mirror=False):
    service = make_service(window, config, mirror=mirror)
    # Process CPU time, not wall clock: the loopback servers run in this
    # same process, so process_time sums the work of coordinator, primary
    # and standby threads — the quantity the overhead ratio prices — and
    # is far steadier than wall clock on one- and two-core hosts, where
    # scheduler interleaving swings wall time by tens of percent.
    started = time.process_time()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.process_time() - started
        triples = {name: service.result_triples(name) for name in QUERIES}
        if mirror:
            for name in QUERIES:
                assert service.result_triples(name + MIRROR) == triples[name], (
                    f"mirror copy of {name!r} diverged from the original"
                )
    return elapsed, triples


def warm_failover_seconds(stream, window, crash_at):
    """Planned promotion mid-stream; returns (promotion seconds, triples)."""
    primaries, primary_addresses = start_servers(SHARDS)
    standbys, standby_addresses = start_servers(SHARDS)
    try:
        service = make_service(window, make_config(primary_addresses, standby_addresses))
        with service:
            service.ingest(stream[:crash_at])
            facts = service.promote(0)
            assert facts["replayed_records"] == 0
            service.ingest(stream[crash_at:])
            service.drain()
            triples = {name: service.result_triples(name) for name in QUERIES}
        return float(facts["seconds"]), triples
    finally:
        stop_servers(primaries)
        stop_servers(standbys)


def cold_recovery_seconds(stream, window, crash_at, wal_dir):
    """WAL replay of the same crash point; returns (recover seconds, triples)."""
    primaries, primary_addresses = start_servers(SHARDS)
    crashed = make_service(window, make_config(primary_addresses, wal_dir=str(wal_dir)))
    crashed.start()
    for tup in stream[:crash_at]:
        crashed.ingest_one(tup)
    # Sever every coordinator link with no shutdown courtesy, then stop the
    # dead fleet: cold recovery re-homes the shards onto replacements.
    for worker in crashed.workers:
        worker._conn.close_socket()
    stop_servers(primaries)
    replacements, replacement_addresses = start_servers(SHARDS)
    try:
        started = time.perf_counter()
        result = RecoveryManager(wal_dir).recover(backend="tcp", worker_addresses=replacement_addresses)
        elapsed = time.perf_counter() - started
        with result.service:
            result.service.ingest(stream[result.next_index - 1 :])
            result.service.drain()
            triples = {name: result.service.result_triples(name) for name in QUERIES}
        return elapsed, triples
    finally:
        stop_servers(replacements)


def replication_cost(scale: str, wal_dir):
    stream, window = build_workload(scale)

    expected = None
    bare_seconds = float("inf")
    for _ in range(TRIALS):
        bare_servers, bare_addresses = start_servers(SHARDS)
        try:
            elapsed, triples = run_once(stream, window, make_config(bare_addresses), mirror=True)
        finally:
            stop_servers(bare_servers)
        bare_seconds = min(bare_seconds, elapsed)
        assert expected is None or triples == expected, "bare trials diverged"
        expected = triples

    standby_seconds = float("inf")
    for _ in range(TRIALS):
        primaries, primary_addresses = start_servers(SHARDS)
        standbys, standby_addresses = start_servers(SHARDS)
        try:
            elapsed, standby_triples = run_once(
                stream, window, make_config(primary_addresses, standby_addresses)
            )
        finally:
            stop_servers(primaries)
            stop_servers(standbys)
        standby_seconds = min(standby_seconds, elapsed)
        assert standby_triples == expected, "replicated run diverged from the bare run"

    crash_at = len(stream) // 2
    promotion, warm_triples = warm_failover_seconds(stream, window, crash_at)
    assert warm_triples == expected, "promoted run diverged from the bare run"
    cold, cold_triples = cold_recovery_seconds(stream, window, crash_at, wal_dir)
    assert cold_triples == expected, "recovered run diverged from the bare run"

    return {
        "num_tuples": len(stream),
        "bare_eps": len(stream) / bare_seconds,
        "standby_eps": len(stream) / standby_seconds,
        "bare_seconds": bare_seconds,
        "standby_seconds": standby_seconds,
        "promotion_seconds": promotion,
        "cold_recovery_seconds": cold,
    }


def render(measured) -> str:
    ratio = measured["standby_eps"] / measured["bare_eps"]
    speedup = measured["cold_recovery_seconds"] / measured["promotion_seconds"]
    lines = [
        f"Hot-standby replication — {measured['num_tuples']} tuples, "
        f"{len(QUERIES)} queries, {SHARDS} shards, best of {TRIALS} trials",
        f"{'configuration':<26} {'cpu-s':>8} {'edges/s':>12}",
        f"{'tcp, mirrored queries':<26} {measured['bare_seconds']:>8.2f} "
        f"{measured['bare_eps']:>12,.0f}",
        f"{'tcp + hot standby':<26} {measured['standby_seconds']:>8.2f} "
        f"{measured['standby_eps']:>12,.0f}",
        f"replication relative throughput: {ratio:.2f}x of evaluation-matched bare ingestion",
        f"failover downtime: promotion {measured['promotion_seconds'] * 1000:.0f}ms vs "
        f"cold WAL replay {measured['cold_recovery_seconds'] * 1000:.0f}ms ({speedup:.1f}x faster)",
    ]
    return "\n".join(lines)


def write_json(path, scale, measured) -> None:
    """Emit the machine-readable trajectory record (BENCH_replication.json)."""
    record = {
        "benchmark": "replication",
        "scale": scale,
        "num_tuples": measured["num_tuples"],
        "queries": list(QUERIES),
        "shards": SHARDS,
        "trials": TRIALS,
        "baseline": "mirrored",  # bare run carries the standby's duplicate evaluation
        "timing": "process_cpu",  # in-process servers: CPU sums all parties' work
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "bare_eps": measured["bare_eps"],
        "standby_eps": measured["standby_eps"],
        "replication_relative_throughput": measured["standby_eps"] / measured["bare_eps"],
        "promotion_seconds": measured["promotion_seconds"],
        "cold_recovery_seconds": measured["cold_recovery_seconds"],
        "failover_speedup": measured["cold_recovery_seconds"] / measured["promotion_seconds"],
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_replication_cost(benchmark, save_result, results_dir, bench_scale, tmp_path):
    measured = benchmark.pedantic(
        replication_cost, args=(bench_scale, tmp_path / "wal"), rounds=1, iterations=1
    )
    save_result("replication", render(measured))
    json_path = results_dir / "BENCH_replication.json"
    write_json(json_path, bench_scale, measured)
    print(f"[saved to {json_path}]")

    assert measured["bare_seconds"] > 0 and measured["standby_seconds"] > 0
    ratio = measured["standby_eps"] / measured["bare_eps"]
    print(f"[hot standby vs bare tcp at {SHARDS} shards: {ratio:.2f}x]")
