"""Ablation — the vertex->trees reverse index.

DESIGN.md calls out one implementation choice on top of the paper's
pseudocode: a global reverse index mapping each vertex to the spanning
trees that contain it, so an incoming edge only touches trees it can
actually extend (the paper's prototype achieves the same with per-tree hash
indexes).  This ablation runs the same workload with the reverse index
enabled and disabled and reports the speed-up.
"""

from __future__ import annotations

from repro.core.rapq import RAPQEvaluator
from repro.datasets import build_workload
from repro.experiments.harness import run_evaluator
from repro.experiments.workloads import dataset_config
from repro.metrics.reporting import format_table


def _run(use_reverse_index: bool, scale: str):
    config = dataset_config("yago", scale)
    stream = config.stream()
    workload = build_workload("yago")
    rows = []
    for name in ("Q1", "Q2", "Q7", "Q11"):
        evaluator = RAPQEvaluator(workload[name], config.window, use_reverse_index=use_reverse_index)
        result = run_evaluator(evaluator, stream, query_name=name, dataset="yago")
        rows.append((name, result))
    return rows


def test_ablation_reverse_index(benchmark, save_result, bench_scale):
    with_index = benchmark.pedantic(_run, args=(True, bench_scale), rounds=1, iterations=1)
    without_index = _run(False, bench_scale)

    table_rows = []
    speedups = []
    for (name, fast), (_, slow) in zip(with_index, without_index):
        assert fast.distinct_results == slow.distinct_results, "ablation must not change answers"
        speedup = fast.throughput_eps / slow.throughput_eps if slow.throughput_eps else float("inf")
        speedups.append(speedup)
        table_rows.append(
            [name, round(fast.throughput_eps, 1), round(slow.throughput_eps, 1), f"{speedup:.2f}x"]
        )
    save_result(
        "ablation_reverse_index",
        format_table(
            ["query", "with reverse index (eps)", "without (eps)", "speed-up"],
            table_rows,
            title="Ablation — vertex->trees reverse index (Yago-like stream)",
        ),
    )
    # The reverse index should never hurt, and should help on average.
    assert sum(speedups) / len(speedups) >= 0.9
