"""Whale splitting — pinned placement vs intra-query data parallelism.

Not a figure of the paper: this benchmark measures the partitioned-query
layer of the runtime.  A label-skewed workload (two hot labels carry ~80%
of the tuples) feeds one *whale* query listening to both hot labels plus
two small cold-label queries, on four shards:

* **pinned baseline** — query-level sharding only: the whale is a single
  evaluator, so one shard does almost all the work.  This is exactly the
  skew `load_aware` rebalancing cannot fix — moving the whale merely
  relocates the hot spot (PR 3 pinned such queries for that reason);
* **split** — the whale is registered as four root partitions
  (``partitions=4``), one per shard: every shard receives the whale's
  full tuple stream but materializes only the spanning trees whose root
  it owns, so the dominant tree work runs data-parallel.

Both runs must produce exactly the single-threaded engine's result stream
(partitioning is transparent), so the benchmark doubles as a correctness
check on a workload sized beyond the unit tests.

Reported per run: wall-clock throughput, per-shard busy seconds, and the
*critical path* (the busiest shard's processing seconds).  As in
``bench_rebalancing.py``, single-core CI boxes make wall clock useless
(same total work through one core), so the headline number is the modeled
parallel throughput ``tuples / critical_path`` — hardware-independent.
Note the speedup is sublinear in the partition count: window-snapshot
maintenance is duplicated in every partition (each needs the full window
to extend its trees); only the tree work — the dominant cost on this
workload — splits.  The JSON record lands in
``results/BENCH_partitioned_whale.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.core.engine import StreamingRPQEngine
from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

#: One whale on the hot labels, two minnows on the cold ones.
QUERIES = {
    "whale": "h1 h2*",
    "cold-1": "c1+",
    "cold-2": "c2 c1*",
}

#: ~80% of routed tuples belong to the whale's alphabet.
LABELS = ("h1", "h2", "c1", "c2")
LABEL_WEIGHTS = (0.40, 0.40, 0.12, 0.08)

SHARDS = 4

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}

#: The modeled-parallel speedup splitting must deliver; asserted with margin.
_EXPECTED_MIN_SPEEDUP = 1.3


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    generator = UniformStreamGenerator(
        num_vertices=150,
        labels=LABELS,
        label_weights=LABEL_WEIGHTS,
        edges_per_timestamp=8,
        seed=31,
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=31)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def run_engine_baseline(stream, window):
    engine = StreamingRPQEngine(window)
    for name, expression in QUERIES.items():
        engine.register(name, expression)
    engine.process_stream(stream)
    return {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in engine.query(name).results.events]
        for name in QUERIES
    }


def run_service(stream, window, whale_partitions):
    config = RuntimeConfig(shards=SHARDS, batch_size=256, sharding="label_affinity")
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression, partitions=whale_partitions if name == "whale" else 1)
    started = time.perf_counter()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
        summary = service.summary()
        events = {
            name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
            for name in QUERIES
        }
    busy = [stats["busy_seconds"] for stats in summary["shards"]]
    critical_path = max(busy)
    return {
        "whale_partitions": whale_partitions,
        "wall_seconds": elapsed,
        "throughput_eps": len(stream) / elapsed,
        "busy_seconds_per_shard": busy,
        "critical_path_seconds": critical_path,
        "modeled_parallel_throughput_eps": len(stream) / critical_path,
        "busy_imbalance": critical_path / max(sum(busy), 1e-9),
    }, events


def partitioned_whale(scale: str):
    stream, window = build_workload(scale)
    expected = run_engine_baseline(stream, window)
    pinned, pinned_events = run_service(stream, window, whale_partitions=1)
    split, split_events = run_service(stream, window, whale_partitions=SHARDS)
    assert pinned_events == expected, "pinned baseline diverged from the engine"
    assert split_events == expected, "partitioned run diverged from the engine (bit-exact merge broken)"
    return len(stream), pinned, split


def render_partitioned_whale(num_tuples, pinned, split) -> str:
    speedup = split["modeled_parallel_throughput_eps"] / pinned["modeled_parallel_throughput_eps"]
    lines = [
        f"Partitioned whale — {num_tuples} tuples, {len(QUERIES)} queries, {SHARDS} shards",
        f"{'configuration':<22} {'wall s':>8} {'critical s':>11} {'modeled eps':>12} {'imbalance':>10}",
    ]
    for name, row in (("pinned whale", pinned), (f"split into {SHARDS}", split)):
        lines.append(
            f"{name:<22} {row['wall_seconds']:>8.2f} {row['critical_path_seconds']:>11.2f} "
            f"{row['modeled_parallel_throughput_eps']:>12,.0f} {row['busy_imbalance']:>9.0%}"
        )
    lines.append(f"modeled parallel speedup from splitting the whale: {speedup:.2f}x")
    return "\n".join(lines)


def write_json(path, scale, num_tuples, pinned, split) -> None:
    """Emit the machine-readable trajectory record (BENCH_partitioned_whale.json)."""
    record = {
        "benchmark": "partitioned_whale",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": dict(QUERIES),
        "label_weights": dict(zip(LABELS, LABEL_WEIGHTS)),
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "pinned": pinned,
        "split": split,
        "modeled_parallel_speedup": (
            split["modeled_parallel_throughput_eps"] / pinned["modeled_parallel_throughput_eps"]
        ),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_partitioned_whale(benchmark, save_result, results_dir, bench_scale):
    num_tuples, pinned, split = benchmark.pedantic(
        partitioned_whale, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("partitioned_whale", render_partitioned_whale(num_tuples, pinned, split))
    json_path = results_dir / "BENCH_partitioned_whale.json"
    write_json(json_path, bench_scale, num_tuples, pinned, split)
    print(f"[saved to {json_path}]")

    # The headline claim: splitting the whale shortens the critical path
    # (the busiest shard's processing time) — the lever rebalancing alone
    # cannot pull, since moving the whale only relocates the hot spot.
    speedup = split["modeled_parallel_throughput_eps"] / pinned["modeled_parallel_throughput_eps"]
    assert speedup > _EXPECTED_MIN_SPEEDUP, (
        f"splitting the whale only reached {speedup:.2f}x the pinned placement's "
        f"modeled parallel throughput; expected > {_EXPECTED_MIN_SPEEDUP}x"
    )
    # and the busiest shard no longer carries (almost) everything
    assert split["busy_imbalance"] < pinned["busy_imbalance"]
