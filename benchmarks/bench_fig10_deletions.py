"""Figure 10 — impact of explicit deletions on tail latency.

Negative tuples are handled with the expiry machinery (Algorithm Delete);
the paper reports a latency overhead of up to ~50% that flattens quickly as
the deletion ratio grows (because deletions also shrink the window content
and the Delta index).  We sweep the deletion ratio from 0% to 10% on the
Yago-like stream.
"""

from __future__ import annotations

from repro.experiments.figures import SWEEP_QUERIES, figure10


def test_figure10_deletion_ratio_sweep(benchmark, save_result, bench_scale):
    ratios = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10)
    figure = benchmark.pedantic(
        figure10,
        kwargs={"scale": bench_scale, "queries": SWEEP_QUERIES, "deletion_ratios": ratios},
        rounds=1,
        iterations=1,
    )
    save_result("figure10_deletions", figure.render())

    for query, points in figure.series.items():
        assert set(points) == set(ratios)
        baseline = points[0.0]
        heaviest = points[0.10]
        if baseline <= 0:
            continue
        # deletions cost something but do not blow latency up by an order of
        # magnitude (the overhead flattens, as in the paper)
        assert heaviest < baseline * 20
