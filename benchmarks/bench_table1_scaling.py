"""Table 1 — empirical check of the amortized-cost scaling.

Table 1 of the paper states the amortized per-tuple cost of the algorithms:
O(n·k²) for insertions under both semantics, where n is the number of
vertices in the window.  We cannot measure an asymptotic bound, but we can
check its observable consequence: the mean per-tuple latency grows with the
window size (which controls n) and does not explode with k.
"""

from __future__ import annotations

from repro.experiments.tables import render_table1, table1_complexity_check


def test_table1_insertion_cost_scales_with_window(benchmark, save_result, bench_scale):
    rows = benchmark.pedantic(
        table1_complexity_check,
        kwargs={"scale": bench_scale, "queries": ("Q1", "Q2", "Q7"), "window_multipliers": (0.5, 1.0, 2.0)},
        rounds=1,
        iterations=1,
    )
    save_result("table1_scaling", render_table1(rows))

    by_query = {}
    for row in rows:
        by_query.setdefault(row.query_name, []).append(row)
    for query, query_rows in by_query.items():
        query_rows.sort(key=lambda row: row.window_size)
        smallest, largest = query_rows[0], query_rows[-1]
        # more window content => at least comparable (usually higher) cost
        assert largest.mean_latency_us >= smallest.mean_latency_us * 0.5, query
        # and the cost never grows absurdly faster than the window itself
        window_growth = largest.window_size / smallest.window_size
        if smallest.mean_latency_us > 0:
            latency_growth = largest.mean_latency_us / smallest.mean_latency_us
            assert latency_growth < window_growth * 25, query
