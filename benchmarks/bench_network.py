"""Network transport — localhost TCP workers vs the multiprocessing backend.

Not a figure of the paper: this benchmark prices the ``tcp`` transport
added by the runtime.  The same multi-query workload flows through the
service twice on the same host: once over the ``multiprocessing`` backend
(frames pickle across OS pipes) and once over the ``tcp`` backend dialing
real ``repro worker --listen`` subprocesses on loopback (frames cross the
tagged binary codec, CRC framing and kernel sockets).  Both sides run
their shards in separate OS processes, so core count cancels out of the
record's headline::

    tcp_relative_throughput = tcp edges/s / multiprocessing edges/s

and what remains is purely the wire: codec + CRC + socket syscalls vs
pickle + pipes.  Both runs must produce exactly the same result triples.
The gate in ``check_regression.py`` holds an absolute floor on the ratio
plus the usual relative-drop tolerance against the committed
``results/BENCH_network.json``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

SHARDS = 2

#: Queries over disjoint label groups, the shape sharding helps most.
QUERIES = {
    "q-a": "a1 a2*",
    "q-b": "b1+ b2",
}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (12_000, 60),
    "medium": (40_000, 120),
}


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    labels = ("a1", "a2", "b1", "b2", "noise1", "noise2")
    generator = UniformStreamGenerator(num_vertices=150, labels=labels, edges_per_timestamp=8, seed=13)
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=13)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def start_worker_process():
    """Launch one ``repro worker --listen 127.0.0.1:0``; returns (proc, address).

    The bound address is parsed from the worker's first stdout line — the
    same race-free ephemeral-port contract the CI distributed-smoke uses.
    """
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()  # "worker listening on HOST:PORT"
    address = line.strip().rpartition(" ")[2]
    if ":" not in address:
        proc.kill()
        raise RuntimeError(f"worker subprocess printed {line!r} instead of its address")
    return proc, address


def run_service(stream, window, config):
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    started = time.perf_counter()
    with service:
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
        triples = {name: service.result_triples(name) for name in QUERIES}
    return elapsed, triples


def network_throughput(scale: str):
    stream, window = build_workload(scale)

    mp_config = RuntimeConfig(
        shards=SHARDS, batch_size=256, sharding="label_affinity", backend="multiprocessing"
    )
    mp_seconds, expected = run_service(stream, window, mp_config)

    workers = [start_worker_process() for _ in range(SHARDS)]
    try:
        addresses = tuple(address for _, address in workers)
        tcp_config = RuntimeConfig(
            shards=SHARDS,
            batch_size=256,
            sharding="label_affinity",
            backend="tcp",
            worker_addresses=addresses,
        )
        tcp_seconds, tcp_triples = run_service(stream, window, tcp_config)
    finally:
        for proc, _ in workers:
            proc.terminate()
        for proc, _ in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    assert tcp_triples == expected, "tcp transport diverged from the multiprocessing backend"

    return {
        "num_tuples": len(stream),
        "multiprocessing_eps": len(stream) / mp_seconds,
        "tcp_eps": len(stream) / tcp_seconds,
        "multiprocessing_seconds": mp_seconds,
        "tcp_seconds": tcp_seconds,
    }


def render(measured) -> str:
    ratio = measured["tcp_eps"] / measured["multiprocessing_eps"]
    lines = [
        f"Network transport — {measured['num_tuples']} tuples, "
        f"{len(QUERIES)} queries, {SHARDS} shards",
        f"{'backend':<26} {'seconds':>8} {'edges/s':>12}",
        f"{'multiprocessing':<26} {measured['multiprocessing_seconds']:>8.2f} "
        f"{measured['multiprocessing_eps']:>12,.0f}",
        f"{'tcp (loopback workers)':<26} {measured['tcp_seconds']:>8.2f} "
        f"{measured['tcp_eps']:>12,.0f}",
        f"tcp relative throughput: {ratio:.2f}x of multiprocessing",
    ]
    return "\n".join(lines)


def write_json(path, scale, measured) -> None:
    """Emit the machine-readable trajectory record (BENCH_network.json)."""
    record = {
        "benchmark": "network",
        "scale": scale,
        "num_tuples": measured["num_tuples"],
        "queries": list(QUERIES),
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "multiprocessing_eps": measured["multiprocessing_eps"],
        "tcp_eps": measured["tcp_eps"],
        "tcp_relative_throughput": measured["tcp_eps"] / measured["multiprocessing_eps"],
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_network_throughput(benchmark, save_result, results_dir, bench_scale):
    measured = benchmark.pedantic(network_throughput, args=(bench_scale,), rounds=1, iterations=1)
    save_result("network", render(measured))
    json_path = results_dir / "BENCH_network.json"
    write_json(json_path, bench_scale, measured)
    print(f"[saved to {json_path}]")

    assert measured["multiprocessing_seconds"] > 0 and measured["tcp_seconds"] > 0
    ratio = measured["tcp_eps"] / measured["multiprocessing_eps"]
    print(f"[tcp vs multiprocessing at {SHARDS} shards: {ratio:.2f}x]")
