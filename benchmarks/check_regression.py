"""Benchmark regression gate: fresh vs committed benchmark records.

CI re-runs ``bench_runtime_scaling.py``, ``bench_rebalancing.py``,
``bench_partitioned_whale.py``, ``bench_durability.py``,
``bench_observability.py``, ``bench_tracing.py``, ``bench_columnar.py``,
``bench_network.py`` and ``bench_replication.py`` on every push to main
and compares the fresh
records against the ones committed in ``results/``.  Raw throughput numbers are useless across machines (a
laptop, a 1-core container and a GitHub runner differ by an order of
magnitude), so every gated number is *hardware-tolerant*: the scaling
record gates on each configuration's ``speedup_vs_baseline`` (service
throughput relative to the single-threaded engine measured in the *same
run*), the rebalancing and partitioned-whale records on
``modeled_parallel_speedup`` (critical-path ratio of two runs on the same
host), and the durability record on ``wal_relative_throughput``
(batch-fsync WAL throughput over no-WAL throughput of the same run pair)
— machine speed cancels out of all of them.  A number regresses when it
drops by more than ``--tolerance`` (default 30%) against the committed
record.  The observability record (``instrumented_relative_throughput``,
instrumented over uninstrumented ingestion of the same run set) also
carries an *absolute floor* of 0.95: instrumentation overhead above 5%
fails the gate regardless of what the committed record says.  The
tracing record carries two absolute floors of the same kind:
``sampled_off_relative_throughput`` must stay above 0.97 (arming the
sampler without sampling is one RNG draw per batch) and
``sampled_1pct_relative_throughput`` above 0.95 (1% head sampling is the
production-realistic configuration) — both relative to the untraced
baseline of the same run set, with the widened relative tolerance of the
network gates because the priced effect is a few percent while
same-host scheduler noise swings runs by more than that.  The
columnar record carries two absolute floors of its own:
``columnar_vs_scalar_speedup`` must stay above 1.1x (the batched path
must remain a win over per-tuple dispatch — see ``bench_columnar.py``
for why the honest ceiling is ~1.5x, not higher) and
``pure_vs_scalar_speedup`` above 0.9x (the no-numpy fallback must not
land meaningfully below the scalar path it replaces).  The network
record (``tcp_relative_throughput``, loopback-TCP-worker over
multiprocessing ingestion of the same run pair) carries an absolute
floor of 0.3 — the socket transport must stay within a small factor of
the pipe transport — but a deliberately *widened* relative tolerance,
because subprocess scheduling noise on small hosts swings that ratio by
far more than a real codec regression would.  The replication record
(``replication_relative_throughput``, hot-standby-armed over
*evaluation-matched* bare tcp ingestion: the baseline registers every
query twice, so both runs carry the standby's duplicate evaluation and
the ratio prices only the replication wire — see
``bench_replication.py``) carries an absolute floor of 0.85 — shipping
the record log may not cost more than 15% of ingestion — with the same
widened relative tolerance, for the same reason.

Runnable locally after a benchmark run::

    PYTHONPATH=src REPRO_BENCH_SCALE=small python -m pytest benchmarks/bench_runtime_scaling.py -q
    python benchmarks/check_regression.py

By default the baseline is the committed record (``git show
HEAD:results/BENCH_runtime_scaling.json``) and the fresh record is the
working-tree file the benchmark just overwrote.  Pass ``--baseline PATH``
to compare against a saved file instead.

Tolerances and caveats (why this gate is deliberately loose):

* configurations present in only one record are reported but never fail
  the gate (shard counts and backends may change across PRs);
* a missing baseline (first run on a branch that never committed one)
  passes with a notice;
* the multiprocessing-vs-threading ratio depends on the host's core
  count, so only per-configuration *relative* drops gate, never absolute
  numbers or cross-backend ratios.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

DEFAULT_RESULT = Path("results") / "BENCH_runtime_scaling.json"
REBALANCING_RESULT = Path("results") / "BENCH_rebalancing.json"
PARTITIONED_WHALE_RESULT = Path("results") / "BENCH_partitioned_whale.json"
DURABILITY_RESULT = Path("results") / "BENCH_durability.json"
OBSERVABILITY_RESULT = Path("results") / "BENCH_observability.json"
TRACING_RESULT = Path("results") / "BENCH_tracing.json"
COLUMNAR_RESULT = Path("results") / "BENCH_columnar.json"
NETWORK_RESULT = Path("results") / "BENCH_network.json"
REPLICATION_RESULT = Path("results") / "BENCH_replication.json"

#: Absolute floor on the observability record's headline: instrumented
#: ingestion must keep at least this fraction of uninstrumented throughput.
OBSERVABILITY_FLOOR = 0.95

#: Absolute floors on the tracing record: an armed-but-never-sampling
#: tracer must keep 97% of untraced throughput, 1% head sampling 95%.
TRACING_SAMPLED_OFF_FLOOR = 0.97
TRACING_SAMPLED_FLOOR = 0.95

#: Absolute floors on the columnar record: the numpy fast path must beat
#: per-tuple scalar dispatch, and the pure-Python fallback must not land
#: meaningfully below it.
COLUMNAR_FLOOR = 1.1
COLUMNAR_PURE_FLOOR = 0.9

#: Absolute floor on the network record: loopback tcp workers must keep at
#: least this fraction of the multiprocessing backend's throughput.
NETWORK_FLOOR = 0.3

#: The network ratio is same-host but cross-*process-pair*: on 1-2 core
#: hosts the scheduler swings it by +-2x between runs, so its relative
#: gate is never tightened below this.
NETWORK_MIN_TOLERANCE = 0.60

#: Absolute floor on the replication record: ingestion with a hot standby
#: armed per shard must keep at least this fraction of the
#: evaluation-matched bare-tcp baseline (shipping the record log may not
#: cost more than 15%; the duplicated evaluation itself is normalized
#: out — see ``bench_replication.py``).
REPLICATION_FLOOR = 0.85


def load_fresh(path: Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


def load_committed(relative: Path, repo_root: Path) -> dict | None:
    """The committed version of a record, via ``git show HEAD:<path>``."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{relative.as_posix()}"],
        capture_output=True,
        text=True,
        cwd=repo_root,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def load_baseline(path_or_none: str | None, repo_root: Path) -> dict | None:
    """The scaling baseline: an explicit file, or the committed record.

    Only the implicit git-show default may be absent (first run on a branch
    that never committed a record); an explicitly named baseline file that
    does not exist is an operator error, not a reason to skip the gate.
    """
    if path_or_none is not None:
        path = Path(path_or_none)
        if not path.exists():
            raise SystemExit(f"baseline record {path} not found (explicit --baseline must exist)")
        with path.open() as handle:
            return json.load(handle)
    return load_committed(DEFAULT_RESULT, repo_root)


def config_speedups(record: dict) -> dict:
    """Map ``(backend, shards) -> speedup_vs_baseline`` from a bench record."""
    return {
        (entry["backend"], entry["shards"]): entry["speedup_vs_baseline"]
        for entry in record.get("configs", [])
    }


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return one line per regressed configuration (empty = gate passes)."""
    base = config_speedups(baseline)
    new = config_speedups(fresh)
    regressions = []
    for key in sorted(base.keys() | new.keys()):
        backend, shards = key
        label = f"{backend} x {shards} shard(s)"
        if key not in base:
            print(f"  new configuration {label}: {new[key]:.2f}x (no baseline, not gated)")
            continue
        if key not in new:
            print(f"  configuration {label} disappeared (was {base[key]:.2f}x, not gated)")
            continue
        drop = (base[key] - new[key]) / base[key] if base[key] > 0 else 0.0
        status = "REGRESSED" if drop > tolerance else "ok"
        print(f"  {label}: {base[key]:.2f}x -> {new[key]:.2f}x " f"({-drop:+.0%} relative) {status}")
        if drop > tolerance:
            regressions.append(
                f"{label}: relative speedup fell {drop:.0%} "
                f"({base[key]:.2f}x -> {new[key]:.2f}x), tolerance is {tolerance:.0%}"
            )
    return regressions


def compare_scalar_metric(
    repo_root: Path,
    tolerance: float,
    relative: Path,
    label: str,
    key: str = "modeled_parallel_speedup",
    floor: float | None = None,
) -> list[str]:
    """Gate one record's headline scalar (bigger = better), when present.

    Used for the rebalancing / partitioned-whale records
    (``modeled_parallel_speedup``), the durability record
    (``wal_relative_throughput``), the observability record
    (``instrumented_relative_throughput``), the columnar record
    (``columnar_vs_scalar_speedup`` / ``pure_vs_scalar_speedup``) and the
    network record (``tcp_relative_throughput``) — each
    a same-host ratio of two runs, so machine speed cancels out.  Both sides are optional (the
    benchmark may not have been rerun, or the record may predate this
    gate) — only a present-and-regressed pair fails.  ``floor``
    additionally rejects a fresh value below an absolute minimum even when
    the committed record is equally low (or absent).
    """
    problems: list[str] = []
    fresh_path = repo_root / relative
    if not fresh_path.exists():
        print(f"no fresh {label} record; skipping the {label} gate")
        return []
    new = load_fresh(fresh_path).get(key)
    if floor is not None and new and new < floor:
        print(f"  {label} {key}: {new:.3f}x is below the absolute floor {floor:.2f} FAILED")
        problems.append(f"{label} {key} is {new:.3f}x, below the absolute floor of {floor:.2f}x")
    baseline = load_committed(relative, repo_root)
    if baseline is None:
        print(f"no committed {label} record; skipping the {label} regression gate")
        return problems
    base = baseline.get(key)
    if not base or not new:
        return problems
    drop = (base - new) / base
    status = "REGRESSED" if drop > tolerance else "ok"
    print(f"  {label} {key}: {base:.2f}x -> {new:.2f}x ({-drop:+.0%} relative) {status}")
    if drop > tolerance:
        problems.append(
            f"{label} {key} fell {drop:.0%} "
            f"({base:.2f}x -> {new:.2f}x), tolerance is {tolerance:.0%}"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        default=None,
        help=f"fresh benchmark record (default: {DEFAULT_RESULT})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline record file (default: the committed record via git show HEAD)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum tolerated relative drop in per-config speedup (default 0.30)",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parents[1]
    fresh_path = Path(args.fresh) if args.fresh else repo_root / DEFAULT_RESULT
    if not fresh_path.exists():
        print(f"fresh benchmark record {fresh_path} not found; run the benchmark first")
        return 2
    fresh = load_fresh(fresh_path)
    baseline = load_baseline(args.baseline, repo_root)
    if baseline is None:
        print("no committed baseline record found; nothing to gate against (pass)")
        return 0

    print(
        f"comparing against baseline from {baseline.get('python', '?')} / "
        f"{baseline.get('cpu_count', '?')} cores "
        f"(fresh: {fresh.get('python', '?')} / {fresh.get('cpu_count', '?')} cores)"
    )
    regressions = compare(baseline, fresh, args.tolerance)
    regressions += compare_scalar_metric(repo_root, args.tolerance, REBALANCING_RESULT, "rebalancing")
    regressions += compare_scalar_metric(
        repo_root, args.tolerance, PARTITIONED_WHALE_RESULT, "partitioned-whale"
    )
    regressions += compare_scalar_metric(
        repo_root, args.tolerance, DURABILITY_RESULT, "durability", key="wal_relative_throughput"
    )
    regressions += compare_scalar_metric(
        repo_root,
        args.tolerance,
        OBSERVABILITY_RESULT,
        "observability",
        key="instrumented_relative_throughput",
        floor=OBSERVABILITY_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        max(args.tolerance, NETWORK_MIN_TOLERANCE),
        TRACING_RESULT,
        "tracing-off",
        key="sampled_off_relative_throughput",
        floor=TRACING_SAMPLED_OFF_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        max(args.tolerance, NETWORK_MIN_TOLERANCE),
        TRACING_RESULT,
        "tracing-1pct",
        key="sampled_1pct_relative_throughput",
        floor=TRACING_SAMPLED_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        args.tolerance,
        COLUMNAR_RESULT,
        "columnar",
        key="columnar_vs_scalar_speedup",
        floor=COLUMNAR_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        args.tolerance,
        COLUMNAR_RESULT,
        "columnar-pure",
        key="pure_vs_scalar_speedup",
        floor=COLUMNAR_PURE_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        max(args.tolerance, NETWORK_MIN_TOLERANCE),
        NETWORK_RESULT,
        "network",
        key="tcp_relative_throughput",
        floor=NETWORK_FLOOR,
    )
    regressions += compare_scalar_metric(
        repo_root,
        max(args.tolerance, NETWORK_MIN_TOLERANCE),
        REPLICATION_RESULT,
        "replication",
        key="replication_relative_throughput",
        floor=REPLICATION_FLOOR,
    )
    if regressions:
        print("\nthroughput regression gate FAILED:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
