"""Figure 11 — speed-up of incremental RAPQ over snapshot recomputation.

The paper emulates persistent query evaluation on an RDF store (Virtuoso)
by re-running the query over the window after every tuple, and reports up
to three orders of magnitude speed-up for the incremental algorithm.  We
reproduce the comparison against our own recomputation baseline; the
speed-up at laptop scale is smaller (the windows are much smaller) but the
incremental evaluator must win for every query, and the gap must be large
for the recursive ones.
"""

from __future__ import annotations

import os

from repro.experiments.figures import figure11


def test_figure11_speedup_over_recomputation(benchmark, save_result):
    # The baseline is quadratic-ish in the window, so this experiment uses the
    # tiny scale unless explicitly overridden.
    scale = os.environ.get("REPRO_BENCH_FIG11_SCALE", "tiny")
    figure = benchmark.pedantic(figure11, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_result("figure11_baseline_speedup", figure.render())

    throughput_speedups = figure.get("relative_throughput")
    assert throughput_speedups
    # Incremental evaluation wins for every query...
    for query, speedup in throughput_speedups.items():
        assert speedup > 1.0, f"{query}: incremental should beat recomputation"
    # ... and by a large factor for at least one recursive query.
    assert max(throughput_speedups.values()) > 5.0
