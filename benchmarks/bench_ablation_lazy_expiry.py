"""Ablation — eager (beta = 1) versus lazy (beta > 1) expiration.

The paper uses eager evaluation with lazy expiration so that window
maintenance is decoupled from tuple processing.  This ablation runs the
same workload with per-time-unit expiry and with per-slide expiry and
compares total processing time and the number of expiry passes; the answer
sets must be identical (the slide interval never changes the answers).
"""

from __future__ import annotations

import time

from repro.core.rapq import RAPQEvaluator
from repro.datasets import build_workload
from repro.experiments.workloads import dataset_config
from repro.graph.window import WindowSpec
from repro.metrics.reporting import format_table

QUERIES = ["Q1", "Q7"]


def _run(stream, window, workload):
    timings = {}
    answers = {}
    expiry_runs = {}
    for name in QUERIES:
        evaluator = RAPQEvaluator(workload[name], window)
        started = time.perf_counter()
        for tup in stream:
            evaluator.process(tup)
        timings[name] = time.perf_counter() - started
        answers[name] = evaluator.answer_pairs()
        expiry_runs[name] = int(evaluator.stats["expiry_runs"])
    return timings, answers, expiry_runs


def test_ablation_eager_vs_lazy_expiry(benchmark, save_result, bench_scale):
    config = dataset_config("yago", bench_scale)
    stream = list(config.stream())
    workload = build_workload("yago")
    lazy_window = config.window
    eager_window = WindowSpec(size=config.window.size, slide=1)

    lazy_timings, lazy_answers, lazy_runs = benchmark.pedantic(
        _run, args=(stream, lazy_window, workload), rounds=1, iterations=1
    )
    eager_timings, eager_answers, eager_runs = _run(stream, eager_window, workload)

    rows = []
    for name in QUERIES:
        assert lazy_answers[name] == eager_answers[name], "beta must not change the answers"
        rows.append(
            [
                name,
                round(eager_timings[name], 3),
                eager_runs[name],
                round(lazy_timings[name], 3),
                lazy_runs[name],
            ]
        )
        # lazy expiration runs far fewer maintenance passes
        assert lazy_runs[name] < eager_runs[name]
    save_result(
        "ablation_lazy_expiry",
        format_table(
            ["query", "eager time (s)", "eager expiry runs", "lazy time (s)", "lazy expiry runs"],
            rows,
            title=f"Ablation — eager (beta=1) vs lazy (beta={lazy_window.slide}) expiration (Yago-like)",
        ),
    )
