"""Observability overhead — instrumented (scraped) vs uninstrumented ingestion.

Not a figure of the paper: this benchmark gates the observability layer.
One workload (two persistent queries over a uniform labelled stream with
deletions, 2 shards), two modes:

* **uninstrumented** — ``metrics_port=None``: the registry exists (the
  hot path always increments its counters) but no HTTP server runs and
  no worker snapshots are pulled;
* **instrumented** — ``metrics_port=0`` plus a concurrent scraper thread
  hitting ``/metrics`` every ~100 ms for the whole run, i.e. the full
  production configuration under active scraping.

Both modes run ``_ROUNDS`` times and the best throughput of each is
compared (best-of damps scheduler noise; the two bests ran on the same
host, so machine speed cancels out).  The headline is
``instrumented_relative_throughput`` = instrumented / uninstrumented; the
acceptance bar is >= 0.95 (instrumentation + scraping costs at most 5%).
Both modes must produce identical result streams, so the benchmark
doubles as a parity check.  The JSON record lands in
``results/BENCH_observability.json`` and is gated by
``check_regression.py``.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
import urllib.request

from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

QUERIES = {"chains": "a+", "mixed": "b a*"}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (10_000, 60),
    "medium": (30_000, 120),
}

#: Acceptance bar: instrumented ingestion (under active scraping) keeps
#: at least 95% of the uninstrumented throughput.
_MIN_RELATIVE_THROUGHPUT = 0.95

#: Timed rounds per mode; the best round of each mode is compared.
_ROUNDS = 3

#: Delay between scrapes of the concurrent scraper thread.
_SCRAPE_INTERVAL_SECONDS = 0.1


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    generator = UniformStreamGenerator(
        num_vertices=120, labels=("a", "b", "noise"), edges_per_timestamp=6, seed=47
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=47)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


class _Scraper:
    """Background thread scraping ``/metrics`` for the duration of a run."""

    def __init__(self, port: int) -> None:
        self.url = f"http://127.0.0.1:{port}/metrics"
        self.scrapes = 0
        self.bytes_read = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.is_set():
            with urllib.request.urlopen(self.url, timeout=10) as response:
                body = response.read()
            assert body.startswith(b"# HELP"), "scrape did not return an exposition"
            self.scrapes += 1
            self.bytes_read += len(body)
            self._stop.wait(_SCRAPE_INTERVAL_SECONDS)

    def __enter__(self) -> "_Scraper":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


def run_service(stream, window, instrumented: bool):
    """One timed ingest run; returns (throughput record, result events)."""
    config = RuntimeConfig(shards=2, batch_size=128, metrics_port=0 if instrumented else None)
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    service.start()
    scraper = _Scraper(service.observability_port) if instrumented else None
    try:
        if scraper is not None:
            scraper.__enter__()
        started = time.perf_counter()
        service.ingest(stream)
        service.drain()
        elapsed = time.perf_counter() - started
    finally:
        if scraper is not None:
            scraper.__exit__(None, None, None)
    events = {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in QUERIES
    }
    service.stop()
    record = {"wall_seconds": elapsed, "throughput_eps": len(stream) / elapsed}
    if scraper is not None:
        record["scrapes"] = scraper.scrapes
        record["scrape_bytes"] = scraper.bytes_read
    return record, events


def observability(scale: str):
    """Best-of-``_ROUNDS`` throughput per mode, parity-checked."""
    stream, window = build_workload(scale)
    rounds = {"uninstrumented": [], "instrumented": []}
    expected = None
    for _ in range(_ROUNDS):
        for mode, instrumented in (("uninstrumented", False), ("instrumented", True)):
            record, events = run_service(stream, window, instrumented)
            if expected is None:
                expected = events
            assert events == expected, f"{mode} run diverged from the first run's results"
            rounds[mode].append(record)
    best = {
        mode: max(records, key=lambda record: record["throughput_eps"])
        for mode, records in rounds.items()
    }
    relative = best["instrumented"]["throughput_eps"] / best["uninstrumented"]["throughput_eps"]
    return len(stream), rounds, best, relative


def render_observability(num_tuples, rounds, best, relative) -> str:
    lines = [
        f"Observability — {num_tuples} tuples, {len(QUERIES)} queries, 2 shards, "
        f"best of {_ROUNDS} rounds",
        f"{'mode':<16} {'wall s':>8} {'eps':>12} {'scrapes':>8}",
    ]
    for mode in ("uninstrumented", "instrumented"):
        row = best[mode]
        lines.append(
            f"{mode:<16} {row['wall_seconds']:>8.2f} {row['throughput_eps']:>12,.0f} "
            f"{row.get('scrapes', 0):>8}"
        )
    lines.append(
        f"instrumented relative throughput: {relative:.3f}x "
        f"(gate: >= {_MIN_RELATIVE_THROUGHPUT})"
    )
    return "\n".join(lines)


def write_json(path, scale, num_tuples, rounds, best, relative) -> None:
    """Emit the machine-readable trajectory record (BENCH_observability.json)."""
    record = {
        "benchmark": "observability",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": list(QUERIES),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "rounds": rounds,
        "best": best,
        "instrumented_relative_throughput": relative,
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_observability(benchmark, save_result, results_dir, bench_scale):
    num_tuples, rounds, best, relative = benchmark.pedantic(
        observability, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("observability", render_observability(num_tuples, rounds, best, relative))
    json_path = results_dir / "BENCH_observability.json"
    write_json(json_path, bench_scale, num_tuples, rounds, best, relative)
    print(f"[saved to {json_path}]")

    # Acceptance: full instrumentation under active scraping costs <= 5%.
    assert relative >= _MIN_RELATIVE_THROUGHPUT, (
        f"instrumented ingestion kept only {relative:.3f}x of the uninstrumented "
        f"throughput; the acceptance bar is >= {_MIN_RELATIVE_THROUGHPUT}x (overhead <= 5%)"
    )
    assert best["instrumented"].get("scrapes", 0) > 0, "the scraper thread never scraped"
