"""Figure 9 — throughput versus Delta index size for queries with fixed k.

Fixing the automaton size removes k as a factor; the remaining variation in
throughput is explained by the size of the tree index (the intermediate
results).  Expected shape: a negative correlation between index size and
throughput.
"""

from __future__ import annotations

from repro.experiments.figures import figure9


def test_figure9_throughput_vs_index_size(benchmark, save_result, bench_scale):
    figure = benchmark.pedantic(
        figure9, kwargs={"scale": bench_scale, "num_queries": 30}, rounds=1, iterations=1
    )
    save_result("figure9_throughput_vs_index", figure.render())

    points = figure.get("throughput_eps")
    if len(points) < 3:
        return  # not enough same-k queries in this workload draw to correlate
    sizes = sorted(points)
    smallest_third = [points[s] for s in sizes[: max(1, len(sizes) // 3)]]
    largest_third = [points[s] for s in sizes[-max(1, len(sizes) // 3):]]
    mean = lambda values: sum(values) / len(values)
    # queries with small indexes should, on average, be at least as fast as
    # the ones with the largest indexes
    assert mean(smallest_third) >= mean(largest_third) * 0.8
