"""Tracing overhead — sampled-off and 1%-sampled vs untraced ingestion.

Not a figure of the paper: this benchmark gates the distributed-tracing
layer.  One workload (two persistent queries over a uniform labelled
stream with deletions, 2 shards), three modes:

* **untraced** — ``trace_sample_rate=0.0``: the tracer exists but
  :attr:`Tracer.enabled` is false; the ingest hot path reads one
  attribute and does nothing else.  This is the baseline.
* **sampled-off** — ``trace_sample_rate=1e-7``: the tracer is *armed*
  (every unit of work draws from the sampler RNG) but effectively never
  samples.  Measures the cost of the per-batch coin flip alone.
* **1%-sampled** — ``trace_sample_rate=0.01``: the production-realistic
  configuration; ~1% of shard batches carry a context, open spans on
  both sides of the wire and feed the event-latency histogram.

Each mode runs ``_ROUNDS`` times and the best throughput of each is
compared (best-of damps scheduler noise; all bests ran on the same host,
so machine speed cancels out).  The headlines are
``sampled_off_relative_throughput`` (gate: >= 0.97) and
``sampled_1pct_relative_throughput`` (gate: >= 0.95), both relative to
the untraced baseline.  All modes must produce identical result streams
— the trace context rides beside the batch payload, never inside it —
so the benchmark doubles as the bit-exactness check.  The JSON record
lands in ``results/BENCH_tracing.json`` and is gated by
``check_regression.py``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.datasets.synthetic import UniformStreamGenerator
from repro.graph.stream import with_deletions
from repro.graph.window import WindowSpec
from repro.runtime import RuntimeConfig, StreamingQueryService

QUERIES = {"chains": "a+", "mixed": "b a*"}

_SCALES = {
    "tiny": (4_000, 30),
    "small": (10_000, 60),
    "medium": (30_000, 120),
}

#: An armed-but-never-sampling tracer keeps at least 97% of baseline.
_MIN_SAMPLED_OFF_RELATIVE = 0.97

#: 1% head sampling keeps at least 95% of baseline.
_MIN_SAMPLED_1PCT_RELATIVE = 0.95

#: Timed rounds per mode; the best round of each mode is compared.  The
#: differences under test are small (a coin flip per batch), so more
#: rounds than the other benchmarks to damp scheduler noise.
_ROUNDS = 5

_MODES = (
    ("untraced", 0.0),
    ("sampled_off", 1e-7),
    ("sampled_1pct", 0.01),
)


def build_workload(scale: str):
    num_edges, window_size = _SCALES[scale]
    generator = UniformStreamGenerator(
        num_vertices=120, labels=("a", "b", "noise"), edges_per_timestamp=6, seed=47
    )
    stream = with_deletions(list(generator.generate(num_edges)), 0.05, seed=47)
    return stream, WindowSpec(size=window_size, slide=max(1, window_size // 10))


def run_service(stream, window, sample_rate: float):
    """One timed ingest run; returns (throughput record, result events)."""
    config = RuntimeConfig(shards=2, batch_size=128, trace_sample_rate=sample_rate)
    service = StreamingQueryService(window, config)
    for name, expression in QUERIES.items():
        service.register(name, expression)
    service.start()
    started = time.perf_counter()
    service.ingest(stream)
    service.drain()
    elapsed = time.perf_counter() - started
    summary = service.summary()  # harvests worker spans + latency states
    events = {
        name: [(e.source, e.target, e.timestamp, e.positive) for e in service.results(name).events]
        for name in QUERIES
    }
    spans = len(service.traces_snapshot())
    service.stop()
    record = {
        "wall_seconds": elapsed,
        "throughput_eps": len(stream) / elapsed,
        "spans": spans,
    }
    latency = summary["totals"].get("event_latency")
    if latency is not None:
        record["sampled_tuples"] = latency["count"]
    return record, events


def tracing(scale: str):
    """Best-of-``_ROUNDS`` throughput per mode, parity-checked."""
    stream, window = build_workload(scale)
    rounds = {mode: [] for mode, _ in _MODES}
    expected = None
    run_service(stream, window, 0.0)  # warmup: imports, allocator, caches
    for _ in range(_ROUNDS):
        for mode, sample_rate in _MODES:
            record, events = run_service(stream, window, sample_rate)
            if expected is None:
                expected = events
            assert events == expected, f"{mode} run diverged from the first run's results"
            rounds[mode].append(record)
    best = {
        mode: max(records, key=lambda record: record["throughput_eps"])
        for mode, records in rounds.items()
    }
    baseline = best["untraced"]["throughput_eps"]
    relatives = {
        "sampled_off": best["sampled_off"]["throughput_eps"] / baseline,
        "sampled_1pct": best["sampled_1pct"]["throughput_eps"] / baseline,
    }
    return len(stream), rounds, best, relatives


def render_tracing(num_tuples, rounds, best, relatives) -> str:
    lines = [
        f"Tracing — {num_tuples} tuples, {len(QUERIES)} queries, 2 shards, "
        f"best of {_ROUNDS} rounds",
        f"{'mode':<14} {'wall s':>8} {'eps':>12} {'spans':>7}",
    ]
    for mode, _ in _MODES:
        row = best[mode]
        lines.append(
            f"{mode:<14} {row['wall_seconds']:>8.2f} {row['throughput_eps']:>12,.0f} "
            f"{row['spans']:>7}"
        )
    lines.append(
        f"sampled-off relative throughput: {relatives['sampled_off']:.3f}x "
        f"(gate: >= {_MIN_SAMPLED_OFF_RELATIVE})"
    )
    lines.append(
        f"1%-sampled relative throughput: {relatives['sampled_1pct']:.3f}x "
        f"(gate: >= {_MIN_SAMPLED_1PCT_RELATIVE})"
    )
    return "\n".join(lines)


def write_json(path, scale, num_tuples, rounds, best, relatives) -> None:
    """Emit the machine-readable trajectory record (BENCH_tracing.json)."""
    record = {
        "benchmark": "tracing",
        "scale": scale,
        "num_tuples": num_tuples,
        "queries": list(QUERIES),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "rounds": rounds,
        "best": best,
        "sampled_off_relative_throughput": relatives["sampled_off"],
        "sampled_1pct_relative_throughput": relatives["sampled_1pct"],
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_tracing(benchmark, save_result, results_dir, bench_scale):
    num_tuples, rounds, best, relatives = benchmark.pedantic(
        tracing, args=(bench_scale,), rounds=1, iterations=1
    )
    save_result("tracing", render_tracing(num_tuples, rounds, best, relatives))
    json_path = results_dir / "BENCH_tracing.json"
    write_json(json_path, bench_scale, num_tuples, rounds, best, relatives)
    print(f"[saved to {json_path}]")

    # Acceptance: the armed-but-idle sampler costs <= 3%, 1% sampling <= 5%.
    assert relatives["sampled_off"] >= _MIN_SAMPLED_OFF_RELATIVE, (
        f"armed-but-off tracing kept only {relatives['sampled_off']:.3f}x of the untraced "
        f"throughput; the acceptance bar is >= {_MIN_SAMPLED_OFF_RELATIVE}x"
    )
    assert relatives["sampled_1pct"] >= _MIN_SAMPLED_1PCT_RELATIVE, (
        f"1%-sampled tracing kept only {relatives['sampled_1pct']:.3f}x of the untraced "
        f"throughput; the acceptance bar is >= {_MIN_SAMPLED_1PCT_RELATIVE}x"
    )
    assert best["sampled_1pct"]["spans"] > 0, "1% sampling recorded no spans"
