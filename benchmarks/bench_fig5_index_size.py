"""Figure 5 — size of the Delta tree index on the StackOverflow-like graph.

The paper correlates per-query throughput with the number of spanning trees
and tree nodes maintained by the algorithm.  Expected shape: the queries
with the largest index (multi-star Q3/Q6 and alternation-under-star Q4/Q9)
have the lowest throughput; the index size and the throughput are
negatively correlated.
"""

from __future__ import annotations

from repro.experiments.figures import figure5


def _rank(mapping):
    """Return query names sorted by ascending value."""
    return [name for name, _ in sorted(mapping.items(), key=lambda item: item[1])]


def test_figure5_index_size(benchmark, save_result, bench_scale):
    figure = benchmark.pedantic(figure5, kwargs={"scale": bench_scale}, rounds=1, iterations=1)
    save_result("figure5_index_size", figure.render())

    nodes = figure.get("num_nodes")
    throughput = figure.get("throughput_eps")
    assert set(nodes) == set(throughput)

    # Negative correlation check (Spearman-style): the ordering of queries by
    # index size should be roughly the reverse of the ordering by throughput.
    by_nodes = _rank(nodes)
    by_throughput = _rank(throughput)
    n = len(by_nodes)
    displacement = sum(abs(by_nodes.index(q) - (n - 1 - by_throughput.index(q))) for q in nodes)
    max_displacement = n * n / 2
    assert displacement < max_displacement, "index size should anti-correlate with throughput"
