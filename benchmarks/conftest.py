"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(§5) at laptop scale, times it with pytest-benchmark, and writes the
resulting series to ``results/<name>.txt`` so EXPERIMENTS.md can quote them.

The scale of every experiment can be adjusted with the environment variable
``REPRO_BENCH_SCALE`` (``tiny`` / ``small`` / ``medium``, default
``small``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parents[1]
for path in (_ROOT / "src",):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

RESULTS_DIR = _ROOT / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale for the benchmark run (env: REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory receiving the rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered experiment to results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
