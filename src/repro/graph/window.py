"""Time-based sliding windows (Definitions 4 and 5).

A time-based sliding window ``W`` of size ``|W|`` with slide interval
``beta`` defines, at any time ``tau``, the interval ``(W_b, W_e]`` with
``W_e = floor(tau / beta) * beta`` and ``W_b = W_e - |W|``.

The paper uses *eager evaluation* (results are produced as every tuple
arrives) but *lazy expiration* (expired tuples are physically removed only
at slide boundaries).  :class:`SlidingWindow` encapsulates exactly that
bookkeeping: the engine asks it, for every incoming timestamp, whether a
slide boundary has been crossed and what the current expiry watermark is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["WindowSpec", "SlidingWindow"]


@dataclass(frozen=True)
class WindowSpec:
    """Static description of a sliding window: size ``|W|`` and slide ``beta``."""

    size: int
    slide: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.slide <= 0:
            raise ValueError(f"slide interval must be positive, got {self.slide}")
        if self.slide > self.size:
            raise ValueError(
                f"slide interval ({self.slide}) larger than the window ({self.size}) "
                "would leave gaps in coverage"
            )

    def window_end(self, timestamp: int) -> int:
        """Return ``W_e`` for the window active at ``timestamp``."""
        return (timestamp // self.slide) * self.slide

    def window_begin(self, timestamp: int) -> int:
        """Return ``W_b`` for the window active at ``timestamp``."""
        return self.window_end(timestamp) - self.size

    def contains(self, tuple_timestamp: int, now: int) -> bool:
        """Return ``True`` if a tuple with ``tuple_timestamp`` is inside the window at ``now``."""
        return self.window_begin(now) < tuple_timestamp <= self.window_end(now)

    def expiry_watermark(self, now: int) -> int:
        """Timestamps less than or equal to this value are expired at time ``now``.

        The streaming algorithms use the open lower bound ``tau - |W|``
        directly (a node/edge is valid when ``ts > tau - |W|``); the
        watermark returned here is that bound.
        """
        return now - self.size


@dataclass
class SlidingWindow:
    """Runtime state of a sliding window over a streaming graph.

    The engine calls :meth:`observe` for every incoming tuple timestamp.
    The call returns the list of slide boundaries crossed since the last
    observation (usually empty or a single boundary) so that expiry can be
    triggered lazily, once per slide interval, as in the paper.
    """

    spec: WindowSpec
    _last_slide_end: Optional[int] = field(default=None, init=False)
    _current_time: Optional[int] = field(default=None, init=False)

    @property
    def size(self) -> int:
        """Window length ``|W|`` in time units."""
        return self.spec.size

    @property
    def slide(self) -> int:
        """Slide interval ``beta`` in time units."""
        return self.spec.slide

    @property
    def current_time(self) -> Optional[int]:
        """The most recent timestamp observed, or ``None`` before any tuple."""
        return self._current_time

    def observe(self, timestamp: int) -> List[int]:
        """Advance the window to ``timestamp``.

        Returns the list of slide-boundary times crossed since the previous
        observation.  For each boundary ``b`` the engine should expire every
        element with timestamp ``<= b - |W|``.

        Raises:
            ValueError: if ``timestamp`` moves backwards (the paper assumes
                tuples arrive in timestamp order).
        """
        if self._current_time is not None and timestamp < self._current_time:
            raise ValueError(f"timestamps must be non-decreasing: got {timestamp} after {self._current_time}")
        self._current_time = timestamp
        boundary = self.spec.window_end(timestamp)
        if self._last_slide_end is None:
            self._last_slide_end = boundary
            return []
        crossed: List[int] = []
        while self._last_slide_end + self.spec.slide <= boundary:
            self._last_slide_end += self.spec.slide
            crossed.append(self._last_slide_end)
        return crossed

    def valid(self, tuple_timestamp: int) -> bool:
        """Return ``True`` if ``tuple_timestamp`` is inside the current window."""
        if self._current_time is None:
            return False
        return tuple_timestamp > self.expiry_watermark()

    def expiry_watermark(self) -> int:
        """Return ``tau - |W|`` for the current time ``tau``."""
        if self._current_time is None:
            raise RuntimeError("no tuple has been observed yet")
        return self._current_time - self.spec.size

    def reset(self) -> None:
        """Forget all progress (used when re-running an experiment)."""
        self._last_slide_end = None
        self._current_time = None
