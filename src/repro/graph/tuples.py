"""Streaming graph tuples (sgts) and related value types.

Definition 2 of the paper: a streaming graph tuple is a quadruple
``(tau, e, l, op)`` where ``tau`` is the event timestamp, ``e = (u, v)`` is
the directed edge, ``l`` is the edge label and ``op`` marks the tuple as an
insertion (``+``) or an explicit deletion (``-``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Tuple

__all__ = ["EdgeOp", "StreamingGraphTuple", "sgt", "Vertex", "Label"]

# Vertices and labels are arbitrary hashable values (typically str or int).
Vertex = Hashable
Label = str


class EdgeOp(enum.Enum):
    """Operation carried by a streaming graph tuple."""

    INSERT = "+"
    DELETE = "-"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class StreamingGraphTuple:
    """A single element of a streaming graph (Definition 2).

    Attributes:
        timestamp: event (application) timestamp ``tau`` assigned by the source.
        source: source vertex ``u`` of the directed edge.
        target: target vertex ``v`` of the directed edge.
        label: edge label ``l`` from the graph alphabet.
        op: insertion or explicit deletion.

    The ordering is by timestamp first so that lists of tuples sort into
    stream order; the paper assumes tuples arrive in timestamp order.
    """

    timestamp: int
    source: Vertex
    target: Vertex
    label: Label
    op: EdgeOp = EdgeOp.INSERT

    @property
    def edge(self) -> Tuple[Vertex, Vertex]:
        """Return the directed edge ``(u, v)``."""
        return (self.source, self.target)

    @property
    def is_insert(self) -> bool:
        """Return ``True`` for an insertion tuple."""
        return self.op is EdgeOp.INSERT

    @property
    def is_delete(self) -> bool:
        """Return ``True`` for an explicit-deletion (negative) tuple."""
        return self.op is EdgeOp.DELETE

    def to_wire(self) -> Tuple:
        """Compact wire form ``(tau, u, v, l, op)`` with ``op`` as ``"+"``/``"-"``.

        The wire form is a plain tuple of scalars so it can cross process
        boundaries (or be JSON-encoded) without pickling rich objects; it is
        the batch payload of the runtime's worker protocol
        (:mod:`repro.runtime.protocol`).
        """
        return (self.timestamp, self.source, self.target, self.label, self.op.value)

    @classmethod
    def from_wire(cls, wire: Tuple) -> "StreamingGraphTuple":
        """Rebuild a tuple from its :meth:`to_wire` form."""
        timestamp, source, target, label, op = wire
        return cls(timestamp=timestamp, source=source, target=target, label=label, op=EdgeOp(op))

    def as_delete(self, timestamp: int) -> "StreamingGraphTuple":
        """Return the negative tuple deleting this edge at ``timestamp``.

        The experiments of §5.4 generate explicit deletions by re-inserting a
        previously consumed edge as a negative tuple; this helper builds that
        negative tuple.
        """
        return StreamingGraphTuple(
            timestamp=timestamp,
            source=self.source,
            target=self.target,
            label=self.label,
            op=EdgeOp.DELETE,
        )

    def __str__(self) -> str:
        return f"({self.timestamp}, {self.source}-[{self.label}]->{self.target}, {self.op})"


def sgt(
    timestamp: int,
    source: Vertex,
    target: Vertex,
    label: Label,
    op: EdgeOp = EdgeOp.INSERT,
) -> StreamingGraphTuple:
    """Shorthand constructor for a :class:`StreamingGraphTuple`."""
    return StreamingGraphTuple(timestamp=timestamp, source=source, target=target, label=label, op=op)
