"""Out-of-order arrival handling for streaming graph tuples.

The paper assumes tuples arrive in source-timestamp order and leaves
out-of-order delivery as future work.  This module provides the standard
stream-processing remedy — a bounded reordering buffer driven by a
*watermark* — so that slightly disordered inputs (e.g. from parallel
collectors) can still be fed to the evaluators, which require
non-decreasing timestamps.

:class:`ReorderingBuffer` holds incoming tuples in a min-heap keyed by
timestamp and releases a tuple only once the watermark (the maximum
timestamp seen, minus the allowed lateness) has passed it.  Tuples arriving
later than the allowed lateness are either dropped (counted) or raised as
errors, depending on the configured policy.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import StreamOrderError
from .tuples import StreamingGraphTuple

__all__ = ["ReorderingBuffer", "reorder_stream"]


class ReorderingBuffer:
    """Bounded reordering buffer for almost-ordered streams.

    Args:
        max_lateness: how far (in time units) a tuple may lag behind the
            maximum timestamp observed so far and still be accepted.
        late_policy: ``"drop"`` silently discards tuples older than the
            watermark (counting them in :attr:`late_dropped`), ``"raise"``
            raises :class:`~repro.errors.StreamOrderError` instead.
    """

    def __init__(self, max_lateness: int, late_policy: str = "drop") -> None:
        if max_lateness < 0:
            raise ValueError(f"max_lateness must be non-negative, got {max_lateness}")
        if late_policy not in {"drop", "raise"}:
            raise ValueError(f"late_policy must be 'drop' or 'raise', got {late_policy!r}")
        self.max_lateness = max_lateness
        self.late_policy = late_policy
        self._heap: List[Tuple[int, int, StreamingGraphTuple]] = []
        self._sequence = 0
        self._max_timestamp: Optional[int] = None
        self._last_released: Optional[int] = None
        self.late_dropped = 0

    # ------------------------------------------------------------------ #
    # Feeding and draining
    # ------------------------------------------------------------------ #

    @property
    def watermark(self) -> Optional[int]:
        """Timestamps at or below this value are ready for release."""
        if self._max_timestamp is None:
            return None
        return self._max_timestamp - self.max_lateness

    def push(self, tup: StreamingGraphTuple) -> List[StreamingGraphTuple]:
        """Accept one (possibly out-of-order) tuple; return tuples now releasable."""
        if self._last_released is not None and tup.timestamp < self._last_released:
            if self.late_policy == "raise":
                raise StreamOrderError(
                    f"tuple at t={tup.timestamp} arrived after the buffer "
                    f"already released t={self._last_released}"
                )
            self.late_dropped += 1
            return self._release()
        heapq.heappush(self._heap, (tup.timestamp, self._sequence, tup))
        self._sequence += 1
        if self._max_timestamp is None or tup.timestamp > self._max_timestamp:
            self._max_timestamp = tup.timestamp
        return self._release()

    def _release(self) -> List[StreamingGraphTuple]:
        released: List[StreamingGraphTuple] = []
        watermark = self.watermark
        if watermark is None:
            return released
        while self._heap and self._heap[0][0] <= watermark:
            _, _, tup = heapq.heappop(self._heap)
            released.append(tup)
            self._last_released = tup.timestamp
        return released

    def flush(self) -> List[StreamingGraphTuple]:
        """Release everything still buffered (end of stream)."""
        released: List[StreamingGraphTuple] = []
        while self._heap:
            _, _, tup = heapq.heappop(self._heap)
            released.append(tup)
            self._last_released = tup.timestamp
        return released

    def __len__(self) -> int:
        return len(self._heap)


def reorder_stream(
    tuples: Iterable[StreamingGraphTuple],
    max_lateness: int,
    late_policy: str = "drop",
) -> Iterator[StreamingGraphTuple]:
    """Yield ``tuples`` in non-decreasing timestamp order using a reordering buffer.

    This is the convenience form used to adapt an almost-ordered source for
    the evaluators::

        evaluator.process_stream(reorder_stream(noisy_source, max_lateness=10))
    """
    buffer = ReorderingBuffer(max_lateness=max_lateness, late_policy=late_policy)
    for tup in tuples:
        yield from buffer.push(tup)
    yield from buffer.flush()
