"""The snapshot graph ``G_{W,tau}`` of a sliding window.

Definition 5 of the paper: the contents of the window at time ``tau``
define a snapshot graph whose edges are the edges appearing in window
tuples and whose vertices are the endpoints of those edges.

:class:`SnapshotGraph` is the in-memory representation of that snapshot.
It stores, for every labelled directed edge, the timestamp of its most
recent occurrence in the window, and maintains both forward and backward
adjacency so that the streaming algorithms can

* iterate over outgoing edges of a vertex during ``Insert`` / ``Extend``;
* iterate over incoming edges of a vertex during expiry reconnection;
* drop all edges older than the window watermark in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .tuples import Label, StreamingGraphTuple, Vertex

__all__ = ["SnapshotGraph", "LabeledEdge"]


@dataclass(frozen=True)
class LabeledEdge:
    """A labelled, timestamped edge of the snapshot graph."""

    source: Vertex
    target: Vertex
    label: Label
    timestamp: int

    def __str__(self) -> str:
        return f"{self.source}-[{self.label}@{self.timestamp}]->{self.target}"


class SnapshotGraph:
    """Window content ``G_{W,tau}`` with label-indexed adjacency.

    Re-inserting an edge that is already present refreshes its timestamp to
    the larger of the two (the newest occurrence keeps the edge alive the
    longest, matching the multiset window semantics where only the most
    recent occurrence matters for expiry).
    """

    def __init__(self) -> None:
        # forward adjacency: u -> (v, label) -> timestamp
        self._out: Dict[Vertex, Dict[Tuple[Vertex, Label], int]] = {}
        # backward adjacency: v -> (u, label) -> timestamp
        self._in: Dict[Vertex, Dict[Tuple[Vertex, Label], int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, source: Vertex, target: Vertex, label: Label, timestamp: int) -> bool:
        """Insert (or refresh) the edge; return ``True`` if it is new."""
        out_edges = self._out.setdefault(source, {})
        key = (target, label)
        is_new = key not in out_edges
        if is_new:
            self._num_edges += 1
            out_edges[key] = timestamp
            self._in.setdefault(target, {})[(source, label)] = timestamp
        else:
            refreshed = max(out_edges[key], timestamp)
            out_edges[key] = refreshed
            self._in[target][(source, label)] = refreshed
        return is_new

    def insert_tuple(self, tup: StreamingGraphTuple) -> bool:
        """Insert the edge carried by an insertion tuple."""
        return self.insert(tup.source, tup.target, tup.label, tup.timestamp)

    def delete(self, source: Vertex, target: Vertex, label: Label) -> bool:
        """Remove the edge; return ``True`` if it was present."""
        out_edges = self._out.get(source)
        if not out_edges or (target, label) not in out_edges:
            return False
        del out_edges[(target, label)]
        if not out_edges:
            del self._out[source]
        in_edges = self._in[target]
        del in_edges[(source, label)]
        if not in_edges:
            del self._in[target]
        self._num_edges -= 1
        return True

    def expire(self, watermark: int) -> List[LabeledEdge]:
        """Remove every edge with ``timestamp <= watermark``; return them.

        This implements the window slide: edges whose timestamp falls outside
        ``(tau - |W|, tau]`` leave the snapshot.
        """
        expired: List[LabeledEdge] = []
        for source in list(self._out.keys()):
            out_edges = self._out[source]
            stale = [
                (target, label)
                for (target, label), timestamp in out_edges.items()
                if timestamp <= watermark
            ]
            for target, label in stale:
                expired.append(LabeledEdge(source, target, label, out_edges[(target, label)]))
                self.delete(source, target, label)
        return expired

    def clear(self) -> None:
        """Remove all edges."""
        self._out.clear()
        self._in.clear()
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def has_edge(self, source: Vertex, target: Vertex, label: Label) -> bool:
        """Return ``True`` if the labelled edge is currently in the window."""
        return (target, label) in self._out.get(source, {})

    def edge_timestamp(self, source: Vertex, target: Vertex, label: Label) -> Optional[int]:
        """Return the timestamp of the labelled edge, or ``None`` if absent."""
        return self._out.get(source, {}).get((target, label))

    def out_edges(self, source: Vertex) -> Iterator[LabeledEdge]:
        """Yield the outgoing edges of ``source``."""
        for (target, label), timestamp in self._out.get(source, {}).items():
            yield LabeledEdge(source, target, label, timestamp)

    def in_edges(self, target: Vertex) -> Iterator[LabeledEdge]:
        """Yield the incoming edges of ``target``."""
        for (source, label), timestamp in self._in.get(target, {}).items():
            yield LabeledEdge(source, target, label, timestamp)

    def edges(self) -> Iterator[LabeledEdge]:
        """Yield every edge of the snapshot."""
        for source, out_edges in self._out.items():
            for (target, label), timestamp in out_edges.items():
                yield LabeledEdge(source, target, label, timestamp)

    def in_order(self) -> List[Tuple[Vertex, List[Tuple[Vertex, Label]]]]:
        """The backward adjacency in its live iteration order.

        :meth:`in_edges` yields in this order, and expiry reconnection picks
        the first valid parent it sees, so the order is part of the
        evaluator's observable behaviour.  Checkpoints record it (the
        forward ordering is implied by :meth:`edges`) so a restored snapshot
        reconnects exactly like the original — required for the runtime's
        bit-identical live-migration guarantee.
        """
        return [(target, list(in_edges.keys())) for target, in_edges in self._in.items()]

    def restore_in_order(self, entries: List[Tuple[Vertex, List[Tuple[Vertex, Label]]]]) -> None:
        """Rebuild the backward adjacency verbatim from :meth:`in_order` output.

        Timestamps are taken from the (already restored) forward adjacency;
        the entries must describe exactly the edges currently present.

        Raises:
            ValueError: if the entries name an edge the snapshot does not
                hold, or do not cover every edge.
        """
        rebuilt: Dict[Vertex, Dict[Tuple[Vertex, Label], int]] = {}
        covered = 0
        for target, keys in entries:
            inner: Dict[Tuple[Vertex, Label], int] = {}
            for source, label in keys:
                timestamp = self.edge_timestamp(source, target, label)
                if timestamp is None:
                    raise ValueError(
                        f"corrupt checkpoint: backward adjacency names the absent edge "
                        f"{source!r}-[{label!r}]->{target!r}"
                    )
                inner[(source, label)] = timestamp
            covered += len(inner)
            rebuilt[target] = inner
        if covered != self._num_edges:
            raise ValueError(
                f"corrupt checkpoint: backward adjacency covers {covered} edges, "
                f"snapshot holds {self._num_edges}"
            )
        self._in = rebuilt

    def vertices(self) -> Set[Vertex]:
        """Return the set of vertices that are an endpoint of some edge."""
        return set(self._out.keys()) | set(self._in.keys())

    def labels(self) -> Set[Label]:
        """Return the set of labels currently present in the window."""
        return {label for out_edges in self._out.values() for (_, label) in out_edges.keys()}

    @property
    def num_edges(self) -> int:
        """Number of distinct labelled edges in the window."""
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        """Number of vertices that are an endpoint of some edge."""
        return len(self.vertices())

    def __contains__(self, edge: Tuple[Vertex, Vertex, Label]) -> bool:
        source, target, label = edge
        return self.has_edge(source, target, label)

    def __len__(self) -> int:
        return self._num_edges

    def __str__(self) -> str:
        return f"SnapshotGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
