"""Streaming graph substrate: tuples, streams, window snapshots and windows."""

from .ordering import ReorderingBuffer, reorder_stream
from .snapshot import LabeledEdge, SnapshotGraph
from .stream import (
    GeneratorStream,
    GraphStream,
    ListStream,
    iter_csv,
    merge_by_timestamp,
    merge_streams,
    read_csv,
    with_deletions,
    write_csv,
)
from .tuples import EdgeOp, Label, StreamingGraphTuple, Vertex, sgt
from .window import SlidingWindow, WindowSpec

__all__ = [
    "EdgeOp",
    "GeneratorStream",
    "GraphStream",
    "Label",
    "LabeledEdge",
    "ListStream",
    "ReorderingBuffer",
    "SlidingWindow",
    "SnapshotGraph",
    "StreamingGraphTuple",
    "Vertex",
    "WindowSpec",
    "iter_csv",
    "merge_by_timestamp",
    "merge_streams",
    "read_csv",
    "reorder_stream",
    "sgt",
    "with_deletions",
    "write_csv",
]
