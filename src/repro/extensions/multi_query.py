"""Multi-query optimization: shared window state across persistent RPQs.

The paper's second future-work item is "to investigate multi-query
optimization techniques to share computation across multiple persistent
RPQs".  This module implements the first and most effective level of
sharing: all registered queries share a **single window snapshot graph**,
so the window content is stored and maintained (inserted, deleted, expired)
exactly once instead of once per query.  Each query keeps its own Delta
tree index, which is inherently query-specific.

On top of snapshot sharing, the engine also shares **query compilation**:
two queries with the same expression reuse one
:class:`~repro.regex.analysis.QueryAnalysis`, and tuples whose label is
relevant to no registered query are dropped once, before touching any
evaluator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.rapq import RAPQEvaluator
from ..core.rspq import RSPQEvaluator
from ..core.results import ResultStream
from ..graph.snapshot import SnapshotGraph
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze

__all__ = ["SharedSnapshotEngine"]


class SharedSnapshotEngine:
    """Evaluate several persistent RPQs over one shared window snapshot.

    The public surface mirrors :class:`~repro.core.engine.StreamingRPQEngine`
    (register / process / answer_pairs), but the window content is stored
    once, which both reduces memory and removes redundant per-query snapshot
    maintenance.

    Only the incremental evaluators share state; the recomputation baseline
    is intentionally not supported here.
    """

    def __init__(self, window: WindowSpec) -> None:
        self.window = window
        self.snapshot = SnapshotGraph()
        self._evaluators: Dict[str, Union[RAPQEvaluator, RSPQEvaluator]] = {}
        self._analyses: Dict[str, QueryAnalysis] = {}
        self._alphabet: Set[str] = set()
        self._current_time: Optional[int] = None
        self._last_expiry_boundary: Optional[int] = None
        self.stats: Dict[str, float] = {
            "tuples_seen": 0,
            "tuples_dropped_globally": 0,
            "snapshot_expiries": 0,
        }

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        query: Union[str, QueryAnalysis],
        semantics: str = "arbitrary",
        max_nodes_per_tree: Optional[int] = None,
    ) -> Union[RAPQEvaluator, RSPQEvaluator]:
        """Register a query under ``name`` and return its evaluator."""
        if name in self._evaluators:
            raise ValueError(f"a query named {name!r} is already registered")
        expression_key = str(query.expression) if isinstance(query, QueryAnalysis) else str(query)
        analysis = self._analyses.get(expression_key)
        if analysis is None:
            analysis = query if isinstance(query, QueryAnalysis) else analyze(query)
            self._analyses[expression_key] = analysis
        if semantics == "arbitrary":
            evaluator: Union[RAPQEvaluator, RSPQEvaluator] = RAPQEvaluator(
                analysis, self.window, snapshot=self.snapshot, manage_snapshot=False
            )
        elif semantics == "simple":
            evaluator = RSPQEvaluator(
                analysis,
                self.window,
                max_nodes_per_tree=max_nodes_per_tree,
                snapshot=self.snapshot,
                manage_snapshot=False,
            )
        else:
            raise ValueError(
                f"SharedSnapshotEngine supports 'arbitrary' and 'simple' semantics, got {semantics!r}"
            )
        self._evaluators[name] = evaluator
        self._alphabet |= analysis.alphabet
        return evaluator

    def queries(self) -> List[str]:
        """Names of the registered queries."""
        return list(self._evaluators)

    def evaluator(self, name: str) -> Union[RAPQEvaluator, RSPQEvaluator]:
        """Return the evaluator registered under ``name``."""
        try:
            return self._evaluators[name]
        except KeyError:
            raise KeyError(f"no query named {name!r} is registered") from None

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def process(self, tup: StreamingGraphTuple) -> Dict[str, List[Tuple[Vertex, Vertex]]]:
        """Apply one tuple to the shared snapshot and every registered query."""
        self.stats["tuples_seen"] += 1
        self._advance_time(tup.timestamp)
        relevant_anywhere = tup.label in self._alphabet
        if relevant_anywhere:
            if tup.is_delete:
                self.snapshot.delete(tup.source, tup.target, tup.label)
            else:
                self.snapshot.insert_tuple(tup)
        else:
            self.stats["tuples_dropped_globally"] += 1
            return {}
        produced: Dict[str, List[Tuple[Vertex, Vertex]]] = {}
        for name, evaluator in self._evaluators.items():
            pairs = evaluator.process(tup)
            if pairs:
                produced[name] = pairs
        return produced

    def process_stream(self, tuples: Iterable[StreamingGraphTuple]) -> Dict[str, ResultStream]:
        """Process an entire stream and return each query's result stream."""
        for tup in tuples:
            self.process(tup)
        return {name: evaluator.results for name, evaluator in self._evaluators.items()}

    def _advance_time(self, timestamp: int) -> None:
        if self._current_time is not None and timestamp < self._current_time:
            raise ValueError(f"timestamps must be non-decreasing: got {timestamp} after {self._current_time}")
        self._current_time = timestamp
        boundary = self.window.window_end(timestamp)
        if self._last_expiry_boundary is None:
            self._last_expiry_boundary = boundary
            return
        if boundary > self._last_expiry_boundary:
            self._last_expiry_boundary = boundary
            self.snapshot.expire(boundary - self.window.size)
            self.stats["snapshot_expiries"] += 1

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def answer_pairs(self, name: str) -> Set[Tuple[Vertex, Vertex]]:
        """Distinct pairs reported by the query registered under ``name``."""
        return self.evaluator(name).answer_pairs()

    def memory_summary(self) -> Dict[str, int]:
        """Rough memory accounting: shared snapshot size and per-query index sizes."""
        summary = {
            "snapshot_edges": self.snapshot.num_edges,
            "snapshot_vertices": self.snapshot.num_vertices,
        }
        for name, evaluator in self._evaluators.items():
            summary[f"index_nodes[{name}]"] = int(evaluator.index_size().get("nodes", 0))
        return summary
