"""Extensions beyond the paper's core algorithms.

These modules implement the paper's stated future-work directions:

* :mod:`repro.extensions.property_graph` — attribute-based predicates on
  edges (property graph data model);
* :mod:`repro.extensions.multi_query` — multi-query processing with a
  shared window snapshot;

together with the out-of-order handling that lives in
:mod:`repro.graph.ordering` (a substrate concern).
"""

from .multi_query import SharedSnapshotEngine
from .property_graph import (
    EdgePredicate,
    PropertyEdge,
    PropertyGraphEngine,
    PropertyPathQuery,
)

__all__ = [
    "EdgePredicate",
    "PropertyEdge",
    "PropertyGraphEngine",
    "PropertyPathQuery",
    "SharedSnapshotEngine",
]
