"""Property-graph extension: attribute-based predicates on edges.

The paper's first future-work item is "to extend our algorithms with
attribute-based predicates to fully support the popular property graph data
model".  This module provides that extension without touching the core
algorithms, by *label rewriting*:

* a :class:`PropertyEdge` carries, in addition to the usual label, a
  dictionary of edge attributes (e.g. ``{"weight": 3, "since": 2019}``);
* a :class:`PropertyPathQuery` pairs an RPQ with a set of
  :class:`EdgePredicate` constraints, one per label it mentions (e.g.
  "``follows`` edges only count if ``since >= 2018``");
* :class:`PropertyGraphEngine` translates each incoming property edge into a
  plain streaming graph tuple whose label encodes whether the predicate was
  satisfied, and feeds the core evaluators.  An edge failing its predicate
  is rewritten to a reserved label outside every query alphabet, so it can
  never contribute to a match — exactly the semantics of predicate pushdown
  onto the stream.

Because the rewriting is per-query, two queries may constrain the same
label differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..core.engine import make_evaluator
from ..core.results import ResultStream
from ..graph.tuples import EdgeOp, Label, StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze

__all__ = [
    "PropertyEdge",
    "EdgePredicate",
    "PropertyPathQuery",
    "PropertyGraphEngine",
]

#: Reserved label assigned to edges that fail their predicate; it is outside
#: every query alphabet so rewritten edges are simply discarded downstream.
_FILTERED_LABEL = "__filtered__"


@dataclass(frozen=True)
class PropertyEdge:
    """A streaming property-graph edge: an sgt plus an attribute map."""

    timestamp: int
    source: Vertex
    target: Vertex
    label: Label
    properties: Mapping[str, object] = field(default_factory=dict)
    op: EdgeOp = EdgeOp.INSERT

    def to_tuple(self, label: Optional[Label] = None) -> StreamingGraphTuple:
        """Convert to a plain streaming graph tuple (optionally relabelled)."""
        return StreamingGraphTuple(
            timestamp=self.timestamp,
            source=self.source,
            target=self.target,
            label=self.label if label is None else label,
            op=self.op,
        )


@dataclass(frozen=True)
class EdgePredicate:
    """A predicate over the attributes of edges carrying a given label.

    Attributes:
        label: the edge label the predicate applies to.
        condition: callable evaluated on the edge's attribute mapping.
        description: human-readable rendering for reports.
    """

    label: Label
    condition: Callable[[Mapping[str, object]], bool]
    description: str = ""

    def matches(self, edge: PropertyEdge) -> bool:
        """Return ``True`` if the edge satisfies this predicate."""
        if edge.label != self.label:
            return True
        try:
            return bool(self.condition(edge.properties))
        except (KeyError, TypeError):
            # A predicate over missing/ill-typed attributes fails closed.
            return False

    def __str__(self) -> str:
        return self.description or f"predicate on {self.label!r}"


@dataclass
class PropertyPathQuery:
    """An RPQ together with attribute predicates on its labels."""

    expression: Union[str, QueryAnalysis]
    predicates: List[EdgePredicate] = field(default_factory=list)
    semantics: str = "arbitrary"

    def analysis(self) -> QueryAnalysis:
        """Return the compiled query (computing it on first use)."""
        if isinstance(self.expression, QueryAnalysis):
            return self.expression
        return analyze(self.expression)

    def predicate_for(self, label: Label) -> Optional[EdgePredicate]:
        """Return the predicate constraining ``label``, if any."""
        for predicate in self.predicates:
            if predicate.label == label:
                return predicate
        return None


class PropertyGraphEngine:
    """Persistent property-path queries over a streaming property graph.

    Example:
        >>> from repro import WindowSpec
        >>> engine = PropertyGraphEngine(WindowSpec(size=100))
        >>> _ = engine.register(
        ...     "close-friends",
        ...     PropertyPathQuery(
        ...         "follows+",
        ...         predicates=[EdgePredicate("follows", lambda p: p.get("weight", 0) >= 5)],
        ...     ),
        ... )
        >>> _ = engine.process(PropertyEdge(1, "a", "b", "follows", {"weight": 9}))
        >>> _ = engine.process(PropertyEdge(2, "b", "c", "follows", {"weight": 1}))
        >>> engine.answer_pairs("close-friends")
        {('a', 'b')}
    """

    def __init__(self, window: WindowSpec) -> None:
        self.window = window
        self._queries: Dict[str, PropertyPathQuery] = {}
        self._evaluators: Dict[str, object] = {}
        self.edges_processed = 0
        self.edges_filtered: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, name: str, query: PropertyPathQuery):
        """Register a property-path query under ``name``; returns its evaluator."""
        if name in self._queries:
            raise ValueError(f"a query named {name!r} is already registered")
        evaluator = make_evaluator(query.analysis(), self.window, query.semantics)
        self._queries[name] = query
        self._evaluators[name] = evaluator
        self.edges_filtered[name] = 0
        return evaluator

    def deregister(self, name: str) -> None:
        """Remove a registered query."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r} is registered")
        del self._queries[name]
        del self._evaluators[name]
        del self.edges_filtered[name]

    def queries(self) -> List[str]:
        """Names of the registered queries."""
        return list(self._queries)

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def process(self, edge: PropertyEdge) -> Dict[str, List[Tuple[Vertex, Vertex]]]:
        """Feed one property edge to every registered query.

        Returns the newly reported pairs per query (queries with no new
        result are omitted).
        """
        self.edges_processed += 1
        produced: Dict[str, List[Tuple[Vertex, Vertex]]] = {}
        for name, query in self._queries.items():
            predicate = query.predicate_for(edge.label)
            if predicate is not None and not predicate.matches(edge):
                self.edges_filtered[name] += 1
                rewritten = edge.to_tuple(label=_FILTERED_LABEL)
            else:
                rewritten = edge.to_tuple()
            pairs = self._evaluators[name].process(rewritten)
            if pairs:
                produced[name] = pairs
        return produced

    def process_stream(self, edges: Iterable[PropertyEdge]) -> Dict[str, ResultStream]:
        """Process a whole stream of property edges."""
        for edge in edges:
            self.process(edge)
        return {name: evaluator.results for name, evaluator in self._evaluators.items()}

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def answer_pairs(self, name: str) -> Set[Tuple[Vertex, Vertex]]:
        """Distinct pairs reported so far by the query registered under ``name``."""
        try:
            return self._evaluators[name].answer_pairs()
        except KeyError:
            raise KeyError(f"no query named {name!r} is registered") from None

    def results(self, name: str) -> ResultStream:
        """The append-only result stream of a registered query."""
        try:
            return self._evaluators[name].results
        except KeyError:
            raise KeyError(f"no query named {name!r} is registered") from None

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-query summary: results, filtered-edge counts and predicates."""
        report: Dict[str, Dict[str, object]] = {}
        for name, query in self._queries.items():
            report[name] = {
                "results": len(self.answer_pairs(name)),
                "edges_filtered": self.edges_filtered[name],
                "predicates": [str(p) for p in query.predicates],
                "semantics": query.semantics,
            }
        return report
