"""Rebalancing policies: decide which queries should move between shards.

Sharded deployments of long-lived persistent queries skew over time — the
queries listening to hot labels concentrate work on their shard while other
shards idle.  Live migration (:meth:`~repro.runtime.service.StreamingQueryService.migrate`)
is the *mechanism* that fixes a skew; this module is the *policy* side,
kept separate in the spirit of scheduling-vs-execution decomposition: a
:class:`RebalancePolicy` only looks at per-shard load summaries and
proposes :class:`MigrationPlan` moves, it never touches workers or wires.

Load model: the coordinator counts routed tuples per label; a query's
estimated load is the number of routed tuples (since the last rebalance
decision) whose label falls in its alphabet.  This is exact for the work a
shard receives on behalf of that query — every such tuple is delivered to
and filtered by the shard engine — and costs one counter bump per tuple.

Two policies ship:

* ``manual`` — never proposes anything; migrations happen only through
  explicit :meth:`migrate` calls (or the CLI ``migrate`` command).
* ``load_aware`` — greedy pairwise balancing: while the hottest shard
  carries more than ``imbalance_ratio`` times the coldest shard's load, it
  proposes moving the query whose load best narrows the gap.  Queries with
  non-``"arbitrary"`` semantics are pinned (their evaluator state cannot
  be shipped) and count toward their shard's load without being movable.
  When the imbalance is a *whale* — one query so heavy that no move
  narrows the gap, it only relocates the hot spot — the policy proposes a
  :class:`SplitPlan` instead: break the query into root partitions across
  all shards (:meth:`~repro.runtime.service.StreamingQueryService.split`),
  the intra-query data parallelism that migration alone cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from .config import REBALANCE_POLICIES
from .observability.logs import get_logger

_LOG = get_logger("runtime.rebalancer")

__all__ = [
    "MigrationPlan",
    "SplitPlan",
    "RebalancePlan",
    "ShardLoad",
    "RebalancePolicy",
    "ManualPolicy",
    "LoadAwarePolicy",
    "make_rebalance_policy",
]


@dataclass(frozen=True)
class MigrationPlan:
    """One proposed query move, with the policy's stated reason."""

    query: str
    source: int
    target: int
    reason: str

    def __str__(self) -> str:
        return f"{self.query}: shard {self.source} -> {self.target} ({self.reason})"


@dataclass(frozen=True)
class SplitPlan:
    """One proposed whale split: partition a query across ``parts`` shards."""

    query: str
    source: int
    parts: int
    reason: str

    def __str__(self) -> str:
        return f"{self.query}: split shard {self.source} into {self.parts} partitions ({self.reason})"


#: What a policy may propose: move a query (or one partition of one), or
#: split a whale.
RebalancePlan = Union[MigrationPlan, SplitPlan]


@dataclass
class ShardLoad:
    """What a rebalance policy may inspect about one shard.

    Attributes:
        shard_id: position of the shard in the worker list.
        query_loads: estimated load per *migratable* resident query
            (partition members of a split query appear individually under
            their member names, each with its share of the query's load).
        pinned_load: combined load of resident queries that cannot move
            (non-``"arbitrary"`` semantics).
        splittable: the subset of ``query_loads`` keys eligible for a
            :class:`SplitPlan` (unpartitioned ``"arbitrary"`` queries on a
            multi-shard service).
    """

    shard_id: int
    query_loads: Dict[str, float] = field(default_factory=dict)
    pinned_load: float = 0.0
    splittable: Set[str] = field(default_factory=set)

    @property
    def total(self) -> float:
        """Total estimated load of the shard, movable and pinned."""
        return self.pinned_load + sum(self.query_loads.values())


class RebalancePolicy:
    """Strategy proposing query moves and splits from per-shard load summaries."""

    #: Policy name as accepted by :class:`~repro.runtime.RuntimeConfig`.
    name = "abstract"

    def propose(self, shards: Sequence[ShardLoad]) -> List[RebalancePlan]:
        """Return the migrations/splits that should be applied, in order."""
        raise NotImplementedError


class ManualPolicy(RebalancePolicy):
    """Never proposes a move; migration stays an explicit operator action."""

    name = "manual"

    def propose(self, shards: Sequence[ShardLoad]) -> List[RebalancePlan]:
        """Propose nothing, whatever the loads look like."""
        return []


class LoadAwarePolicy(RebalancePolicy):
    """Greedy pairwise balancing of the hottest shard against the coldest.

    While the hottest shard's load exceeds ``imbalance_ratio`` times the
    coldest shard's, the policy proposes moving the query whose load best
    narrows the gap.  When no move can narrow it — the hot shard is
    dominated by a single *whale* at least as heavy as the gap itself, so
    moving it would only swap which shard is hot — the policy proposes
    splitting the heaviest splittable query on the hot shard into one root
    partition per shard instead (at most one split per decision; the next
    decision sees the post-split loads).

    Args:
        imbalance_ratio: rebalancing triggers while the hottest shard's
            load exceeds this multiple of the coldest shard's (a hot shard
            facing an idle one always triggers).
        max_moves: cap on the number of migration proposals per
            :meth:`propose` call; defaults to the number of movable
            queries.
        split_whales: whether to propose :class:`SplitPlan` for whales
            (``True`` by default); with ``False`` the policy reproduces
            the legacy pin-the-whale behaviour.
    """

    name = "load_aware"

    def __init__(
        self,
        imbalance_ratio: float = 1.5,
        max_moves: Optional[int] = None,
        split_whales: bool = True,
    ) -> None:
        if imbalance_ratio <= 1.0:
            raise ValueError(f"imbalance_ratio must be > 1, got {imbalance_ratio}")
        self.imbalance_ratio = imbalance_ratio
        self.max_moves = max_moves
        self.split_whales = split_whales

    def _imbalanced(self, hot: float, cold: float) -> bool:
        if hot <= 0:
            return False
        if cold <= 0:
            return True
        return hot / cold > self.imbalance_ratio

    def propose(self, shards: Sequence[ShardLoad]) -> List[RebalancePlan]:
        """Greedily narrow hot/cold gaps; split the whale when nothing moves."""
        loads = {view.shard_id: view.total for view in shards}
        movable = {view.shard_id: dict(view.query_loads) for view in shards}
        splittable = {view.shard_id: set(view.splittable) for view in shards}
        budget = self.max_moves
        if budget is None:
            budget = sum(len(queries) for queries in movable.values())
        plans: List[RebalancePlan] = []
        moves = 0
        while moves < budget:
            hot = max(loads, key=lambda shard: (loads[shard], -shard))
            cold = min(loads, key=lambda shard: (loads[shard], shard))
            if hot == cold or not self._imbalanced(loads[hot], loads[cold]):
                break
            gap = loads[hot] - loads[cold]
            # Moving load l turns the pair into (hot - l, cold + l): only
            # l < gap improves the pair, and l closest to gap/2 improves it
            # most.  Ties break by name so proposals are deterministic.
            viable = [(name, load) for name, load in movable[hot].items() if 0 < load < gap]
            if not viable:
                # Whale: every movable query on the hot shard is at least
                # as heavy as the gap.  Split the heaviest splittable one
                # across all shards instead of pinning it.
                if self.split_whales and len(shards) > 1:
                    whales = [
                        (load, name)
                        for name, load in movable[hot].items()
                        if load > 0 and name in splittable[hot]
                    ]
                    if whales:
                        load, name = max(whales)
                        plans.append(
                            SplitPlan(
                                query=name,
                                source=hot,
                                parts=len(shards),
                                reason=(
                                    f"load_aware: whale {name!r} carried {load:.0f} of shard "
                                    f"{hot}'s {loads[hot]:.0f} vs shard {cold} at "
                                    f"{loads[cold]:.0f}; no move narrows the gap"
                                ),
                            )
                        )
                break
            name, load = min(viable, key=lambda entry: (abs(gap - 2 * entry[1]), entry[0]))
            plans.append(
                MigrationPlan(
                    query=name,
                    source=hot,
                    target=cold,
                    reason=(
                        f"load_aware: shard {hot} carried {loads[hot]:.0f} "
                        f"vs shard {cold} at {loads[cold]:.0f}"
                    ),
                )
            )
            moves += 1
            loads[hot] -= load
            loads[cold] += load
            del movable[hot][name]
        for plan in plans:
            _LOG.info("rebalance proposal: %s", plan)
        return plans


_POLICIES = {policy.name: policy for policy in (ManualPolicy, LoadAwarePolicy)}
assert set(_POLICIES) == set(REBALANCE_POLICIES)


def make_rebalance_policy(policy: Union[str, RebalancePolicy]) -> RebalancePolicy:
    """Instantiate a rebalance policy from its name (or pass one through)."""
    if isinstance(policy, RebalancePolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown rebalance policy {policy!r}; expected one of {sorted(_POLICIES)}"
        ) from None
