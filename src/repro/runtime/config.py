"""Configuration of the sharded parallel runtime.

:class:`RuntimeConfig` bundles every knob of the execution subsystem:
how many shard workers to run, how tuples are batched into the workers'
bounded queues (batching amortizes queue overhead, the bound provides
backpressure), which concurrency backend drives the workers and which
sharding policy places queries onto shards.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict

__all__ = ["RuntimeConfig", "BACKENDS", "SHARDING_POLICIES"]

#: Concurrency backends implemented by :mod:`repro.runtime.worker`.  The
#: worker API is process-shaped (batches and control messages over a queue,
#: no shared mutable state with the coordinator) so a ``"multiprocessing"``
#: backend can be added without touching the service layer.
BACKENDS = ("threading",)

#: Query-placement policies implemented by :mod:`repro.runtime.router`.
SHARDING_POLICIES = ("round_robin", "hash", "label_affinity")


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of the sharded runtime.

    Attributes:
        shards: number of shard workers, each owning a private engine.
        batch_size: tuples per batch handed to a worker queue; larger
            batches amortize hand-off overhead, smaller ones reduce the
            latency until a tuple's results become visible.
        queue_depth: bound (in batches) of each worker's input queue;
            ``ingest`` blocks when a worker is this far behind
            (backpressure instead of unbounded buffering).
        backend: concurrency backend, one of :data:`BACKENDS`.
        sharding: query-placement policy name, one of
            :data:`SHARDING_POLICIES`.
    """

    shards: int = 2
    batch_size: int = 64
    queue_depth: int = 8
    backend: str = "threading"
    sharding: str = "hash"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        if self.sharding not in SHARDING_POLICIES:
            raise ValueError(
                f"unknown sharding policy {self.sharding!r}; expected one of {SHARDING_POLICIES}"
            )

    def with_shards(self, shards: int) -> "RuntimeConfig":
        """Return a copy of this config with a different shard count."""
        return replace(self, shards=shards)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (used in service checkpoints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "RuntimeConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {field: state[field] for field in cls.__dataclass_fields__ if field in state}
        return cls(**known)
