"""Configuration of the sharded parallel runtime.

:class:`RuntimeConfig` bundles every knob of the execution subsystem:
how many shard workers to run, how tuples are batched into the workers'
bounded queues (batching amortizes queue overhead, the bound provides
backpressure), which concurrency backend drives the workers and which
sharding policy places queries onto shards.

All values are validated at construction time and raise
:class:`~repro.errors.ConfigError` listing the valid choices, so a
misconfiguration fails fast instead of surfacing deep inside the runtime.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "RuntimeConfig",
    "parse_worker_address",
    "BACKENDS",
    "SHARDING_POLICIES",
    "REBALANCE_POLICIES",
    "FSYNC_POLICIES",
    "LOG_LEVELS",
    "LOG_FORMATS",
    "WIRE_FORMATS",
]

#: Concurrency backends implemented by :mod:`repro.runtime.worker`.  All
#: speak the same wire protocol (:mod:`repro.runtime.protocol`); only the
#: transport differs: ``"threading"`` runs workers on daemon threads (GIL
#: bound — wins by label filtering only), ``"multiprocessing"`` in child
#: processes (true CPU parallelism for the paper's CPU-bound algorithms),
#: and ``"tcp"`` dials remote worker processes (``repro worker --listen``)
#: over length-prefixed CRC-checked socket frames
#: (:mod:`repro.runtime.transport_tcp`), requiring ``worker_addresses``.
BACKENDS = ("threading", "multiprocessing", "tcp")


def parse_worker_address(address: str, allow_ephemeral: bool = False) -> Tuple[str, int]:
    """Split a ``host:port`` worker address into its validated pair.

    Lives here (not in the transport module) so config validation and the
    CLI share it without importing socket machinery.  ``allow_ephemeral``
    admits port ``0`` — meaningful only for *listen* addresses
    (``repro worker --listen host:0`` binds an ephemeral port), never for
    the dial-out addresses in ``worker_addresses``.

    Raises:
        ConfigError: the address has no ``:``, an empty host, or a port
            outside the admitted range.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"invalid worker address {address!r}: expected host:port (e.g. 10.0.0.5:7300)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(f"invalid worker address {address!r}: port {port_text!r} is not an integer")
    low = 0 if allow_ephemeral else 1
    if not low <= port <= 65535:
        raise ConfigError(
            f"invalid worker address {address!r}: port must be in [{low}, 65535], got {port}"
        )
    return host, port

#: Query-placement policies implemented by :mod:`repro.runtime.router`.
SHARDING_POLICIES = ("round_robin", "hash", "label_affinity")

#: Rebalancing policies implemented by :mod:`repro.runtime.rebalancer`.
#: ``"manual"`` never moves a query on its own; ``"load_aware"`` proposes
#: live migrations off the hottest shard at drain/interval boundaries.
REBALANCE_POLICIES = ("manual", "load_aware")

#: WAL fsync policies implemented by :mod:`repro.runtime.durability.wal`.
#: Every policy flushes each record to the OS (surviving a killed
#: *process*); they differ in when ``fsync`` pushes records to the device
#: (surviving a crashed *machine*): ``"always"`` fsyncs every record,
#: ``"batch"`` fsyncs at checkpoint/close sync points (group commit),
#: ``"off"`` never fsyncs.
FSYNC_POLICIES = ("always", "batch", "off")

#: Log verbosities accepted by
#: :func:`repro.runtime.observability.configure_logging`.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: Log output formats: human-oriented text lines or one JSON object per
#: record (both carry the operation-ID extras of multi-frame operations).
LOG_FORMATS = ("text", "json")

#: BATCH frame encodings spoken by :mod:`repro.runtime.protocol`.
#: ``"columnar"`` packs each batch into parallel array buffers feeding the
#: engine's vectorized batch path; ``"rows"`` sends one wire tuple per
#: streaming tuple (the legacy form, still used verbatim by WAL replay).
#: Workers sniff the payload, so either side may be older.
WIRE_FORMATS = ("columnar", "rows")


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of the sharded runtime.

    Attributes:
        shards: number of shard workers, each owning a private engine.
        batch_size: tuples per batch handed to a worker queue; larger
            batches amortize hand-off (and, for the multiprocessing
            backend, serialization) overhead, smaller ones reduce the
            latency until a tuple's results become visible.
        queue_depth: bound (in batches) of each worker's input queue;
            ``ingest`` blocks when a worker is this far behind
            (backpressure instead of unbounded buffering).  The ``tcp``
            backend applies the bound on the *worker* side, so the same
            backpressure arrives at the coordinator through TCP flow
            control.
        backend: concurrency backend, one of :data:`BACKENDS`.
        worker_addresses: dial-out ``host:port`` addresses of the remote
            shard workers, one per shard in shard order.  Required by
            (and only valid with) the ``tcp`` backend; each address must
            have a ``repro worker --listen`` process accepting on it.
        standby_addresses: optional hot-standby ``host:port`` addresses,
            one entry per shard in shard order (``None`` entries leave a
            shard unprotected).  Each non-``None`` entry must point at a
            spare ``repro worker --listen`` process distinct from the
            shard's primary; the coordinator streams the shard's record
            log to it as it is written and *promotes* it — no WAL replay
            pause — when the primary becomes unreachable.  Only valid
            with the ``tcp`` backend.  See
            :mod:`repro.runtime.replication` and ``docs/NETWORKING.md``.
        tcp_connect_timeout: seconds one TCP connect attempt (and the
            handshake reply read) may take before it counts as failed.
        tcp_read_timeout: seconds a *mid-frame* read or a zero-progress
            send may stall before the connection is declared dead (an
            idle connection with no frame in flight is legal forever).
        tcp_connect_attempts: connect attempts per dial before raising
            :class:`~repro.errors.WorkerUnavailableError`, spaced by
            exponential backoff.
        tcp_connect_backoff: initial backoff in seconds between connect
            attempts; doubles per attempt (capped at 2s), so the default
            8 attempts x 0.25s ride out a worker that is still starting.
        sharding: query-placement policy name, one of
            :data:`SHARDING_POLICIES`.
        partitions: default number of root partitions per registered
            query (intra-query data parallelism).  ``1`` keeps each query
            a single evaluator on one shard; ``K > 1`` splits every
            registration into ``K`` per-root-partition evaluators spread
            over distinct shards (so it must not exceed ``shards``), each
            receiving the query's full tuple stream but materializing
            only its own spanning trees.  Per-query override:
            ``service.register(..., partitions=K)``.
        rebalance_policy: rebalancing policy name, one of
            :data:`REBALANCE_POLICIES`; non-``"manual"`` policies propose
            live query migrations at drain and interval boundaries.
        rebalance_interval: run the rebalance policy every this many
            ingested tuples (0 = only at drain boundaries).  Requires a
            non-``"manual"`` policy.
        wal_dir: durability directory.  When set, the coordinator
            write-ahead-logs every routed tuple and topology change (one
            log per shard) and checkpoints into this directory, so a
            killed service can be rebuilt by
            :class:`~repro.runtime.durability.RecoveryManager`.  ``None``
            (the default) disables durability entirely.
        wal_fsync: fsync policy of the write-ahead logs, one of
            :data:`FSYNC_POLICIES` (only meaningful with ``wal_dir``).
        wal_segment_bytes: rotate a shard's WAL segment once it exceeds
            this many bytes; smaller segments let checkpointing prune
            the log sooner at the cost of more files.
        checkpoint_interval: take an incremental durability checkpoint
            every this many logged (routed) tuples (0 = only at the final
            checkpoint on ``stop``).  Requires ``wal_dir``; shorter
            intervals bound WAL replay time at the cost of checkpoint
            I/O.
        checkpoint_keep_deltas: how many delta checkpoints may follow a
            base before the next checkpoint is promoted to a fresh full
            base (compacting the chain and pruning WAL segments behind
            it).
        metrics_port: when set, the service starts an HTTP observability
            server on this port exposing ``/metrics`` (Prometheus text)
            and ``/healthz`` (per-shard liveness); ``0`` binds an
            ephemeral port (read it back from
            ``service.observability_port``).  ``None`` (the default)
            disables the endpoint entirely — and with it the periodic
            worker-metrics refresh on the ingest path.
        log_level: runtime log verbosity, one of :data:`LOG_LEVELS`.
            Spawned worker processes configure their own logging from
            this value so coordinator and workers log consistently.
        log_format: log output format, one of :data:`LOG_FORMATS`.
        wire_format: BATCH frame encoding, one of :data:`WIRE_FORMATS`.
            ``"columnar"`` (the default) ships each batch as packed
            parallel arrays that the workers' engines evaluate on the
            vectorized batch path; ``"rows"`` ships per-tuple wire forms.
            Both produce bit-identical results — this is a transport /
            performance knob, not a semantic one.
        trace_sample_rate: probability in ``[0, 1]`` that an ingested
            tuple's batch (and each drain/checkpoint/promotion) starts a
            distributed trace (:mod:`repro.runtime.observability.tracing`).
            ``0.0`` (the default) disables tracing with zero hot-path
            cost; the value ships to every worker inside the config, so
            remote and spawned workers record spans at the same rate.
            Sampling never perturbs the result stream — the trace context
            rides *next to* frame payloads, never inside them.

    Raises:
        ConfigError: when any value is out of range, names an unknown
            backend / policy (the message lists valid choices), or combines
            rebalancing with a single shard (nowhere to move a query to).
    """

    shards: int = 2
    batch_size: int = 64
    queue_depth: int = 8
    backend: str = "threading"
    worker_addresses: Optional[Tuple[str, ...]] = None
    standby_addresses: Optional[Tuple[Optional[str], ...]] = None
    tcp_connect_timeout: float = 5.0
    tcp_read_timeout: float = 30.0
    tcp_connect_attempts: int = 8
    tcp_connect_backoff: float = 0.25
    sharding: str = "hash"
    partitions: int = 1
    rebalance_policy: str = "manual"
    rebalance_interval: int = 0
    wal_dir: Optional[str] = None
    wal_fsync: str = "batch"
    wal_segment_bytes: int = 4_000_000
    checkpoint_interval: int = 0
    checkpoint_keep_deltas: int = 4
    metrics_port: Optional[int] = None
    log_level: str = "warning"
    log_format: str = "text"
    wire_format: str = "columnar"
    trace_sample_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.partitions < 1:
            raise ConfigError(f"partitions must be >= 1, got {self.partitions}")
        if self.partitions > self.shards:
            raise ConfigError(
                f"partitions ({self.partitions}) cannot exceed shards ({self.shards}): "
                f"each root partition of a query runs on its own shard"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise ConfigError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.backend not in BACKENDS:
            raise ConfigError(f"unknown backend {self.backend!r}; valid choices: {', '.join(BACKENDS)}")
        if self.worker_addresses is not None and not isinstance(self.worker_addresses, tuple):
            # Checkpoints round-trip through JSON, which turns the tuple
            # into a list; normalize so to_dict()/from_dict() are exact
            # inverses (the dataclass is frozen, hence object.__setattr__).
            object.__setattr__(self, "worker_addresses", tuple(self.worker_addresses))
        if self.backend == "tcp":
            if not self.worker_addresses:
                raise ConfigError(
                    "the tcp backend requires worker_addresses: one host:port per shard, "
                    "each with a `repro worker --listen` process accepting on it"
                )
            if len(self.worker_addresses) != self.shards:
                raise ConfigError(
                    f"worker_addresses lists {len(self.worker_addresses)} addresses "
                    f"but shards is {self.shards}; the tcp backend needs exactly one "
                    f"host:port per shard, in shard order"
                )
            for address in self.worker_addresses:
                parse_worker_address(address)
        elif self.worker_addresses is not None:
            raise ConfigError(
                f"worker_addresses is only meaningful with backend 'tcp', "
                f"not {self.backend!r} (in-process backends have no address)"
            )
        if self.standby_addresses is not None:
            # Same JSON round-trip normalization as worker_addresses, plus
            # CLI-friendly placeholders: "", "none" and "-" mean "this
            # shard has no standby".
            normalized = tuple(
                None if entry in (None, "", "none", "-") else entry
                for entry in self.standby_addresses
            )
            object.__setattr__(self, "standby_addresses", normalized)
            if self.backend != "tcp":
                raise ConfigError(
                    f"standby_addresses is only meaningful with backend 'tcp', "
                    f"not {self.backend!r} (in-process backends cannot host a standby)"
                )
            if len(normalized) != self.shards:
                raise ConfigError(
                    f"standby_addresses lists {len(normalized)} entries but shards "
                    f"is {self.shards}; replication needs exactly one entry per "
                    f"shard in shard order (use None for an unprotected shard)"
                )
            for shard, address in enumerate(normalized):
                if address is None:
                    continue
                parse_worker_address(address)
                if address == self.worker_addresses[shard]:
                    raise ConfigError(
                        f"standby_addresses[{shard}] is {address!r}, the shard's own "
                        f"primary worker address; a hot standby must live on a "
                        f"different worker process"
                    )
        if self.tcp_connect_timeout <= 0:
            raise ConfigError(f"tcp_connect_timeout must be > 0, got {self.tcp_connect_timeout}")
        if self.tcp_read_timeout <= 0:
            raise ConfigError(f"tcp_read_timeout must be > 0, got {self.tcp_read_timeout}")
        if self.tcp_connect_attempts < 1:
            raise ConfigError(f"tcp_connect_attempts must be >= 1, got {self.tcp_connect_attempts}")
        if self.tcp_connect_backoff < 0:
            raise ConfigError(f"tcp_connect_backoff must be >= 0, got {self.tcp_connect_backoff}")
        if self.sharding not in SHARDING_POLICIES:
            raise ConfigError(
                f"unknown sharding policy {self.sharding!r}; "
                f"valid choices: {', '.join(SHARDING_POLICIES)}"
            )
        if self.rebalance_policy not in REBALANCE_POLICIES:
            raise ConfigError(
                f"unknown rebalance policy {self.rebalance_policy!r}; "
                f"valid choices: {', '.join(REBALANCE_POLICIES)}"
            )
        if self.rebalance_interval < 0:
            raise ConfigError(f"rebalance_interval must be >= 0, got {self.rebalance_interval}")
        if self.rebalance_interval > 0 and self.rebalance_policy == "manual":
            raise ConfigError(
                "rebalance_interval > 0 is meaningless with rebalance_policy "
                f"'manual' (it never proposes a move); valid choices: "
                f"{', '.join(name for name in REBALANCE_POLICIES if name != 'manual')}"
            )
        if self.shards == 1 and (self.rebalance_policy != "manual" or self.rebalance_interval > 0):
            raise ConfigError(
                f"rebalancing is meaningless with shards=1 (there is no other shard "
                f"to migrate a query to); use shards >= 2 or rebalance_policy "
                f"'manual' with rebalance_interval 0"
            )
        if self.wal_fsync not in FSYNC_POLICIES:
            raise ConfigError(
                f"unknown WAL fsync policy {self.wal_fsync!r}; "
                f"valid choices: {', '.join(FSYNC_POLICIES)}"
            )
        if self.wal_segment_bytes < 1:
            raise ConfigError(f"wal_segment_bytes must be >= 1, got {self.wal_segment_bytes}")
        if self.checkpoint_interval < 0:
            raise ConfigError(f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}")
        if self.checkpoint_keep_deltas < 0:
            raise ConfigError(f"checkpoint_keep_deltas must be >= 0, got {self.checkpoint_keep_deltas}")
        if self.checkpoint_interval > 0 and self.wal_dir is None:
            raise ConfigError(
                "checkpoint_interval > 0 requires wal_dir: periodic incremental "
                "checkpoints are part of the durability subsystem and need a "
                "directory to land in"
            )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ConfigError(
                f"metrics_port must be in [0, 65535] (0 = ephemeral) or None, got {self.metrics_port}"
            )
        if self.log_level not in LOG_LEVELS:
            raise ConfigError(
                f"unknown log level {self.log_level!r}; valid choices: {', '.join(LOG_LEVELS)}"
            )
        if self.log_format not in LOG_FORMATS:
            raise ConfigError(
                f"unknown log format {self.log_format!r}; valid choices: {', '.join(LOG_FORMATS)}"
            )
        if self.wire_format not in WIRE_FORMATS:
            raise ConfigError(
                f"unknown wire format {self.wire_format!r}; valid choices: {', '.join(WIRE_FORMATS)}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError(
                f"trace_sample_rate must be within [0.0, 1.0] "
                f"(a head-sampling probability), got {self.trace_sample_rate}"
            )

    def with_shards(self, shards: int) -> "RuntimeConfig":
        """Return a copy of this config with a different shard count."""
        return replace(self, shards=shards)

    def with_backend(
        self, backend: str, worker_addresses: Optional[Tuple[str, ...]] = None
    ) -> "RuntimeConfig":
        """Return a copy of this config with a different worker backend.

        Switching *to* ``tcp`` requires passing ``worker_addresses`` (one
        ``host:port`` per shard); switching *away* from it clears any
        recorded addresses — they belong to the transport, not the
        workload, and a checkpoint restored onto another backend (or onto
        replacement hosts) must not drag stale addresses along.
        ``standby_addresses`` is always cleared: standbys are armed for a
        concrete fleet, and the addresses a checkpoint recorded belong to
        the run that wrote it, not to whatever fleet the restored service
        runs on — re-arm explicitly via ``RuntimeConfig(standby_addresses=...)``
        or :meth:`StreamingQueryService.rearm_standby`.
        """
        if backend != "tcp":
            return replace(self, backend=backend, worker_addresses=None, standby_addresses=None)
        addresses = worker_addresses if worker_addresses is not None else self.worker_addresses
        return replace(
            self,
            backend=backend,
            worker_addresses=tuple(addresses) if addresses else None,
            standby_addresses=None,
        )

    def without_wal(self) -> "RuntimeConfig":
        """Return a copy with durability disabled.

        Recovery builds the interim service with this config so that WAL
        replay does not itself get logged; the caller re-enables
        durability explicitly once the recovered state is safe.
        """
        return replace(self, wal_dir=None, checkpoint_interval=0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (used in service checkpoints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "RuntimeConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {field: state[field] for field in cls.__dataclass_fields__ if field in state}
        return cls(**known)
