"""Typed wire protocol between the runtime coordinator and shard workers.

Every interaction of :class:`~repro.runtime.service.StreamingQueryService`
with a :class:`~repro.runtime.worker.ShardWorker` travels as one of the
frames defined here — plain tuples of scalars, strings and ``bytes``, never
closures or rich engine objects.  Every concurrency backend speaks exactly
this protocol; only the transport differs (``queue.Queue`` for the
``threading`` backend, ``multiprocessing.Queue`` for the
``multiprocessing`` backend, length-prefixed CRC-checked socket frames for
the ``tcp`` backend — :mod:`repro.runtime.transport_tcp`), so shard state
is serializable by construction and a worker can live in another process
or on another machine.

Request frames (coordinator -> worker)
======================================

Two shapes travel on the request queue:

``(BATCH, payload[, trace_ctx])``
    One batch of streaming graph tuples.  Fire-and-forget: no reply; the
    bounded request queue provides backpressure.  The optional trailing
    ``trace_ctx`` element (see **Trace-context extensions** below) is
    present only when the batch carries a sampled tuple; workers that do
    not know it ignore the tail.  Two payload forms are accepted
    (version tolerance — the worker sniffs the first element):

    * **rows** — a tuple of
      :meth:`~repro.graph.tuples.StreamingGraphTuple.to_wire` forms
      ``(tau, u, v, l, op)``.  The legacy form; the durability
      subsystem's write-ahead log replays records in it.
    * **columnar** — the packed form produced by
      :meth:`~repro.core.columnar.ColumnarBatch.to_wire`, recognisable
      by its leading :data:`COLUMNAR_MARKER` string.  Five parallel
      ``array`` buffers (``bytes``) plus per-batch string tables — still
      plain scalars/bytes, but one object per *column* instead of one
      per tuple, feeding the engine's vectorized batch path directly.

``(CONTROL, seq, op, payload)``
    A control call with a monotonically increasing ``seq``; the worker
    answers with a ``REPLY`` or ``ERROR`` frame carrying the same ``seq``.
    Control ops and their payloads:

    ============== ==================================================== ======================
    op             payload                                              reply payload
    ============== ==================================================== ======================
    ``REGISTER``   ``(name, expression, semantics,
                   max_nodes_per_tree, partition)`` — ``partition`` is
                   ``None`` or the ``(index, count)`` root partition
                   this engine-level query implements                   ``None``
    ``RESTORE``    ``(name, semantics, blob)`` — ``blob`` is an
                   :func:`~repro.core.checkpoint.encode_rapq` byte
                   string (evaluator state, bytes in / bytes out;
                   partition membership rides inside the blob)          ``None``
    ``DEREGISTER`` ``name``                                             ``None``
    ``RESULTS``    ``name``                                             tuple of event wire
                                                                        forms ``(tau, x, y,
                                                                        positive)``
    ``PRESULTS``   ``name``                                             ``(events, keys)`` —
                                                                        the event wire forms
                                                                        plus the parallel
                                                                        emission keys needed
                                                                        to merge partition
                                                                        streams exactly
    ``CHECKPOINT`` ``name``                                             ``bytes`` (encoded
                                                                        evaluator)
    ``MIGRATE``    ``name``                                             ``(semantics,
                                                                        partition, blob)`` —
                                                                        the query's shippable
                                                                        form
    ``SUMMARY``    ``None``                                             per-query summary dict
    ``METRICS``    ``None``                                             shard counters dict
    ``DRAIN``      ``None``                                             ``None`` (barrier: the
                                                                        reply proves every
                                                                        earlier batch was
                                                                        processed)
    ``STOP``       ``ship_state`` (bool)                                final shard state
                                                                        (see below) or ``None``
    ============== ==================================================== ======================

    ``MIGRATE`` is the source half of the live-migration exchange: it
    drains the shard up to the frame (control frames are serialized with
    batches), then returns the query's complete evaluator state as an
    order-exact :func:`~repro.core.checkpoint.encode_rapq` blob *without*
    removing the query.  The coordinator ships the blob to the target
    shard in a ``RESTORE`` frame and only then sends ``DEREGISTER`` to the
    source, so a mid-flight failure leaves the query live where it was.
    Only ``"arbitrary"``-semantics evaluators are migratable (the same
    serialization restriction that stops a ``multiprocessing`` worker
    holding RSPQ state from restarting).  The ``partition`` element of the
    reply names the root partition the evaluator implements (``None`` for
    whole queries): live whale-splitting migrates the whole evaluator out,
    splits the blob with :func:`~repro.core.partition.partition_checkpoint`
    and restores each piece on its own shard, and ``PRESULTS`` is how the
    coordinator later fetches each piece's stream *with* the emission keys
    that make the k-way partition merge exact.

    **Operation-ID extensions (version tolerant).**  Multi-frame
    operations (migrate / split / recover) are correlated across the
    coordinator's and the workers' structured logs by an operation ID
    (:func:`~repro.runtime.observability.new_operation_id`).  The ID rides
    the existing frames as optional trailing payload elements rather than
    new ops: ``REGISTER`` and ``RESTORE`` accept one extra trailing
    element (``(name, ..., partition, operation_id)`` /
    ``(name, semantics, blob, operation_id)``), and the name-addressed
    ``DEREGISTER`` / ``MIGRATE`` accept ``(name, operation_id)`` in place
    of the bare name.  Workers unpack by position/shape and ignore what
    they do not know (``payload[:5]`` + optional tail), so an old
    coordinator can drive a new worker and vice versa.  The ``METRICS``
    reply is extended the same way: new keys (``batch_seconds`` histogram
    state, per-``queries`` sub-dicts, ``event_latency`` histogram state,
    a drained ``spans`` list) are added beside the original counters and
    consumers read them with ``.get()``.

    **Trace-context extensions (version tolerant).**  The operation-ID
    slot generalizes to a *trace context* on the data-path frames: a
    ``(trace_id, parent_span_id, stamp_wall)`` triple minted by the
    coordinator's head sampler
    (:mod:`repro.runtime.observability.tracing`).  It rides as

    * an optional third ``BATCH`` element (``(BATCH, payload, ctx)``) —
      never inside the payload bytes, so sampling cannot perturb
      evaluation;
    * the ``DRAIN`` payload (previously always ``None``);
    * a ``(name, ctx)`` pair in place of the bare ``CHECKPOINT`` name;
    * an optional trailing element on the replication session's
      ``REPLICATE`` frame and an operation-id element on ``PROMOTE``
      (:mod:`repro.runtime.replication`).

    Workers receiving a context record their span into the same trace
    (``parent_span_id`` becomes the parent), and close the end-to-end
    event latency against ``stamp_wall`` (the routing-time stamp of the
    sampled tuple).  All slots are optional and shape-checked
    (:func:`~repro.runtime.observability.tracing.parse_context`), so
    mixed-version fleets interoperate.

    ``STOP`` terminates the worker loop after replying.  When
    ``ship_state`` is true (process transport, whose memory dies with the
    child) the reply carries the shard's final state
    ``(metrics, batches, queries)`` where each query entry is
    ``(name, semantics, expression, blob_or_None, events_or_None)`` —
    arbitrary-semantics evaluators ship their full encoded state,
    others ship their result events only.

Response frames (worker -> coordinator)
=======================================

All responses are multiplexed onto one unbounded queue so their relative
order is preserved (two separate queues would not guarantee cross-queue
ordering under ``multiprocessing``):

``(REPLY, seq, payload)``
    Successful completion of the control call ``seq``.

``(ERROR, seq, exc_wire)``
    The control call ``seq`` raised; ``exc_wire`` is the
    :func:`encode_exception` form and is re-raised at the coordinator.
    Control errors do not poison the shard.

``(EVENTS, payload)``
    Newly reported results of one processed batch, ``payload`` a tuple of
    ``(query_name, source, target, timestamp)``.  Emitted only when the
    worker was created with a live-result callback; the coordinator pumps
    these opportunistically and invokes the callback on its own thread.

``(FAILURE, exc_wire)``
    Batch processing raised.  The failure is sticky — the shard's window
    is missing tuples, so the worker discards later batches (releasing
    backpressure) and the coordinator re-raises a
    :class:`~repro.errors.ShardWorkerError` at every subsequent
    interaction.

Encodings
=========

:func:`encode_batch` / :func:`decode_batch` and :func:`encode_events` /
:func:`decode_events` are thin loops over the wire forms defined on
:class:`~repro.graph.tuples.StreamingGraphTuple` and
:class:`~repro.core.results.ResultEvent`.  Exceptions cross the wire as
``(type_name, message)`` via :func:`encode_exception` /
:func:`decode_exception`, reconstructed against the library's exception
registry (falling back to ``RuntimeError`` for unknown types).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .. import errors as _errors
from ..core.columnar.batch import COLUMNAR_MARKER, ColumnarBatch
from ..graph.tuples import StreamingGraphTuple

__all__ = [
    "BATCH",
    "COLUMNAR_MARKER",
    "CONTROL",
    "REGISTER",
    "RESTORE",
    "DEREGISTER",
    "RESULTS",
    "PARTITION_RESULTS",
    "CHECKPOINT",
    "MIGRATE",
    "SUMMARY",
    "METRICS",
    "DRAIN",
    "STOP",
    "REPLY",
    "ERROR",
    "EVENTS",
    "FAILURE",
    "CONTROL_OPS",
    "encode_tuple",
    "decode_tuple",
    "encode_batch",
    "decode_batch",
    "encode_batch_columnar",
    "is_columnar_payload",
    "encode_events",
    "decode_events",
    "encode_exception",
    "decode_exception",
]

# --------------------------------------------------------------------- #
# Frame kinds (request queue)
# --------------------------------------------------------------------- #

#: Data frame: one batch of tuple wire forms.  No reply.
BATCH = "BATCH"
#: Control frame ``(CONTROL, seq, op, payload)``; answered by seq.
CONTROL = "CTRL"

# Control ops ---------------------------------------------------------- #

REGISTER = "REGISTER"
RESTORE = "RESTORE"
DEREGISTER = "DEREGISTER"
RESULTS = "RESULTS"
PARTITION_RESULTS = "PRESULTS"
CHECKPOINT = "CHECKPOINT"
MIGRATE = "MIGRATE"
SUMMARY = "SUMMARY"
METRICS = "METRICS"
DRAIN = "DRAIN"
STOP = "STOP"

#: Every control op a worker must implement.
CONTROL_OPS = (
    REGISTER,
    RESTORE,
    DEREGISTER,
    RESULTS,
    PARTITION_RESULTS,
    CHECKPOINT,
    MIGRATE,
    SUMMARY,
    METRICS,
    DRAIN,
    STOP,
)

# --------------------------------------------------------------------- #
# Frame kinds (response queue)
# --------------------------------------------------------------------- #

REPLY = "REPLY"
ERROR = "ERROR"
EVENTS = "EVENTS"
FAILURE = "FAILURE"

# --------------------------------------------------------------------- #
# Payload encodings
# --------------------------------------------------------------------- #


def encode_tuple(tup: StreamingGraphTuple) -> Tuple:
    """Encode one tuple into its compact wire form ``(tau, u, v, l, op)``.

    The same wire form a ``BATCH`` frame carries; the durability
    subsystem's write-ahead log reuses it record-for-record, so a logged
    tuple replays through exactly the encoding the live path used.
    """
    return tup.to_wire()


def decode_tuple(wire: Tuple) -> StreamingGraphTuple:
    """Decode one tuple wire form (inverse of :func:`encode_tuple`)."""
    return StreamingGraphTuple.from_wire(wire)


def encode_batch(batch: Sequence[StreamingGraphTuple]) -> Tuple[Tuple, ...]:
    """Encode a batch of tuples into their compact wire forms."""
    return tuple(tup.to_wire() for tup in batch)


def decode_batch(payload: Iterable[Tuple]) -> List[StreamingGraphTuple]:
    """Decode a ``BATCH`` payload back into streaming graph tuples.

    Accepts both payload forms: a columnar payload is materialized back
    into tuples (the rows/columnar distinction is a transport choice, not
    a semantic one).
    """
    if is_columnar_payload(payload):
        return list(ColumnarBatch.from_wire(payload).tuples())
    return [StreamingGraphTuple.from_wire(wire) for wire in payload]


def encode_batch_columnar(batch: Sequence[StreamingGraphTuple]) -> Tuple:
    """Encode a batch into the packed columnar wire form.

    One ``bytes`` buffer per column plus per-batch string tables — the
    worker feeds this to the engine's vectorized batch path without ever
    instantiating per-tuple objects for irrelevant tuples.
    """
    return ColumnarBatch.from_tuples(batch).to_wire()


def is_columnar_payload(payload) -> bool:
    """Whether a ``BATCH`` payload is in the packed columnar form."""
    return ColumnarBatch.is_wire(payload)


def encode_events(events: Iterable[Tuple]) -> Tuple[Tuple, ...]:
    """Encode ``(query, source, target, timestamp)`` live-result records."""
    return tuple(events)


def decode_events(payload: Iterable[Tuple]) -> List[Tuple]:
    """Decode an ``EVENTS`` payload (inverse of :func:`encode_events`)."""
    return list(payload)


# Exception registry: library exceptions plus the builtins a worker can
# plausibly raise.  Reconstruction is by type name with a single message
# argument; unknown types degrade to RuntimeError.
_EXCEPTION_TYPES = {
    name: getattr(_errors, name)
    for name in _errors.__all__
    if isinstance(getattr(_errors, name), type)
}
_EXCEPTION_TYPES.update(
    {
        exc.__name__: exc
        for exc in (
            ValueError,
            KeyError,
            TypeError,
            RuntimeError,
            ArithmeticError,
            ZeroDivisionError,
            IndexError,
            AttributeError,
            NotImplementedError,
            OSError,
            MemoryError,
        )
    }
)


def encode_exception(exc: BaseException) -> Tuple[str, str]:
    """Encode an exception as ``(type_name, message)`` for the wire."""
    return (type(exc).__name__, str(exc))


def decode_exception(wire: Tuple[str, str]) -> BaseException:
    """Rebuild an exception from :func:`encode_exception` output.

    The reconstructed exception carries the original message; unknown
    types (or types whose constructor rejects a single message argument)
    come back as ``RuntimeError`` with the type name prefixed so no
    information is lost.
    """
    type_name, message = wire
    exc_type = _EXCEPTION_TYPES.get(type_name)
    if exc_type is not None:
        try:
            return exc_type(message)
        except Exception:  # pragma: no cover - exotic constructor signature
            pass
    return RuntimeError(f"{type_name}: {message}")
