"""The sharded streaming-query service facade.

:class:`StreamingQueryService` glues the runtime pieces together: a
:class:`~repro.runtime.router.StreamRouter` places queries on shards and
decides which shards must see each tuple, :class:`~repro.runtime.worker.ShardWorker`
instances evaluate their resident queries in parallel, and the
:mod:`~repro.runtime.merger` presents the per-shard outputs as one global
timestamp-ordered result stream.

Parallelism is per query by default — every query lives on one shard, fed
in stream order — and optionally *within* a query: a heavy query can be
registered with ``partitions=K`` (or split live with :meth:`split`) into
``K`` root-partition evaluators on distinct shards, whose streams the
coordinator merges back exactly.  Either way the service produces
*exactly* the results the single-threaded
:class:`~repro.core.engine.StreamingRPQEngine` would — the runtime changes
who does the work, never what is computed.

The service never shares Python objects with its workers: every
interaction (registration, batches, result fetches, checkpoints, metrics)
is a typed frame of :mod:`repro.runtime.protocol`, so the same code drives
the ``threading`` and ``multiprocessing`` backends.  Live results flow
back over the workers' response queues and the optional ``on_result``
callback is invoked on the coordinator thread while it pumps them.

With a ``wal_dir`` configured the service is additionally *durable*: the
coordinator write-ahead-logs every routed tuple and topology change (one
log per shard) and takes periodic incremental checkpoints through its
:class:`~repro.runtime.durability.manager.DurabilityManager`, so a
killed process can be rebuilt — bit-identically — by
:class:`~repro.runtime.durability.recovery.RecoveryManager`.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..core.checkpoint import canonical_bytes, decode_state
from ..core.columnar import fastpath_name
from ..core.partition import partition_checkpoint
from ..core.results import ResultEvent, ResultStream
from ..errors import ReplicationError, RuntimeStateError, WorkerUnavailableError
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze
from . import protocol
from .config import RuntimeConfig
from .durability import wal as wal_mod
from .durability.manager import DurabilityManager
from .replication import ReplicationManager
from .merger import TaggedResultEvent, merge_partition_events, merge_result_events
from .observability.logs import get_logger, new_operation_id
from .observability.registry import MetricsRegistry, histogram_quantiles, merge_histogram_states
from .observability.server import ObservabilityServer
from .observability.tracing import Tracer
from .rebalancer import RebalancePlan, ShardLoad, SplitPlan, make_rebalance_policy
from .router import StreamRouter
from .worker import ResultCallback, ShardWorker, create_worker

__all__ = ["StreamingQueryService"]

_LOG = get_logger("runtime.service")

#: Seconds between worker-metric snapshot refreshes on the ingest path
#: (only while the observability server is enabled; each refresh costs one
#: ``METRICS`` control round-trip per shard, which is also a partial drain
#: barrier on that shard's request queue).
_METRICS_REFRESH_SECONDS = 2.0

#: Service checkpoint layout version.  Version 2 added per-partition query
#: entries (one entry per root partition, all sharing the query's name and
#: carrying a ``"partition"`` section inside their state); version-1
#: checkpoints still load.
_SERVICE_FORMAT = 2
_SUPPORTED_SERVICE_FORMATS = (1, 2)


def _member_name(base: str, index: int) -> str:
    """Internal engine-level name of one root partition of ``base``.

    The ``::`` separator is reserved (``register`` refuses base names
    containing it), so member names can never collide with user queries.
    """
    return f"{base}::p{index}"


class StreamingQueryService:
    """Multi-worker execution runtime for persistent RPQs.

    Example:
        >>> from repro import WindowSpec, sgt
        >>> from repro.runtime import RuntimeConfig, StreamingQueryService
        >>> service = StreamingQueryService(WindowSpec(size=10, slide=1),
        ...                                 RuntimeConfig(shards=2, batch_size=2))
        >>> _ = service.register("chains", "follows+")
        >>> with service:
        ...     service.ingest([sgt(1, "a", "b", "follows"),
        ...                     sgt(2, "b", "c", "follows")])
        ...     service.drain()
        ...     pairs = sorted(service.answer_pairs("chains"))
        >>> pairs
        [('a', 'b'), ('a', 'c'), ('b', 'c')]

    Args:
        window: sliding-window specification shared by all queries.
        config: runtime tunables; defaults to :class:`RuntimeConfig()`.
        on_result: optional live callback ``(query, source, target,
            timestamp)`` invoked on the coordinator thread — while it
            pumps worker response queues — for every newly reported pair.
    """

    def __init__(
        self,
        window: WindowSpec,
        config: Optional[RuntimeConfig] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        self.window = window
        self.config = config or RuntimeConfig()
        self._on_result = on_result
        # Observability: every service owns a metrics registry; the HTTP
        # exposition server only exists when config.metrics_port is set.
        self.metrics_registry = MetricsRegistry()
        self._build_metric_families()
        self._obs_server: Optional[ObservabilityServer] = None
        self._heartbeats: Dict[int, float] = {}
        self._last_metrics_refresh = float("-inf")
        # Tracing: the coordinator's tracer owns head sampling (workers
        # only continue contexts that arrive on frames) and merges spans
        # shipped back inside worker METRICS snapshots.  `_trace_pending`
        # maps shard -> (open ingest span, frame context) for the batch
        # currently buffering toward that shard.
        self.tracer = Tracer(self.config.trace_sample_rate, process="coordinator")
        self._trace_pending: Dict[int, Tuple[Dict, Tuple[str, str, float]]] = {}
        self._event_latency_states: Dict[int, Dict] = {}
        self.router = StreamRouter(self.config.shards, self.config.sharding)
        self.workers: List[ShardWorker] = [
            create_worker(shard, window, self.config, on_result=on_result)
            for shard in range(self.config.shards)
        ]
        self._pending: List[List[StreamingGraphTuple]] = [[] for _ in self.workers]
        self._semantics: Dict[str, str] = {}
        # Intra-query data parallelism: a partitioned query is represented
        # by K engine-level "member" evaluators (one root partition each),
        # routed under reserved internal names.  `_partitions` maps the
        # user-facing name to its member names in partition order;
        # `_member_base` is the reverse map.
        self._partitions: Dict[str, List[str]] = {}
        self._member_base: Dict[str, str] = {}
        self._running = False
        self._tuples_ingested = 0
        self._tuples_dropped = 0
        # Rebalancing: the policy proposes live migrations from per-label
        # routed-tuple counts (the observation window resets at every
        # rebalance decision); applied moves are kept for the summary.
        self._rebalancer = make_rebalance_policy(self.config.rebalance_policy)
        self._label_loads: Counter = Counter()
        self._tuples_since_rebalance = 0
        self._migrating: Optional[str] = None
        self.migrations: List[Dict[str, object]] = []
        self.splits: List[Dict[str, object]] = []
        # Durability: when the config names a wal_dir, every routed tuple
        # and topology change is write-ahead-logged and checkpoints land
        # in that directory, so a killed service can be rebuilt by
        # repro.runtime.durability.RecoveryManager.  The manager is inert
        # until start() attaches it.
        self._durability: Optional[DurabilityManager] = None
        if self.config.wal_dir is not None:
            self._durability = DurabilityManager(
                Path(self.config.wal_dir),
                shards=self.config.shards,
                fsync=self.config.wal_fsync,
                segment_bytes=self.config.wal_segment_bytes,
                interval=self.config.checkpoint_interval,
                keep_deltas=self.config.checkpoint_keep_deltas,
                registry=self.metrics_registry,
            )
        # Replication: with standby_addresses configured, every logged
        # record also streams to each shard's hot standby, so a dead tcp
        # worker is *promoted* (repro.runtime.replication) instead of
        # WAL-replayed.  Promotions are recorded in `self.promotions`.
        self._replication: Optional[ReplicationManager] = None
        if self.config.standby_addresses is not None and any(self.config.standby_addresses):
            self._replication = ReplicationManager(window, self.config)
        self.promotions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def _build_metric_families(self) -> None:
        """Create the service's metric families in :attr:`metrics_registry`."""
        registry = self.metrics_registry
        self._m_ingested = registry.counter(
            "repro_ingested_tuples_total", "Tuples ingested by the coordinator"
        )
        self._m_routed = registry.counter(
            "repro_router_tuples_routed_total", "Tuples routed to each shard", ("shard",)
        )
        self._m_dropped = registry.counter(
            "repro_router_tuples_dropped_total", "Tuples relevant to no resident query, dropped"
        )
        self._m_queue_depth = registry.gauge(
            "repro_shard_queue_depth", "Batches waiting in each shard's request queue", ("shard",)
        )
        self._m_shard_up = registry.gauge(
            "repro_shard_up", "Shard worker liveness (1 = transport alive and unpoisoned)", ("shard",)
        )
        self._m_shard_tuples = registry.counter(
            "repro_shard_tuples_total", "Tuples processed by each shard worker", ("shard",)
        )
        self._m_shard_batches = registry.counter(
            "repro_shard_batches_total", "Batches processed by each shard worker", ("shard",)
        )
        self._m_busy = registry.counter(
            "repro_shard_busy_seconds_total", "Worker-CPU seconds spent processing batches", ("shard",)
        )
        self._m_batch_seconds = registry.histogram(
            "repro_batch_seconds", "Per-batch worker-CPU latency in seconds", ("shard",)
        )
        self._m_event_latency = registry.histogram(
            "repro_event_latency_seconds",
            "End-to-end latency of sampled tuples: routing time at the "
            "coordinator to batch completion at the worker",
            ("shard",),
        )
        self._m_q_tuples = registry.counter(
            "repro_query_tuples_total", "Tuples processed per query evaluator", ("shard", "query")
        )
        self._m_q_events = registry.counter(
            "repro_query_result_events_total", "Result events emitted per query evaluator", ("shard", "query")
        )
        self._m_q_trees = registry.gauge(
            "repro_query_index_trees", "Spanning trees in the query's Delta index", ("shard", "query")
        )
        self._m_q_nodes = registry.gauge(
            "repro_query_index_nodes", "Nodes in the query's Delta index", ("shard", "query")
        )
        self._m_q_expiry_seconds = registry.counter(
            "repro_query_expiry_seconds_total", "Seconds spent in window expiry", ("shard", "query")
        )
        self._m_q_expiry_runs = registry.counter(
            "repro_query_expiry_runs_total", "Window-expiry runs", ("shard", "query")
        )
        self._m_ops = registry.counter(
            "repro_lifecycle_operations_total",
            "Lifecycle operations applied (migrate / split / rebalance)",
            ("operation",),
        )
        self._m_op_seconds = registry.histogram(
            "repro_lifecycle_operation_seconds", "Lifecycle operation wall time in seconds", ("operation",)
        )
        self._m_worker_connected = registry.gauge(
            "repro_worker_connected",
            "Transport connection to the shard worker is up (tcp backend; 1 = connected)",
            ("shard",),
        )
        self._m_worker_connects = registry.counter(
            "repro_worker_connects_total", "Successful worker connection establishments", ("shard",)
        )
        self._m_worker_connect_attempts = registry.counter(
            "repro_worker_connect_attempts_total",
            "Worker connection attempts, including failed dials",
            ("shard",),
        )
        self._m_worker_frame_bytes = registry.counter(
            "repro_worker_frame_bytes_total",
            "Protocol frame bytes over the worker transport",
            ("shard", "direction"),
        )
        self._m_worker_frames = registry.counter(
            "repro_worker_frames_total",
            "Protocol frames over the worker transport",
            ("shard", "direction"),
        )
        self._m_worker_send_seconds = registry.histogram(
            "repro_worker_frame_send_seconds",
            "Wall time to put one frame on the worker transport",
            ("shard",),
        )
        self._m_standby_connected = registry.gauge(
            "repro_standby_connected",
            "Hot standby armed and healthy for the shard (1 = armed)",
            ("shard",),
        )
        self._m_repl_lag = registry.gauge(
            "repro_replication_lag_records",
            "Records logged for the shard but not yet acknowledged by its standby",
            ("shard",),
        )
        self._m_repl_shipped = registry.counter(
            "repro_replication_shipped_records_total",
            "WAL records shipped to the shard's hot standby",
            ("shard",),
        )
        self._m_repl_acked = registry.gauge(
            "repro_replication_acked_lsn",
            "Last record LSN the shard's standby acknowledged applying",
            ("shard",),
        )
        self._m_promotions = registry.counter(
            "repro_promotions_total", "Hot-standby promotions after primary loss", ("shard",)
        )
        self._m_promotion_replayed = registry.counter(
            "repro_promotion_replayed_records_total",
            "WAL records replayed during promotions (zero by design: warm "
            "failover promotes shipped state, it never re-reads the log)",
            ("shard",),
        )
        self._m_promotion_seconds = registry.histogram(
            "repro_promotion_seconds", "Wall time of hot-standby promotions", ("shard",)
        )
        # The columnar kernel implementation is decided once at import
        # (numpy when available, pure Python otherwise), so the gauge is
        # set here and never refreshed.
        self._m_fastpath = registry.gauge(
            "repro_fastpath_active",
            "Columnar kernel implementation in use (1 for the active impl label)",
            ("impl",),
        )
        self._m_fastpath.labels(fastpath_name()).set(1.0)

    @property
    def observability_port(self) -> Optional[int]:
        """Bound port of the ``/metrics`` + ``/healthz`` server, or ``None``."""
        if self._obs_server is None or not self._obs_server.running:
            return None
        return self._obs_server.port

    def _refresh_worker_metrics(self) -> None:
        """Pull worker metric snapshots into the registry.

        Coordinator-thread only: worker proxies are single-consumer, so
        the HTTP scrape thread must never call this — it reads the
        registry that this method populates.  Each snapshot is one
        ``METRICS`` control round-trip per shard, serialized behind that
        shard's queued batches (a partial drain barrier).
        """
        self._m_ingested.labels().set_total(float(self._tuples_ingested))
        self._m_dropped.labels().set_total(float(self._tuples_dropped))
        for shard, count in self.router.tuples_routed.items():
            self._m_routed.labels(shard).set_total(float(count))
        if self._replication is not None:
            for shard in range(len(self.workers)):
                stats = self._replication.stats(shard)
                self._m_standby_connected.labels(shard).set(1.0 if stats["armed"] else 0.0)
                self._m_repl_lag.labels(shard).set(float(stats["lag_records"]))
                self._m_repl_shipped.labels(shard).set_total(float(stats["shipped_records"]))
                self._m_repl_acked.labels(shard).set(float(stats["acked_lsn"]))
        for worker in self.workers:
            shard = worker.shard_id
            self._m_queue_depth.labels(shard).set(float(worker.queue_depth()))
            # Transport counters are plain attribute reads, pulled before the
            # METRICS round-trip so a dead connection still reports
            # connected=0 with its final byte/frame totals.
            transport = worker.transport_stats()
            if transport is not None:
                self._m_worker_connected.labels(shard).set(float(transport.get("connected", 0.0)))
                self._m_worker_connects.labels(shard).set_total(transport.get("connects_total", 0.0))
                self._m_worker_connect_attempts.labels(shard).set_total(
                    transport.get("connect_attempts_total", 0.0)
                )
                self._m_worker_frame_bytes.labels(shard, "sent").set_total(
                    transport.get("bytes_sent", 0.0)
                )
                self._m_worker_frame_bytes.labels(shard, "received").set_total(
                    transport.get("bytes_received", 0.0)
                )
                self._m_worker_frames.labels(shard, "sent").set_total(transport.get("frames_sent", 0.0))
                self._m_worker_frames.labels(shard, "received").set_total(
                    transport.get("frames_received", 0.0)
                )
                send_state = transport.get("send_seconds")
                if send_state:
                    self._m_worker_send_seconds.labels(shard).load_state(send_state)
            try:
                snapshot = worker.metrics()
            except Exception:
                self._m_shard_up.labels(shard).set(0.0)
                continue
            self._m_shard_up.labels(shard).set(1.0 if (worker.running or not self._running) else 0.0)
            self._heartbeats[shard] = time.monotonic()
            self._m_shard_tuples.labels(shard).set_total(float(snapshot.get("tuples", 0.0)))
            self._m_shard_batches.labels(shard).set_total(float(snapshot.get("batches", 0.0)))
            self._m_busy.labels(shard).set_total(float(snapshot.get("busy_seconds", 0.0)))
            histogram_state = snapshot.get("batch_seconds")
            if histogram_state:
                self._m_batch_seconds.labels(shard).load_state(histogram_state)
            self._harvest_snapshot(shard, snapshot)
            for query, stats in (snapshot.get("queries") or {}).items():
                self._m_q_tuples.labels(shard, query).set_total(stats.get("tuples_processed", 0.0))
                self._m_q_events.labels(shard, query).set_total(stats.get("events", 0.0))
                self._m_q_trees.labels(shard, query).set(stats.get("index_trees", 0.0))
                self._m_q_nodes.labels(shard, query).set(stats.get("index_nodes", 0.0))
                self._m_q_expiry_seconds.labels(shard, query).set_total(stats.get("expiry_seconds", 0.0))
                self._m_q_expiry_runs.labels(shard, query).set_total(stats.get("expiry_runs", 0.0))

    def metrics_text(self, refresh: Optional[bool] = None) -> str:
        """Render the registry as Prometheus text exposition (format 0.0.4).

        ``refresh`` controls whether worker snapshots are pulled first.
        The default refreshes only when no observability server is running
        (a direct coordinator-thread call, e.g. from a notebook); the HTTP
        scrape thread must not issue worker frames, so it renders whatever
        the coordinator's periodic refresh last captured.
        """
        if refresh is None:
            refresh = self._obs_server is None or not self._obs_server.running
        if refresh:
            self._refresh_worker_metrics()
        return self.metrics_registry.render()

    def _harvest_snapshot(self, shard: int, snapshot: Dict[str, object]) -> None:
        """Absorb the tracing payload of one worker ``METRICS`` snapshot.

        Workers drain their span buffers into the snapshot (each span
        ships exactly once), so every snapshot consumer must route them
        into the coordinator's tracer or they are lost.  The end-to-end
        event-latency state is kept per shard for :meth:`summary`'s
        quantiles and mirrored into ``repro_event_latency_seconds``.
        """
        spans = snapshot.get("spans")
        if spans:
            self.tracer.ingest(spans)
        state = snapshot.get("event_latency")
        if state:
            self._event_latency_states[shard] = state
            self._m_event_latency.labels(shard).load_state(state)

    def traces_snapshot(self) -> List[Dict]:
        """Merged span view backing ``/debug/traces`` and ``repro trace``.

        Thread-safe (the tracer's ring is lock-protected; no worker frames
        are issued), so the HTTP debug endpoint may call it from the
        scrape thread.  Worker spans appear here once a metrics refresh
        has harvested them — on the ingest path's periodic refresh while
        the observability server runs, or on any
        :meth:`shard_metrics` / :meth:`summary` / :meth:`stop` call.
        """
        return self.tracer.snapshot()

    def health(self) -> Dict[str, object]:
        """Per-shard liveness summary backing ``/healthz`` (thread-safe).

        Reads only transport liveness, sticky failures and the heartbeat
        timestamps stamped by the coordinator's metric refreshes — no
        worker frames, so any thread may call it even while a shard is
        wedged.  ``healthy`` is false when any shard transport died or
        holds a sticky failure while the service is running.

        With replication configured each shard entry carries a
        ``"replication"`` sub-dict (standby armed/address, acked LSN,
        shipped/lag record counts — atomic attribute reads on the
        replica, same thread-safety) and the payload a top-level
        ``"pending_rearms"`` map of shards awaiting a fresh standby.  A
        lost standby does *not* flip ``healthy``: the primary still
        serves, which is what liveness probes must see.
        """
        now = time.monotonic()
        shards = []
        healthy = True
        for worker in self.workers:
            failure = worker.failure
            alive = worker.running
            ok = failure is None and (alive or not self._running)
            healthy = healthy and ok
            beat = self._heartbeats.get(worker.shard_id)
            entry = {
                "shard": worker.shard_id,
                "alive": bool(alive),
                "ok": bool(ok),
                "failure": None if failure is None else str(failure),
                "heartbeat_age_seconds": None if beat is None else round(now - beat, 3),
            }
            if self._replication is not None:
                stats = self._replication.stats(worker.shard_id)
                entry["replication"] = {
                    "standby_armed": bool(stats["armed"]),
                    "standby_address": stats["address"],
                    "acked_lsn": stats["acked_lsn"],
                    "shipped_records": stats["shipped_records"],
                    "lag_records": stats["lag_records"],
                    "pending_rearm": stats["pending_rearm"],
                }
            shards.append(entry)
        payload: Dict[str, object] = {"healthy": healthy, "running": self._running, "shards": shards}
        if self._replication is not None:
            payload["pending_rearms"] = {
                str(shard): address for shard, address in sorted(self._replication.pending_rearms().items())
            }
        return payload

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the shard workers are currently started."""
        return self._running

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The durability manager, or ``None`` when no ``wal_dir`` is set."""
        return self._durability

    @property
    def replication(self) -> Optional[ReplicationManager]:
        """The replication manager, or ``None`` without standby addresses."""
        return self._replication

    def start(self) -> "StreamingQueryService":
        """Start all shard workers; returns ``self`` for chaining.

        With durability configured, the directory is attached first: the
        base checkpoint covering every query registered so far is written
        and the per-shard write-ahead logs open, so everything ingested
        after this call is recoverable.
        """
        if self._running:
            raise RuntimeStateError("service is already running")
        if self._durability is not None and not self._durability.attached:
            self._durability.attach(self, reset=self._durability.reset_on_attach)
            self._durability.reset_on_attach = False
        standby_bootstraps: Dict[int, Tuple] = {}
        if self._replication is not None:
            # Captured while the workers are stopped (the local engines are
            # authoritative) — byte-for-byte what each primary's HELLO ships.
            standby_bootstraps = {
                worker.shard_id: worker.bootstrap_frames() for worker in self.workers
            }
        for worker in self.workers:
            worker.start()
        self._running = True
        if self._replication is not None:
            # Arm failures are non-fatal (logged + visible in the
            # repro_standby_connected gauge): an unarmed shard simply falls
            # back to cold WAL recovery.
            self._replication.start(standby_bootstraps)
        if self.config.metrics_port is not None:
            server = ObservabilityServer(self, self.config.metrics_port)
            port = server.start()
            self._obs_server = server
            self._last_metrics_refresh = time.monotonic()
            self._refresh_worker_metrics()
            _LOG.info("observability server listening on port %d", port)
        return self

    def stop(self) -> None:
        """Drain outstanding work and stop all shard workers.

        Workers are always stopped and the service marked not-running,
        even when the drain surfaces a shard failure (which is re-raised).
        With durability attached, a final coordinated checkpoint is taken
        after the drain — a gracefully stopped service recovers without
        any WAL replay.
        """
        if not self._running:
            return
        clean_shutdown = False
        try:
            self._drain(rebalance=False)
            if self._durability is not None and self._durability.attached:
                self._durability.checkpoint(self, reason="stop")
            clean_shutdown = True
        finally:
            if self._obs_server is not None:
                # Capture final worker counters before the transports close,
                # then take the scrape endpoint down with the service.
                try:
                    self._refresh_worker_metrics()
                except Exception:
                    pass
                self._obs_server.stop()
                self._obs_server = None
            stop_error: Optional[BaseException] = None
            for worker in self.workers:
                try:
                    worker.stop()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if stop_error is None:
                        stop_error = exc
            if self._replication is not None:
                # After the primaries: closing a replication connection
                # makes its standby discard the replica state.
                self._replication.stop()
            self._running = False
            if self._durability is not None:
                # Only a clean shutdown (final checkpoint taken) lets this
                # service object wipe-and-reattach on a later start(); a
                # failed drain leaves the directory as crash evidence.
                self._durability.close(resettable=clean_shutdown)
            # Don't mask a drain failure already propagating out of the try.
            if stop_error is not None and sys.exc_info()[0] is None:
                raise stop_error

    def __enter__(self) -> "StreamingQueryService":
        if not self._running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.stop()
        else:
            # Don't mask the original error with a drain of a broken run.
            if self._obs_server is not None:
                self._obs_server.stop()
                self._obs_server = None
            for worker in self.workers:
                try:
                    worker.stop()
                except Exception:
                    pass
            if self._replication is not None:
                try:
                    self._replication.stop()
                except Exception:
                    pass
            self._running = False
            if self._durability is not None:
                # No final checkpoint on the error path: the WAL already
                # holds everything logged, which is what recovery trusts.
                self._durability.close()

    # ------------------------------------------------------------------ #
    # Logged worker mutations
    #
    # Every engine-level topology change goes through these helpers so the
    # write-ahead log records it (in execution order, after the worker
    # confirmed it) — including the rollback deregistrations of failed
    # migrations and splits, which is what keeps each shard's log a
    # faithful history of its engine.
    # ------------------------------------------------------------------ #

    def _worker_register(
        self,
        shard: int,
        name: str,
        expression: str,
        semantics: str,
        max_nodes_per_tree: Optional[int],
        partition: Optional[Tuple[int, int]] = None,
        operation_id: Optional[str] = None,
    ) -> None:
        self.workers[shard].register_query(
            name, expression, semantics, max_nodes_per_tree, partition, operation_id=operation_id
        )
        lsn = None
        if self._durability is not None:
            lsn = self._durability.log_register(
                shard, self._tuples_ingested, name, expression, semantics, max_nodes_per_tree, partition
            )
        if self._replication is not None and self._running:
            # Pre-start registrations travel in the standby's bootstrap
            # frames instead, exactly like the primary's HELLO.
            self._replication.ship_topology(
                shard,
                wal_mod.REGISTER,
                self._tuples_ingested,
                0,
                [name, expression, semantics, max_nodes_per_tree, list(partition) if partition else None],
                lsn,
            )

    def _worker_restore(
        self,
        shard: int,
        name: str,
        blob: bytes,
        state: Optional[Dict] = None,
        operation_id: Optional[str] = None,
    ) -> None:
        self.workers[shard].restore_query(name, blob, "arbitrary", operation_id=operation_id)
        ship = self._replication is not None and self._running
        if state is None and (self._durability is not None or ship):
            state = decode_state(blob, what=f"evaluator blob for query {name!r}")
        lsn = None
        if self._durability is not None:
            lsn = self._durability.log_restore(shard, self._tuples_ingested, name, "arbitrary", state)
        if ship:
            self._replication.ship_topology(
                shard, wal_mod.RESTORE, self._tuples_ingested, 0, [name, "arbitrary", state], lsn
            )

    def _worker_deregister(self, shard: int, name: str, operation_id: Optional[str] = None) -> None:
        self.workers[shard].deregister_query(name, operation_id=operation_id)
        lsn = None
        if self._durability is not None:
            lsn = self._durability.log_deregister(shard, self._tuples_ingested, name)
        if self._replication is not None and self._running:
            self._replication.ship_topology(
                shard, wal_mod.DEREGISTER, self._tuples_ingested, 0, name, lsn
            )

    # ------------------------------------------------------------------ #
    # Query management (allowed before and while running)
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        query: Union[str, QueryAnalysis],
        semantics: str = "arbitrary",
        max_nodes_per_tree: Optional[int] = None,
        partitions: Optional[int] = None,
    ) -> int:
        """Register a persistent query; returns the shard of its first evaluator.

        Safe while the service is running: the registration is serialized
        with in-flight batches on the owning shard, so the query sees every
        tuple ingested after this call returns.

        With ``partitions=K > 1`` (default: ``config.partitions``) the
        query is registered as ``K`` root-partition evaluators spread over
        the ``K`` least-loaded shards — intra-query data parallelism for
        queries too heavy for one shard.  Each partition receives the
        query's full tuple stream but materializes only the spanning trees
        whose root it owns; :meth:`results` merges the partition streams
        back into the exact single-evaluator stream.  Partitioned
        registration requires ``"arbitrary"`` semantics and at most one
        partition per shard; the returned shard is partition 0's.

        Raises:
            ValueError: the name is taken (or contains the reserved
                ``::``), the partition count is out of range, or
                partitioning is combined with non-``"arbitrary"``
                semantics.
        """
        if name in self._semantics:
            raise ValueError(f"a query named {name!r} is already registered")
        if "::" in name:
            raise ValueError(
                f"query name {name!r} contains '::', which is reserved for "
                f"partition member names"
            )
        if self._durability is not None and semantics != "arbitrary":
            raise ValueError(
                f"query {name!r} uses semantics {semantics!r}: a durable service "
                f"(wal_dir set) accepts only 'arbitrary' queries — no other "
                f"evaluator state can be checkpointed for recovery"
            )
        count = self.config.partitions if partitions is None else partitions
        if count < 1:
            raise ValueError(f"partitions must be >= 1, got {count}")
        analysis = query if isinstance(query, QueryAnalysis) else analyze(query)
        if count == 1:
            shard = self.router.assign(name, analysis)
            # Flush the shard's buffered tuples first: they predate this
            # registration and must reach the engine before the new query does.
            self._flush_shard(shard)
            try:
                # The expression travels as its rendered string (round-trip
                # safe) so registration crosses process boundaries; the
                # worker recompiles.
                self._worker_register(shard, name, str(analysis.expression), semantics, max_nodes_per_tree)
            except Exception:
                self.router.release(name)
                raise
            self._semantics[name] = semantics
            return shard
        if semantics != "arbitrary":
            raise ValueError(
                f"partitioned registration requires 'arbitrary' semantics, got {semantics!r}: "
                f"only Algorithm RAPQ's per-root spanning trees split cleanly"
            )
        if count > len(self.workers):
            raise ValueError(
                f"partitions ({count}) cannot exceed shards ({len(self.workers)}): "
                f"each root partition runs on its own shard"
            )
        targets = self._partition_targets(count)
        members = [_member_name(name, index) for index in range(count)]
        placed: List[str] = []
        registered: List[Tuple[str, int]] = []
        try:
            for index, (member, shard) in enumerate(zip(members, targets)):
                self.router.assign_to(member, analysis, shard)
                placed.append(member)
                self._flush_shard(shard)
                self._worker_register(
                    shard, member, str(analysis.expression), "arbitrary", max_nodes_per_tree, (index, count)
                )
                registered.append((member, shard))
        except Exception:
            # Roll the partial registration back: the query either exists
            # whole (all members live) or not at all.
            for member, shard in registered:
                try:
                    self._worker_deregister(shard, member)
                except Exception:
                    pass
            for member in placed:
                try:
                    self.router.release(member)
                except Exception:
                    pass
            raise
        self._partitions[name] = members
        for member in members:
            self._member_base[member] = name
        self._semantics[name] = "arbitrary"
        return targets[0]

    def _partition_targets(self, count: int) -> List[int]:
        """The ``count`` least-loaded shards (by resident queries, then id)."""
        ranked = sorted(self.router.shards(), key=lambda view: (view.load, view.shard_id))
        return [view.shard_id for view in ranked[:count]]

    def deregister(self, name: str) -> None:
        """Remove a query (its accumulated results are discarded).

        For a partitioned query every member is removed.  A member whose
        worker refuses the removal (e.g. a poisoned shard) does not leave
        the name half-registered: the service-level bookkeeping and
        routing are torn down for *all* members regardless — so the name
        is reusable and no later call trips over missing members — and
        the first worker error is re-raised once teardown is complete
        (the failed worker keeps its engine-level state until stopped).
        """
        members = self._partitions.get(name)
        if members is None:
            shard = self.router.shard_of(name)
            # Flush this shard's buffered tuples first so the removal lands
            # after everything ingested before it, matching engine semantics.
            self._flush_shard(shard)
            self._worker_deregister(shard, name)
            self.router.release(name)
            del self._semantics[name]
            return
        error: Optional[BaseException] = None
        for member in members:
            shard = self.router.shard_of(member)
            try:
                self._flush_shard(shard)
                self._worker_deregister(shard, member)
            except BaseException as exc:  # noqa: BLE001 - re-raised after teardown
                if error is None:
                    error = exc
            self.router.release(member)
            del self._member_base[member]
        del self._partitions[name]
        del self._semantics[name]
        if error is not None:
            raise error

    def queries(self) -> List[str]:
        """Names of all registered queries (partitioned ones once, by base name)."""
        return sorted(self._semantics)

    def partitions_of(self, name: str) -> int:
        """How many root partitions ``name`` is split into (1 = unsplit).

        Raises:
            KeyError: ``name`` is not a registered query.
        """
        if name not in self._semantics:
            raise KeyError(f"no query named {name!r} is registered")
        members = self._partitions.get(name)
        return 1 if members is None else len(members)

    def shard_of(self, name: str, partition: Optional[int] = None) -> int:
        """The shard hosting ``name`` (or its ``partition``-th root partition).

        Raises:
            KeyError: ``name`` is not a registered query.
            ValueError: ``partition`` is out of range, or given for an
                unpartitioned query.
            RuntimeStateError: ``name`` is partitioned and no ``partition``
                was named (its members live on several shards).
        """
        members = self._partitions.get(name)
        if members is None:
            if name not in self._semantics:
                raise KeyError(f"no query named {name!r} is registered")
            if partition is not None:
                raise ValueError(f"query {name!r} is not partitioned; do not pass partition=")
            return self.router.shard_of(name)
        if partition is None:
            raise RuntimeStateError(
                f"query {name!r} is split into {len(members)} partitions on "
                f"several shards; name one with partition=i"
            )
        if not 0 <= partition < len(members):
            raise ValueError(f"partition {partition} out of range [0, {len(members)}) for query {name!r}")
        return self.router.shard_of(members[partition])

    def __contains__(self, name: str) -> bool:
        return name in self._semantics

    # ------------------------------------------------------------------ #
    # Live migration and rebalancing
    # ------------------------------------------------------------------ #

    def migrate(
        self,
        name: str,
        target_shard: int,
        reason: str = "manual",
        partition: Optional[int] = None,
    ) -> int:
        """Move a live query to another shard; returns the shard it now lives on.

        The move is transparent: the global result stream of a migrated run
        is bit-identical — order and content, deletions included — to a run
        that never migrated, on every backend.  The choreography:

        1. flush both shards' buffered tuples (everything already ingested
           must reach the query *before* its state moves, and must not be
           re-delivered *after*);
        2. ``MIGRATE`` on the source — the reply barrier drains the source
           up to the extraction point and returns the evaluator as an
           order-exact checkpoint blob, leaving the query registered;
        3. ``RESTORE`` on the target, serialized behind the target's
           flushed batches on its request queue;
        4. only once the target holds the state: ``DEREGISTER`` on the
           source and re-route in the :class:`StreamRouter` (epoch bump).

        A failure in step 3 (e.g. the target worker died) leaves the query
        live and routed on the source; the error is re-raised.  A route
        table change between steps 1 and 4 (a reentrant register /
        deregister / migrate from a result callback) voids the drain
        guarantee, so the move is rolled back and refused.

        A partitioned query cannot move as a whole — its partitions live on
        different shards by design — but each partition can: pass
        ``partition=i`` to move the ``i``-th root partition, with the same
        bit-identical guarantee (the partition's blob carries its
        membership, so it keeps admitting exactly its own tree roots on
        the new shard).

        Args:
            name: a registered query.
            target_shard: shard to move it to; moving to its current shard
                is a no-op.
            reason: free-form tag recorded in the migration history
                (rebalance policies put their justification here).
            partition: for a partitioned query, which root partition to
                move (required); must be ``None`` for unpartitioned ones.

        Raises:
            KeyError: ``name`` is not a registered query.
            ValueError: ``target_shard`` (or ``partition``) is out of range,
                or ``partition`` is given for an unpartitioned query.
            RuntimeStateError: the query's semantics cannot migrate, a whole
                partitioned query was addressed without ``partition``, or
                the route table changed mid-migration.
        """
        members = self._partitions.get(name)
        if members is None:
            if name not in self._semantics:
                raise KeyError(f"no query named {name!r} is registered")
            if partition is not None:
                raise ValueError(f"query {name!r} is not partitioned; do not pass partition=")
            routed = name
        else:
            if partition is None:
                raise RuntimeStateError(
                    f"query {name!r} is split into {len(members)} partitions; "
                    f"migrate one at a time with partition=i"
                )
            if not 0 <= partition < len(members):
                raise ValueError(f"partition {partition} out of range [0, {len(members)}) for query {name!r}")
            routed = members[partition]
        source = self.router.shard_of(routed)
        if not 0 <= target_shard < len(self.workers):
            raise ValueError(f"target shard {target_shard} out of range [0, {len(self.workers)})")
        if target_shard == source:
            return source
        semantics = self._semantics[name]
        if semantics != "arbitrary":
            # Same restriction as restarting a process worker with RSPQ
            # state: positional node identity cannot cross a shard boundary.
            raise RuntimeStateError(
                f"query {name!r} cannot migrate: queries with non-'arbitrary' semantics "
                f"({semantics!r}) hold evaluator state that cannot be shipped between shards"
            )
        if self._migrating is not None:
            raise RuntimeStateError(f"cannot migrate {name!r} while query {self._migrating!r} is migrating")
        op_id = new_operation_id("migrate")
        started = time.perf_counter()
        _LOG.info(
            "migrating query %r from shard %d to shard %d (%s)",
            routed,
            source,
            target_shard,
            reason,
            extra={"operation_id": op_id},
        )
        self._migrating = routed
        try:
            self._flush_shard(source)
            self._flush_shard(target_shard)
            epoch = self.router.epoch
            # MIGRATE refuses non-'arbitrary' semantics on the worker (the
            # coordinator check above is just the cheap fast path), so the
            # blob is always an arbitrary-semantics evaluator.
            _, _, blob = self.workers[source].migrate_query(routed, operation_id=op_id)
            self._worker_restore(target_shard, routed, blob, operation_id=op_id)
            if self.router.epoch != epoch:
                self._worker_deregister(target_shard, routed, operation_id=op_id)
                raise RuntimeStateError(
                    f"route table changed while migrating {name!r} (reentrant "
                    f"register/deregister/migrate); the move was rolled back"
                )
            try:
                self._worker_deregister(source, routed, operation_id=op_id)
            except BaseException:
                # The source kept the query; take it back off the target so
                # exactly one shard owns it before the error surfaces.
                try:
                    self._worker_deregister(target_shard, routed, operation_id=op_id)
                except Exception:
                    pass
                raise
        finally:
            self._migrating = None
        self.router.move(routed, target_shard)
        elapsed = time.perf_counter() - started
        self._m_ops.labels("migrate").inc()
        self._m_op_seconds.labels("migrate").observe(elapsed)
        _LOG.info(
            "migrated query %r to shard %d in %.3fs",
            routed,
            target_shard,
            elapsed,
            extra={"operation_id": op_id},
        )
        self.migrations.append(
            {
                "query": name,
                "partition": partition,
                "source": source,
                "target": target_shard,
                "reason": reason,
                "at_tuples": self._tuples_ingested,
                "operation_id": op_id,
            }
        )
        return target_shard

    def split(self, name: str, partitions: Optional[int] = None, reason: str = "manual") -> List[int]:
        """Split a live query into root partitions across shards ("split the whale").

        The inverse problem of :meth:`migrate`: when one query dominates
        its shard, moving it whole only relocates the hot spot.  Splitting
        turns it into ``partitions`` independent evaluators — each owning
        the spanning trees whose root it
        :meth:`~repro.core.partition.RootPartition.admits` — hosted on the
        least-loaded shards, so the query's tree work runs data-parallel.
        Like migration, the split is transparent: the merged result stream
        (past and future events) stays bit-identical to the never-split
        run.

        The choreography mirrors :meth:`migrate`: flush the source and
        every target shard, extract the evaluator with ``MIGRATE`` (reply
        barrier = consistent cut), split the order-exact blob with
        :func:`~repro.core.partition.partition_checkpoint`, ``RESTORE``
        each piece under a reserved member name, verify the route-table
        epoch, and only then deregister the original and re-route.  Any
        failure rolls back to the unsplit query, still live on its shard.

        Args:
            name: a registered, unpartitioned, ``"arbitrary"``-semantics
                query.
            partitions: how many partitions to split into, between 2 and
                the shard count (default: one per shard).
            reason: free-form tag recorded in the split history.

        Returns:
            the shards now hosting the partitions, in partition order.

        Raises:
            KeyError: ``name`` is not a registered query.
            ValueError: the partition count is out of range.
            RuntimeStateError: the service has a single shard, the query is
                already split (re-splitting is not supported), its
                semantics cannot ship, a migration is in flight, or the
                route table changed mid-split.
        """
        if name not in self._semantics:
            raise KeyError(f"no query named {name!r} is registered")
        if name in self._partitions:
            raise RuntimeStateError(
                f"query {name!r} is already split into {len(self._partitions[name])} partitions; "
                f"re-splitting is not supported (the query stays live as-is)"
            )
        if len(self.workers) < 2:
            raise RuntimeStateError(
                f"cannot split {name!r} on a single-shard service: there is no "
                f"second shard to host another partition"
            )
        semantics = self._semantics[name]
        if semantics != "arbitrary":
            raise RuntimeStateError(
                f"query {name!r} cannot be split: queries with non-'arbitrary' semantics "
                f"({semantics!r}) hold evaluator state that cannot be partitioned"
            )
        count = len(self.workers) if partitions is None else partitions
        if not 2 <= count <= len(self.workers):
            raise ValueError(
                f"partitions must be between 2 and the shard count "
                f"({len(self.workers)}), got {count}"
            )
        if self._migrating is not None:
            raise RuntimeStateError(f"cannot split {name!r} while query {self._migrating!r} is migrating")
        source = self.router.shard_of(name)
        op_id = new_operation_id("split")
        started = time.perf_counter()
        _LOG.info(
            "splitting query %r on shard %d into %d partitions (%s)",
            name,
            source,
            count,
            reason,
            extra={"operation_id": op_id},
        )
        self._migrating = name
        try:
            self._flush_shard(source)
            targets = self._partition_targets(count)
            for shard in targets:
                self._flush_shard(shard)
            epoch = self.router.epoch
            _, _, blob = self.workers[source].migrate_query(name, operation_id=op_id)
            # ValueError here (old format, explicit semantics...) aborts
            # before anything moved: the query is untouched on its shard.
            states = partition_checkpoint(decode_state(blob, what=f"evaluator blob for {name!r}"), count)
            analysis = analyze(states[0]["query"])
            members = [_member_name(name, index) for index in range(count)]
            restored: List[Tuple[str, int]] = []
            try:
                for member, shard, state in zip(members, targets, states):
                    blob_bytes = canonical_bytes(state)
                    self._worker_restore(shard, member, blob_bytes, state=state, operation_id=op_id)
                    restored.append((member, shard))
                if self.router.epoch != epoch:
                    raise RuntimeStateError(
                        f"route table changed while splitting {name!r} (reentrant "
                        f"register/deregister/migrate); the split was rolled back"
                    )
                self._worker_deregister(source, name, operation_id=op_id)
            except BaseException:
                # Unwind the restored pieces; the original never left source.
                for member, shard in restored:
                    try:
                        self._worker_deregister(shard, member, operation_id=op_id)
                    except Exception:
                        pass
                raise
            self.router.release(name)
            for member, shard in zip(members, targets):
                self.router.assign_to(member, analysis, shard)
        finally:
            self._migrating = None
        self._partitions[name] = members
        for member in members:
            self._member_base[member] = name
        elapsed = time.perf_counter() - started
        self._m_ops.labels("split").inc()
        self._m_op_seconds.labels("split").observe(elapsed)
        _LOG.info(
            "split query %r across shards %s in %.3fs",
            name,
            list(targets),
            elapsed,
            extra={"operation_id": op_id},
        )
        self.splits.append(
            {
                "query": name,
                "source": source,
                "targets": list(targets),
                "partitions": count,
                "reason": reason,
                "at_tuples": self._tuples_ingested,
                "operation_id": op_id,
            }
        )
        return list(targets)

    def rebalance(self) -> List[RebalancePlan]:
        """Consult the rebalance policy and apply what it proposes.

        Called automatically at drain boundaries (non-``"manual"`` policy)
        and every ``rebalance_interval`` ingested tuples; safe to call
        manually at any time.  Returns the applied plans — migrations of
        whole queries or single partitions, and whale splits.  The
        per-label load observation window resets at every decision.
        """
        self._tuples_since_rebalance = 0
        started = time.perf_counter()
        proposals = self._rebalancer.propose(self._shard_loads())
        self._label_loads.clear()
        applied: List[RebalancePlan] = []
        for plan in proposals:
            if isinstance(plan, SplitPlan):
                if plan.query not in self._semantics or plan.query in self._partitions:
                    continue  # raced with a deregister or an earlier split
                if self.router.shard_of(plan.query) != plan.source:
                    continue  # already moved; the split decision is stale
                self.split(plan.query, plan.parts, reason=plan.reason)
                applied.append(plan)
                continue
            base = self._member_base.get(plan.query)
            if base is None:
                if plan.query not in self._semantics:
                    continue  # raced with a deregister; the plan is stale
                if self.router.shard_of(plan.query) != plan.source:
                    continue  # already moved (e.g. by an earlier plan's rollback)
                self.migrate(plan.query, plan.target, reason=plan.reason)
            else:
                members = self._partitions.get(base)
                if members is None or plan.query not in members:
                    continue  # the base query was deregistered mid-decision
                if self.router.shard_of(plan.query) != plan.source:
                    continue
                self.migrate(base, plan.target, reason=plan.reason, partition=members.index(plan.query))
            applied.append(plan)
        if applied:
            self._m_ops.labels("rebalance").inc()
            self._m_op_seconds.labels("rebalance").observe(time.perf_counter() - started)
            _LOG.info("rebalance applied %d plan(s): %s", len(applied), "; ".join(map(str, applied)))
        return applied

    def _shard_loads(self) -> List[ShardLoad]:
        """Per-shard load summaries for the rebalance policy.

        Partition members appear as individually movable entries under
        their internal member names, each carrying ``1/count`` of the
        query's routed-tuple load (the tree work is split about evenly by
        the root hash).  Unpartitioned ``"arbitrary"`` queries are
        additionally marked splittable so the policy can propose breaking
        up a whale instead of pinning it.
        """
        loads: List[ShardLoad] = []
        for view in self.router.shards():
            query_loads: Dict[str, float] = {}
            pinned = 0.0
            splittable = set()
            for name in sorted(view.queries):
                load = float(sum(self._label_loads.get(label, 0) for label in self.router.alphabet_of(name)))
                base = self._member_base.get(name)
                if base is not None:
                    query_loads[name] = load / len(self._partitions[base])
                elif self._semantics[name] == "arbitrary":
                    query_loads[name] = load
                    if len(self.workers) >= 2:
                        splittable.add(name)
                else:
                    pinned += load
            loads.append(
                ShardLoad(
                    shard_id=view.shard_id,
                    query_loads=query_loads,
                    pinned_load=pinned,
                    splittable=splittable,
                )
            )
        return loads

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest_one(self, tup: StreamingGraphTuple) -> None:
        """Route one tuple to the shards hosting queries that can use it."""
        if not self._running:
            raise RuntimeStateError("cannot ingest into a stopped service; call start() first")
        if self._migrating is not None:
            # (e.g. from an on_result callback) — new tuples would bypass
            # the drain barrier the in-flight migration relies on.
            raise RuntimeStateError(f"cannot ingest while query {self._migrating!r} is migrating")
        self._tuples_ingested += 1
        shards = self.router.route(tup)
        if not shards:
            self._tuples_dropped += 1
            return
        self._label_loads[tup.label] += 1
        if self.tracer.enabled:
            # Head sampling happens here, at routing time: the first
            # sampled tuple of a shard's buffering batch opens the trace's
            # root span, and the context (with this routing-time stamp)
            # rides the eventual BATCH frame — and, attached below, the
            # shard's next REPLICATE frame.  Rate 0.0 costs one attribute
            # read.
            stamp = time.time()
            for shard in shards:
                if shard not in self._trace_pending and self.tracer.sample():
                    span = self.tracer.start_span("ingest", shard=shard)
                    ctx = self.tracer.context_for(span, stamp)
                    self._trace_pending[shard] = (span, ctx)
                    if self._replication is not None:
                        self._replication.attach_context(shard, ctx)
        lsns = None
        if self._durability is not None:
            # Write-ahead: the tuple reaches every routed shard's log
            # before any worker can see it, so the WAL always covers
            # everything the engines have processed.
            lsns = self._durability.log_tuple(self._tuples_ingested, tup, shards)
        if self._replication is not None:
            # Same write-ahead discipline for the standbys: the record is
            # shipped (or at least buffered toward the standby) before any
            # primary can see the tuple, so a promotion never needs the
            # pending buffers — everything in them is already standby-bound.
            self._replication.ship_tuple(self._tuples_ingested, tup.to_wire(), shards, lsns)
        for shard in shards:
            pending = self._pending[shard]
            pending.append(tup)
            if len(pending) >= self.config.batch_size:
                self._flush_shard(shard)
        if self.config.rebalance_interval > 0:
            self._tuples_since_rebalance += 1
            if self._tuples_since_rebalance >= self.config.rebalance_interval:
                self.rebalance()
        if self._durability is not None:
            # The periodic incremental-checkpoint scheduler: every
            # checkpoint_interval logged tuples, drain and take a delta
            # against the chain's last state.
            self._durability.maybe_checkpoint(self)
        if self._obs_server is not None:
            # Periodic metric refresh for the scrape endpoint: the HTTP
            # thread must not talk to workers, so the coordinator snapshots
            # them here on a time gate.
            now = time.monotonic()
            if now - self._last_metrics_refresh >= _METRICS_REFRESH_SECONDS:
                self._last_metrics_refresh = now
                self._refresh_worker_metrics()

    def ingest(self, tuples: Iterable[StreamingGraphTuple]) -> None:
        """Route a stream of tuples (in timestamp order) into the shards."""
        for tup in tuples:
            self.ingest_one(tup)

    def _flush_shard(self, shard: int) -> None:
        pending = self._pending[shard]
        if pending and self._running:
            self._pending[shard] = []
            trace = self._trace_pending.pop(shard, None)
            try:
                self.workers[shard].submit(pending, trace[1] if trace is not None else None)
            except WorkerUnavailableError as exc:
                self._promote_or_raise(shard, exc)
                # The batch is NOT resubmitted: every tuple in it was
                # shipped to the standby at log time (write-ahead), so the
                # promoted engine already covers it — resubmitting would
                # double-process.
            finally:
                if trace is not None:
                    # The root span covers coordinator-side buffering plus
                    # the (possibly backpressured) enqueue; the worker's
                    # process_batch span parents on it via the context.
                    self.tracer.finish(trace[0], tuples=len(pending))

    def drain(self) -> None:
        """Flush buffers and block until every shard has caught up.

        A drain is also a rebalance boundary: with a non-``"manual"``
        policy configured, the service consults it here — the natural
        moment, since every shard is quiescent and migrations are cheap.
        The internal drains of :meth:`checkpoint` and :meth:`stop` skip
        the hook: a checkpoint must record the placement the caller just
        observed, and migrating right before shutdown is wasted work.
        """
        self._drain(rebalance=True)

    def _drain(self, rebalance: bool) -> None:
        for shard in range(len(self.workers)):
            self._flush_shard(shard)
        for shard in range(len(self.workers)):
            # Indexed re-read: a promotion swaps self.workers[shard] and
            # the retried drain must land on the new primary.
            span = ctx = None
            if self.tracer.sample():
                span = self.tracer.start_span("drain", shard=shard)
                ctx = self.tracer.context_for(span)
            try:
                self._with_failover(shard, lambda shard=shard: self.workers[shard].drain(ctx))
            finally:
                if span is not None:
                    self.tracer.finish(span)
        if self._replication is not None and self._running:
            # A drain is also a replication barrier: push out any buffered
            # tail and use the quiescent moment to re-arm lost standbys.
            self._replication.flush_all()
            self._maybe_rearm()
        if rebalance and self._running and self._rebalancer.name != "manual" and self._migrating is None:
            self.rebalance()

    # ------------------------------------------------------------------ #
    # Warm failover (hot-standby promotion)
    # ------------------------------------------------------------------ #

    def _with_failover(self, shard: int, call):
        """Run one worker interaction, promoting the shard's standby on loss.

        The retried call must index ``self.workers`` itself — after a
        promotion the slot holds the new primary.
        """
        try:
            return call()
        except WorkerUnavailableError as exc:
            self._promote_or_raise(shard, exc)
            return call()

    def _promote_or_raise(self, shard: int, cause: WorkerUnavailableError) -> ShardWorker:
        """Promote the shard's hot standby, or re-raise the transport failure.

        A failed (or impossible) promotion never masks the trigger: the
        original :class:`~repro.errors.WorkerUnavailableError` propagates
        — with the :class:`~repro.errors.ReplicationError` chained as its
        cause — and cold WAL-replay recovery remains available.  Refused
        while a migration or split is mid-flight: those choreographies
        hold engine state outside any single worker and run their own
        rollback on the original failure.
        """
        if self._replication is None or self._migrating is not None:
            raise cause
        # Minted here (not in _promote) so the failure path below logs the
        # same correlation id as every line of the attempt it reports on.
        op_id = new_operation_id("promote")
        try:
            self._promote(shard, operation_id=op_id)
        except (ReplicationError, RuntimeStateError) as exc:
            _LOG.warning(
                "shard %d: cannot promote after primary loss: %s",
                shard,
                exc,
                extra={"shard": shard, "operation_id": op_id},
            )
            raise cause from exc
        return self.workers[shard]

    def promote(self, shard: int) -> Dict[str, object]:
        """Promote the shard's hot standby to primary now; returns the facts.

        The crash path calls this automatically on
        :class:`~repro.errors.WorkerUnavailableError`; calling it directly
        is a *planned* failover (drill, maintenance): the old primary's
        session is abandoned — its engine state discarded once the socket
        closes — and the standby takes over exactly as in the crash path,
        with a bit-identical result stream and zero WAL replay.

        Returns:
            the promotion record also appended to :attr:`promotions`:
            ``shard``, ``address`` (new primary), ``previous_address``,
            ``lsn``, ``waited_records``, ``replayed_records`` (always 0)
            and ``seconds``.

        Raises:
            RuntimeStateError: the service is not running or a migration
                is mid-flight.
            ReplicationError: the shard has no live standby, or the
                standby failed the promotion handshake.
        """
        if not self._running:
            raise RuntimeStateError("cannot promote on a stopped service; call start() first")
        if self._migrating is not None:
            raise RuntimeStateError(
                f"cannot promote shard {shard} while query {self._migrating!r} is migrating"
            )
        return self._promote(shard)

    def _promote(self, shard: int, operation_id: Optional[str] = None) -> Dict[str, object]:
        replication = self._replication
        if replication is None:
            raise ReplicationError(
                f"shard {shard} has no replication manager (standby_addresses not configured)"
            )
        op_id = operation_id or new_operation_id("promote")
        span = None
        if self.tracer.enabled:
            span = self.tracer.start_span("promote", shard=shard, operation_id=op_id)
        old = self.workers[shard]
        old_address = (self.config.worker_addresses or (None,) * self.config.shards)[shard]
        try:
            sock, facts = replication.promote(
                shard, emit_results=self._on_result is not None, operation_id=op_id
            )
        except BaseException:
            if span is not None:
                self.tracer.finish(span, failed=True)
            raise
        # The promoted session is live on `sock`; swap the config so the
        # standby's address is the shard's primary from here on, build a
        # proxy around the socket, and retire the dead worker.
        new_addresses = list(self.config.worker_addresses)
        new_addresses[shard] = facts["address"]
        new_standbys = list(self.config.standby_addresses or [None] * self.config.shards)
        new_standbys[shard] = None
        new_config = dataclass_replace(
            self.config,
            worker_addresses=tuple(new_addresses),
            standby_addresses=tuple(new_standbys),
        )
        replacement = create_worker(shard, self.window, new_config, on_result=self._on_result)
        replacement.adopt_session(sock)
        self.workers[shard] = replacement
        self.config = new_config
        # Anything still buffered for the shard was shipped at log time;
        # the promoted engine already covers it.
        self._pending[shard] = []
        try:
            old.abandon()
        except Exception:  # noqa: BLE001 - the old transport is already dead
            pass
        if old_address is not None:
            replication.schedule_rearm(shard, old_address)
        facts["previous_address"] = old_address
        facts["operation_id"] = op_id
        self.promotions.append(facts)
        self._m_promotions.labels(shard).inc()
        self._m_promotion_replayed.labels(shard).inc(float(facts["replayed_records"]))
        self._m_promotion_seconds.labels(shard).observe(float(facts["seconds"]))
        if span is not None:
            self.tracer.finish(span, address=facts["address"])
        _LOG.warning(
            "shard %d: promoted standby at %s to primary (was %s); replayed %d WAL records",
            shard,
            facts["address"],
            old_address,
            facts["replayed_records"],
            extra={"shard": shard, "operation_id": op_id},
        )
        return facts

    def rearm_standby(self, shard: int, address: Optional[str] = None) -> None:
        """Arm a fresh hot standby for ``shard`` at ``address``.

        ``address`` defaults to the one scheduled by the shard's last
        promotion (the old primary's — restart a ``repro worker`` process
        there first).  The standby starts from a *consistent cut*: the
        shard is flushed and drained, its resident queries' checkpoint
        blobs become the bootstrap ``RESTORE`` frames, and the replica's
        base LSN is the shard's current record head — exactly where the
        shipped stream resumes.

        Raises:
            RuntimeStateError: no replication manager is configured.
            ReplicationError: no address is known, the shard hosts
                non-``'arbitrary'`` queries (their state cannot ship), or
                the worker at ``address`` is unreachable/busy.
        """
        replication = self._replication
        if replication is None:
            raise RuntimeStateError(
                "service has no replication manager (standby_addresses not configured)"
            )
        if address is None:
            address = replication.pending_rearms().get(shard)
            if address is None:
                raise ReplicationError(
                    f"shard {shard} has no scheduled re-arm address; pass one explicitly"
                )
        replication.arm(shard, address, self._standby_bootstrap(shard))
        new_standbys = list(self.config.standby_addresses or [None] * self.config.shards)
        new_standbys[shard] = address
        self.config = dataclass_replace(self.config, standby_addresses=tuple(new_standbys))

    def _standby_bootstrap(self, shard: int) -> Tuple:
        """Bootstrap frames reconstructing the shard at its current LSN."""
        if not self._running:
            return self.workers[shard].bootstrap_frames()
        self._flush_shard(shard)
        self.workers[shard].drain()
        if self._replication is not None:
            self._replication.flush(shard)
        frames = []
        for name in sorted(self.router.shards()[shard].queries):
            semantics = self._semantics.get(self._member_base.get(name, name), "arbitrary")
            if semantics != "arbitrary":
                raise ReplicationError(
                    f"cannot arm a standby for shard {shard} mid-run: query {name!r} "
                    f"uses semantics {semantics!r}, whose evaluator state cannot be "
                    f"shipped (only 'arbitrary' checkpoints)"
                )
            blob = self.workers[shard].checkpoint_query(name)
            frames.append((protocol.RESTORE, (name, "arbitrary", blob)))
        return tuple(frames)

    def _maybe_rearm(self) -> None:
        """Opportunistically re-arm lost standbys at a drain boundary.

        One quick connect attempt per pending shard: if the operator has
        restarted a worker on the scheduled address, the shard regains its
        standby; if not, the next drain tries again.  Never raises.
        """
        replication = self._replication
        if replication is None:
            return
        for shard, address in replication.pending_rearms().items():
            try:
                bootstrap = self._standby_bootstrap(shard)
                replication.arm(shard, address, bootstrap, connect_attempts=1)
            except (ReplicationError, WorkerUnavailableError, OSError):
                continue
            new_standbys = list(self.config.standby_addresses or [None] * self.config.shards)
            new_standbys[shard] = address
            self.config = dataclass_replace(self.config, standby_addresses=tuple(new_standbys))

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def results(self, name: str) -> ResultStream:
        """A snapshot of one query's result stream.

        The stream is wire-encoded on the owning shard's worker, serialized
        with in-flight batches, so it is a consistent point-in-time view
        even while the service keeps ingesting.

        For a partitioned query the member shards are flushed and drained
        first (so every partition reflects the same ingestion prefix),
        then the per-partition streams — fetched with their emission keys
        — are k-way merged back into the exact stream the unpartitioned
        evaluator would have produced.
        """
        members = self._partitions.get(name)
        if members is None:
            shard = self.router.shard_of(name)
            return self._with_failover(shard, lambda: self.workers[shard].fetch_results(name))
        shards = sorted({self.router.shard_of(member) for member in members})
        for shard in shards:
            self._flush_shard(shard)
        for shard in shards:
            self._with_failover(shard, lambda shard=shard: self.workers[shard].drain())
        parts = []
        for member in members:
            shard = self.router.shard_of(member)
            events_wire, keys = self._with_failover(
                shard, lambda: self.workers[shard].fetch_partition_results(member)
            )
            parts.append(([ResultEvent.from_wire(wire) for wire in events_wire], keys))
        return merge_partition_events(parts)

    def answer_pairs(self, name: str) -> Set[Tuple[Vertex, Vertex]]:
        """All distinct pairs reported so far by one query."""
        return self.results(name).distinct_pairs

    def result_triples(self, name: str) -> Set[Tuple[Vertex, Vertex, int]]:
        """Positive results of one query as ``(source, target, timestamp)`` triples."""
        return {(event.source, event.target, event.timestamp) for event in self.results(name).positives()}

    def global_events(self) -> Iterator[TaggedResultEvent]:
        """All queries' result events, k-way merged into timestamp order."""
        streams = {name: self.results(name).events for name in self.queries()}
        return merge_result_events(streams)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def shard_metrics(self) -> List[Dict[str, float]]:
        """Per-shard processing counters (tuples, batches, throughput)."""
        metrics = []
        for worker in self.workers:
            stats = dict(worker.metrics())
            # Every METRICS consumer must harvest the drained spans or
            # they are lost; the span list itself stays out of the
            # returned stats (it is trace data, not a counter).
            self._harvest_snapshot(worker.shard_id, stats)
            stats.pop("spans", None)
            stats["shard"] = float(worker.shard_id)
            stats["queries"] = float(len(self.router.shards()[worker.shard_id].queries))
            metrics.append(stats)
        return metrics

    def summary(self) -> Dict[str, object]:
        """Aggregated service summary: totals, per-shard and per-query stats.

        Partitioned queries appear once per partition, keyed by the
        internal member name with a ``"partition_of"`` field naming the
        user-facing query; the ``"partitioned"`` map lists each split
        query's member placement.
        """
        per_query: Dict[str, Dict[str, object]] = {}
        for shard, worker in enumerate(self.workers):
            shard_summary = worker.summary()
            for name, stats in shard_summary.items():
                stats["shard"] = shard
                base = self._member_base.get(name)
                if base is not None:
                    stats["partition_of"] = base
                per_query[name] = stats
        shards = self.shard_metrics()
        busy = [stats["busy_seconds"] for stats in shards]
        totals: Dict[str, object] = {
            "tuples_ingested": self._tuples_ingested,
            "tuples_dropped_unroutable": self._tuples_dropped,
            "shard_tuples": sum(stats["tuples"] for stats in shards),
            "busy_seconds_max": max(busy) if busy else 0.0,
            "busy_seconds_total": sum(busy),
            "migrations": len(self.migrations),
            "splits": len(self.splits),
        }
        # End-to-end latency quantiles of sampled tuples (the paper's
        # Fig. 4 axes): merge the per-shard histogram states harvested
        # from worker METRICS snapshots by shard_metrics() above.
        latency_states = [
            state for state in self._event_latency_states.values() if state and state.get("count")
        ]
        if latency_states:
            merged = merge_histogram_states(latency_states)
            p50, p95, p99 = histogram_quantiles(merged, (0.5, 0.95, 0.99))
            totals["event_latency"] = {
                "count": merged["count"],
                "p50_seconds": p50,
                "p95_seconds": p95,
                "p99_seconds": p99,
            }
        partitioned = {
            base: {member: self.router.shard_of(member) for member in members}
            for base, members in sorted(self._partitions.items())
        }
        return {
            "config": self.config.to_dict(),
            "totals": totals,
            "shards": shards,
            "queries": per_query,
            "partitioned": partitioned,
            "migrations": [dict(record) for record in self.migrations],
            "splits": [dict(record) for record in self.splits],
        }

    # ------------------------------------------------------------------ #
    # Coordinated checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> Dict:
        """Capture the state of every shard engine as one JSON-compatible dict.

        The checkpoint is *coordinated*: buffered tuples are flushed and all
        shards drained first, so every per-query state reflects the same
        ingestion prefix.  Only ``"arbitrary"``-semantics queries are
        checkpointable (the restriction of :mod:`repro.core.checkpoint`).
        """
        for name, semantics in self._semantics.items():
            if semantics != "arbitrary":
                raise ValueError(
                    f"query {name!r} uses semantics {semantics!r}; only 'arbitrary' "
                    f"queries can be checkpointed"
                )
        if self._running:
            # No rebalance hook here: the checkpoint must record the
            # placement the caller just observed, not a freshly shuffled one.
            self._drain(rebalance=False)
        span = ctx = None
        if self.tracer.sample():
            # One coin flip for the whole coordinated checkpoint; every
            # per-query CHECKPOINT frame carries the same context.
            span = self.tracer.start_span("checkpoint")
            ctx = self.tracer.context_for(span)
        queries = []
        for name in self.queries():
            # A partitioned query contributes one entry per member, all
            # sharing the user-facing name; each member's state carries its
            # "partition" section, which is how restore() tells them apart.
            for routed in self._partitions.get(name, [name]):
                shard = self.router.shard_of(routed)
                # The worker returns the evaluator's encoded byte blob (the
                # form that ships across process boundaries); decode it back
                # to the JSON-compatible dict for the service-level layout.
                blob = self._with_failover(
                    shard,
                    lambda shard=shard, routed=routed: self.workers[shard].checkpoint_query(
                        routed, trace_ctx=ctx
                    ),
                )
                state = decode_state(blob, what=f"evaluator blob for query {routed!r}")
                queries.append({"name": name, "shard": shard, "state": state})
        if span is not None:
            self.tracer.finish(span, queries=len(queries))
        return {
            "format": _SERVICE_FORMAT,
            "window": {"size": self.window.size, "slide": self.window.slide},
            "config": self.config.to_dict(),
            "tuples_ingested": self._tuples_ingested,
            "queries": queries,
        }

    @classmethod
    def restore(
        cls,
        state: Dict,
        config: Optional[RuntimeConfig] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> "StreamingQueryService":
        """Rebuild a stopped service from a :meth:`checkpoint` dict.

        Args:
            state: the checkpoint.
            config: optionally override the checkpointed runtime config
                (e.g. restore onto a different shard count); queries keep
                their recorded shard when it still exists and are re-placed
                by the sharding policy otherwise.
            on_result: live-result callback for the restored service.
        """
        if state.get("format") not in _SUPPORTED_SERVICE_FORMATS:
            raise ValueError(f"unsupported service checkpoint format: {state.get('format')!r}")
        window = WindowSpec(size=state["window"]["size"], slide=state["window"]["slide"])
        config = config or RuntimeConfig.from_dict(state["config"])
        service = cls(window, config, on_result=on_result)
        service._tuples_ingested = int(state.get("tuples_ingested", 0))
        for entry in state["queries"]:
            name = entry["name"]
            # Routing only needs the query's alphabet; the full evaluator
            # state travels to the owning worker as an opaque byte blob.
            analysis = analyze(entry["state"]["query"])
            partition = entry["state"].get("partition")
            if partition is None:
                routed = name
            else:
                # One root partition of a split query: restore it under its
                # reserved member name and rebuild the partition maps.
                index, count = partition["index"], partition["count"]
                routed = _member_name(name, index)
                members = service._partitions.setdefault(name, [None] * count)
                if len(members) != count or members[index] is not None:
                    raise ValueError(
                        f"corrupt service checkpoint: inconsistent partition entries "
                        f"for query {name!r}"
                    )
                members[index] = routed
                service._member_base[routed] = name
            shard = entry["shard"]
            if 0 <= shard < config.shards:
                service.router.assign_to(routed, analysis, shard)
            else:
                shard = service.router.assign(routed, analysis)
            service.workers[shard].restore_query(routed, canonical_bytes(entry["state"]), "arbitrary")
            service._semantics[name] = "arbitrary"
        for name, members in service._partitions.items():
            missing = [index for index, member in enumerate(members) if member is None]
            if missing:
                raise ValueError(
                    f"corrupt service checkpoint: query {name!r} is missing "
                    f"partition entries {missing}"
                )
        return service

    def save_checkpoint(self, path: Union[str, Path]) -> Path:
        """Write the coordinated checkpoint to ``path`` as JSON."""
        path = Path(path)
        with path.open("w") as handle:
            json.dump(self.checkpoint(), handle)
        return path

    @classmethod
    def load_checkpoint(
        cls,
        path: Union[str, Path],
        config: Optional[RuntimeConfig] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> "StreamingQueryService":
        """Load a checkpoint written by :meth:`save_checkpoint`."""
        with Path(path).open() as handle:
            state = json.load(handle)
        return cls.restore(state, config=config, on_result=on_result)

    def __str__(self) -> str:
        return (
            f"StreamingQueryService(shards={self.config.shards}, "
            f"policy={self.config.sharding}, backend={self.config.backend}, "
            f"queries={self.queries()}, running={self._running})"
        )
