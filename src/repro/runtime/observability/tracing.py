"""Distributed tracing: spans, head sampling, and trace-context propagation.

The runtime's frames already carry an *operation id* on the lifecycle ops
(``REGISTER``/``RESTORE``/``MIGRATE`` — see ``protocol.py``).  This module
generalizes that slot into a **trace context** that rides the data-path
frames too (``BATCH``, ``DRAIN``, ``CHECKPOINT``, ``REPLICATE``,
``PROMOTE``), so one sampled event yields a *connected span tree* across
the coordinator, its shard workers (threading / multiprocessing / tcp)
and a hot-standby session.

Design constraints, in order:

* **Zero hot-path cost when disabled.** ``trace_sample_rate=0.0`` (the
  default) leaves :attr:`Tracer.enabled` false; the coordinator's ingest
  loop checks that one attribute and does nothing else.
* **Sampling must never perturb results.** The context travels as an
  *optional trailing frame element* next to the payload — never inside
  the payload bytes — so a sampled batch is byte-identical to an
  unsampled one as far as evaluation is concerned.  Backend-parity
  suites assert bit-exactness at 0%, 1% and 100% sampling.
* **Dependency-free.** Span ids are ``uuid4`` hexes, the ring buffer is
  a ``collections.deque(maxlen=...)`` under a lock, and the sampler is a
  *private* ``random.Random`` instance so test suites seeding the global
  RNG cannot couple to (or be perturbed by) the tracing layer.

Wire form of a trace context (crosses the tcp codec untouched)::

    (trace_id: str, parent_span_id: str, stamp_wall: float)

``stamp_wall`` is the routing-time ``time.time()`` of the sampled tuple;
the worker closes the end-to-end latency at result emission
(``event_latency`` histogram -> ``repro_event_latency_seconds``).  Spans
record a wall-clock start plus a *monotonic* duration, so durations are
skew-free while cross-process alignment is as good as the hosts' clocks.

Spans are plain dicts (JSON- and codec-friendly)::

    {"trace_id", "span_id", "parent_id", "name", "process", "shard",
     "start", "duration", ...attrs}

Workers ship their buffered spans to the coordinator inside the existing
``METRICS`` snapshot (version-tolerant ``"spans"`` key, drained on
read); the coordinator ingests them into its own ring, serves the merged
view on ``/debug/traces``, and :func:`chrome_trace_events` renders it as
Chrome trace-event JSON (one *pid* lane per process, one *tid* lane per
shard) loadable in Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .logs import get_logger

__all__ = [
    "Tracer",
    "make_context",
    "parse_context",
    "chrome_trace_events",
    "connected_traces",
    "span_forest",
    "DEFAULT_TRACE_CAPACITY",
    "SLOW_SPAN_SECONDS",
]

_LOG = get_logger("runtime.tracing")

#: Spans kept per process; the ring drops the oldest beyond this.
DEFAULT_TRACE_CAPACITY = 4096

#: A finished span slower than this logs a rate-limited warning carrying
#: its trace id, cross-linking logs and traces.
SLOW_SPAN_SECONDS = 1.0

#: Minimum seconds between two slow-span warnings (rate limit).
SLOW_SPAN_WARN_INTERVAL = 10.0


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def make_context(trace_id: str, parent_span_id: str, stamp_wall: float) -> Tuple[str, str, float]:
    """Build the frame-borne trace context tuple."""
    return (trace_id, parent_span_id, stamp_wall)


def parse_context(ctx) -> Optional[Tuple[str, str, float]]:
    """Validate a frame-borne trace context; ``None`` when absent/foreign.

    Version tolerance: an old coordinator sends no context, a new worker
    must also survive whatever a *future* coordinator appends — anything
    that is not a ``(str, str, number)`` triple is treated as absent
    rather than an error.
    """
    if (
        isinstance(ctx, tuple)
        and len(ctx) >= 3
        and isinstance(ctx[0], str)
        and isinstance(ctx[1], str)
        and isinstance(ctx[2], (int, float))
    ):
        return (ctx[0], ctx[1], float(ctx[2]))
    return None


class Tracer:
    """Head-sampling span recorder with a bounded, lock-protected ring.

    Args:
        sample_rate: probability in ``[0, 1]`` that a new unit of work
            (an ingested tuple's batch, a drain, a checkpoint) starts a
            trace.  ``0.0`` disables the tracer entirely.
        process: lane label stamped on every span this tracer records
            (``coordinator``, ``worker-2``, ``standby-1``, ...).
        capacity: ring-buffer bound; the oldest spans beyond it drop.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        process: str = "coordinator",
        capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.process = process
        #: One attribute read decides the ingest hot path; rate 0.0 makes
        #: the whole layer a no-op.
        self.enabled = self.sample_rate > 0.0
        self._random = random.Random()  # private: never couples to the global seed
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._last_slow_warning = 0.0
        self.dropped = 0  # spans evicted by the ring bound (approximate)

    # ------------------------------------------------------------------ #
    # Sampling and span lifecycle
    # ------------------------------------------------------------------ #

    def sample(self) -> bool:
        """One head-sampling coin flip (always false when disabled)."""
        if not self.enabled:
            return False
        if self.sample_rate >= 1.0:
            return True
        return self._random.random() < self.sample_rate

    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        shard: Optional[int] = None,
        **attrs,
    ) -> Dict:
        """Open a span; finish it with :meth:`finish` to record it.

        Without ``trace_id`` a fresh trace is started (the span is the
        root).  The returned dict carries a private monotonic anchor
        (``_t0``) which :meth:`finish` converts into ``duration``.
        """
        span = {
            "trace_id": trace_id or _new_id(),
            "span_id": _new_id(),
            "parent_id": parent_id,
            "name": name,
            "process": self.process,
            "shard": shard,
            "start": time.time(),
            "duration": 0.0,
            "_t0": time.monotonic(),
        }
        span.update(attrs)
        return span

    def finish(self, span: Dict, **attrs) -> Dict:
        """Close a span: fix its duration, buffer it, warn when slow."""
        t0 = span.pop("_t0", None)
        if t0 is not None:
            span["duration"] = time.monotonic() - t0
        span.update(attrs)
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)
        if span["duration"] >= SLOW_SPAN_SECONDS:
            now = time.monotonic()
            if now - self._last_slow_warning >= SLOW_SPAN_WARN_INTERVAL:
                self._last_slow_warning = now
                _LOG.warning(
                    "slow span %r took %.3fs",
                    span["name"],
                    span["duration"],
                    extra={
                        "trace_id": span["trace_id"],
                        "span_id": span["span_id"],
                        **({"shard": span["shard"]} if span.get("shard") is not None else {}),
                    },
                )
        return span

    def context_for(self, span: Dict, stamp_wall: Optional[float] = None) -> Tuple[str, str, float]:
        """The frame-borne context pointing at ``span`` as the parent."""
        return make_context(span["trace_id"], span["span_id"], stamp_wall or span["start"])

    # ------------------------------------------------------------------ #
    # Cross-process shipping and read-out
    # ------------------------------------------------------------------ #

    def ingest(self, spans: Iterable[Dict]) -> int:
        """Absorb spans shipped from another process's tracer."""
        count = 0
        with self._lock:
            for span in spans:
                if isinstance(span, dict) and "trace_id" in span:
                    if len(self._spans) == self._spans.maxlen:
                        self.dropped += 1
                    self._spans.append(dict(span))
                    count += 1
        return count

    def drain(self) -> List[Dict]:
        """Remove and return every buffered span (worker -> METRICS path)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def snapshot(self) -> List[Dict]:
        """Copy of the buffered spans, oldest first (``/debug/traces``)."""
        with self._lock:
            return [dict(span) for span in self._spans]


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #


def span_forest(spans: Sequence[Dict]) -> Dict[str, Dict[str, List[Dict]]]:
    """Group spans by trace, keyed ``trace_id -> span_id -> children``.

    Used by tests and the smoke job to assert connectivity: a trace is
    *connected* when every non-root span's ``parent_id`` resolves to
    another span of the same trace.
    """
    forest: Dict[str, Dict[str, List[Dict]]] = {}
    for span in spans:
        forest.setdefault(span["trace_id"], {}).setdefault(span["span_id"], [])
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in forest.get(span["trace_id"], {}):
            forest[span["trace_id"]][parent].append(span)
    return forest


def connected_traces(spans: Sequence[Dict]) -> List[str]:
    """Trace ids whose spans form one connected tree (single root)."""
    by_trace: Dict[str, List[Dict]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    connected = []
    for trace_id, members in by_trace.items():
        ids = {span["span_id"] for span in members}
        roots = [span for span in members if not span.get("parent_id")]
        dangling = [
            span for span in members if span.get("parent_id") and span["parent_id"] not in ids
        ]
        if len(roots) == 1 and not dangling:
            connected.append(trace_id)
    return connected


def chrome_trace_events(spans: Sequence[Dict]) -> List[Dict]:
    """Render spans as Chrome trace-event JSON objects (Perfetto-loadable).

    Each distinct ``process`` label becomes a *pid* lane (with an ``M``
    ``process_name`` metadata event), each shard a *tid* lane within it.
    Spans are complete (``"ph": "X"``) events; timestamps are
    microseconds since the earliest span so the viewport opens on the
    data.
    """
    if not spans:
        return []
    pids: Dict[str, int] = {}
    events: List[Dict] = []
    origin = min(span["start"] for span in spans)
    for span in sorted(spans, key=lambda item: item["start"]):
        process = span.get("process", "unknown")
        if process not in pids:
            pids[process] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        tid = span.get("shard")
        tid = 0 if tid is None else int(tid) + 1
        args = {
            key: value
            for key, value in span.items()
            if key not in ("name", "process", "start", "duration") and value is not None
        }
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (span["start"] - origin) * 1e6,
                "dur": max(span["duration"], 0.0) * 1e6,
                "pid": pids[process],
                "tid": tid,
                "args": args,
            }
        )
    return events
