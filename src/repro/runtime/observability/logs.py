"""Structured logging for the runtime: per-component loggers, JSON option, operation IDs.

Everything under ``src/repro`` logs through child loggers of the ``repro``
namespace (:func:`get_logger`), so one :func:`configure_logging` call —
from the CLI, from a spawned worker process, or from an embedding
application — controls the whole runtime.  The handler installed by
:func:`configure_logging` is tagged and replaced on reconfiguration, so
repeated CLI invocations in one process never double-print; propagation
stays enabled so test harnesses capturing at the root logger still see
every record.

Multi-frame operations (migrate / split / recover) are correlated by an
*operation ID* (:func:`new_operation_id`): the coordinator stamps it on
its own log records via the ``extra`` mechanism and carries it on the
protocol frames, so the worker-side records for the same operation share
the field and one grep reconstructs the full choreography across the
coordinator and both workers.  Both formatters append any such extra
fields: the text formatter as trailing ``key=value`` pairs, the JSON
formatter as top-level keys.
"""

from __future__ import annotations

import json
import logging
import sys
import uuid
from typing import IO, Any, Dict, Optional

__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "configure_logging",
    "get_logger",
    "new_operation_id",
    "record_extras",
]

#: Attribute name tagging handlers installed by :func:`configure_logging`.
_HANDLER_TAG = "_repro_observability_handler"

#: LogRecord attributes that are part of the stdlib record itself, not extras.
_RESERVED_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    """Extract the caller-supplied ``extra`` fields from a log record."""
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED_FIELDS and not key.startswith("_")
    }


class TextFormatter(logging.Formatter):
    """Human-oriented line format with extras appended as ``key=value`` pairs."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        """Render the record, appending sorted extra fields."""
        base = super().format(record)
        extras = record_extras(record)
        if extras:
            base += " " + " ".join(f"{key}={value}" for key, value in sorted(extras.items()))
        return base


class JsonFormatter(logging.Formatter):
    """One JSON object per record; extras become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        """Render the record as a single-line JSON object."""
        payload: Dict[str, Any] = {
            "ts": self.formatTime(record),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(record_extras(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(component: str) -> logging.Logger:
    """Return the runtime logger for ``component`` (under the ``repro`` namespace)."""
    if component == "repro" or component.startswith("repro."):
        return logging.getLogger(component)
    return logging.getLogger(f"repro.{component}")


def configure_logging(
    level: str = "warning",
    fmt: str = "text",
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the runtime log handler and set the verbosity.

    Attaches one tagged :class:`~logging.StreamHandler` to the ``repro``
    logger (stderr by default), removing any handler a previous call
    installed.  ``fmt`` selects :class:`TextFormatter` (``"text"``) or
    :class:`JsonFormatter` (``"json"``).  Propagation to the root logger
    stays enabled.  Returns the configured ``repro`` logger.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r}; expected 'text' or 'json'")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(numeric)
    return logger


def new_operation_id(kind: str) -> str:
    """Mint a correlation ID for one multi-frame operation (e.g. ``migrate-3f2a…``)."""
    return f"{kind}-{uuid.uuid4().hex[:12]}"
