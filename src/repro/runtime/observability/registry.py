"""Dependency-free metrics primitives with Prometheus text exposition.

The registry is the in-process half of the observability layer: components
hold :class:`Counter` / :class:`Gauge` / :class:`Histogram` children (one
per label set) obtained from a shared :class:`MetricsRegistry`, and a
scrape renders the whole registry to the Prometheus text exposition format
(version 0.0.4) in one pass.  Three deliberate simplifications keep the
module dependency-free and transport-friendly:

* child updates are plain float/int mutations (GIL-atomic); only family
  creation and :meth:`MetricsRegistry.render` take the registry lock, so
  the hot ingest path never contends with the scrape thread;
* :class:`Histogram` exposes its full state as a plain dict
  (:meth:`Histogram.state` / :meth:`Histogram.load_state`), so a worker
  process can accumulate observations locally and ship them over the
  typed ``METRICS`` protocol frame for the coordinator to adopt —
  exposition is identical across the threading and multiprocessing
  backends;
* :meth:`Counter.set_total` adopts an externally accumulated monotonic
  total (again for worker snapshots) instead of replaying increments.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "format_value",
    "merge_histogram_states",
    "histogram_quantiles",
]

#: Log-spaced latency buckets (seconds) covering 100 us to 10 s — the span
#: between a trivial batch on an idle shard and a badly wedged one.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def format_value(value: float) -> str:
    """Render one sample value the way Prometheus expects it.

    Integral values lose the trailing ``.0`` (``17`` not ``17.0``), other
    floats use Python's shortest exact ``repr``, and infinities become
    ``+Inf`` / ``-Inf`` (the spelling the ``le`` label requires).
    """
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_string(names: Sequence[str], values: Sequence[str]) -> str:
    """Render ``{a="x",b="y"}`` (empty string when there are no labels)."""
    if not names:
        return ""
    pairs = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values))
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing sample (events, bytes, busy seconds)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self._value += amount

    def set_total(self, total: float) -> None:
        """Adopt an externally accumulated total without ever moving backwards.

        Worker snapshots ship absolute totals over the ``METRICS`` frame;
        the coordinator adopts them here.  A stale or restarted snapshot
        (smaller total) is ignored so the exposed series stays monotonic.
        """
        if total > self._value:
            self._value = float(total)

    @property
    def value(self) -> float:
        """Current accumulated total."""
        return self._value


class Gauge:
    """A sample that can go up and down (queue depth, index size, liveness)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increase the gauge by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Decrease the gauge by ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram:
    """A log-bucketed histogram with Prometheus cumulative exposition.

    Buckets follow Prometheus ``le`` semantics: an observation lands in
    the first bucket whose upper bound is ``>=`` the value, with an
    implicit ``+Inf`` overflow bucket.  The full state round-trips through
    a plain dict (:meth:`state` / :meth:`load_state`) so worker-side
    histograms can be shipped over the wire and adopted by the
    coordinator's registry unchanged.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must be non-empty and strictly increasing: {buckets}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def state(self) -> Dict[str, object]:
        """Snapshot the histogram as a plain JSON-friendly dict."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Replace this histogram's contents with a shipped :meth:`state` dict.

        The shipped bounds win on mismatch (version tolerance: an older
        coordinator can still expose a newer worker's buckets).
        """
        bounds = tuple(float(bound) for bound in state["bounds"])  # type: ignore[union-attr]
        counts = [int(count) for count in state["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(bounds) + 1:
            raise ValueError(f"histogram state has {len(counts)} counts for {len(bounds)} bounds")
        self.bounds = bounds
        self.counts = counts
        self.sum = float(state["sum"])  # type: ignore[arg-type]
        self.count = int(state["count"])  # type: ignore[arg-type]

    def cumulative(self) -> List[Tuple[float, int]]:
        """Return ``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self.counts[-1]))
        return pairs


def merge_histogram_states(states: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Sum several :meth:`Histogram.state` dicts sharing one bucket schema.

    Used by the coordinator to fold the per-shard ``event_latency``
    histograms (each adopted verbatim from a worker snapshot) into one
    service-wide distribution for :func:`histogram_quantiles`.  States
    with mismatched bounds raise: quantile estimation over misaligned
    buckets would silently lie.
    """
    if not states:
        raise ValueError("cannot merge zero histogram states")
    bounds = tuple(float(bound) for bound in states[0]["bounds"])  # type: ignore[union-attr]
    counts = [0] * (len(bounds) + 1)
    total_sum = 0.0
    total_count = 0
    for state in states:
        if tuple(float(bound) for bound in state["bounds"]) != bounds:  # type: ignore[union-attr]
            raise ValueError("histogram states have mismatched bucket bounds")
        for index, count in enumerate(state["counts"]):  # type: ignore[union-attr,arg-type]
            counts[index] += int(count)
        total_sum += float(state["sum"])  # type: ignore[arg-type]
        total_count += int(state["count"])  # type: ignore[arg-type]
    return {"bounds": list(bounds), "counts": counts, "sum": total_sum, "count": total_count}


def histogram_quantiles(
    state: Mapping[str, object], quantiles: Sequence[float]
) -> List[Optional[float]]:
    """Estimate quantiles from one histogram state by linear interpolation.

    Standard Prometheus-style estimation: find the bucket holding the
    target rank, interpolate linearly within its bounds (the first bucket
    interpolates from 0, the overflow bucket reports its lower bound — the
    honest answer for values beyond the last finite bound).  Returns
    ``None`` per quantile when the histogram is empty.
    """
    bounds = [float(bound) for bound in state["bounds"]]  # type: ignore[union-attr]
    counts = [int(count) for count in state["counts"]]  # type: ignore[union-attr]
    total = sum(counts)
    results: List[Optional[float]] = []
    for quantile in quantiles:
        if total == 0:
            results.append(None)
            continue
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {quantile}")
        rank = quantile * total
        running = 0
        value: Optional[float] = None
        for index, count in enumerate(counts):
            if running + count >= rank and count > 0:
                if index >= len(bounds):  # overflow bucket: clamp to the last bound
                    value = bounds[-1]
                else:
                    lower = bounds[index - 1] if index > 0 else 0.0
                    upper = bounds[index]
                    fraction = (rank - running) / count
                    value = lower + (upper - lower) * fraction
                break
            running += count
        if value is None:  # rank landed past every bucket (numerical edge)
            value = bounds[-1]
        results.append(value)
    return results


#: Any child a family can hold.
MetricChild = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-label-set children.

    Families are created through :class:`MetricsRegistry` (which guards
    uniqueness); callers then grab children with :meth:`labels` and mutate
    them lock-free.  For label-less families the family itself proxies the
    single child's ``inc`` / ``set`` / ``observe`` for convenience.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; expected one of {sorted(_KINDS)}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock or threading.Lock()
        self._children: Dict[Tuple[str, ...], MetricChild] = {}

    def _make_child(self) -> MetricChild:
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, *values: object) -> MetricChild:
        """Return (creating on first use) the child for one label-value set."""
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def remove(self, *values: object) -> None:
        """Drop the child for one label-value set (e.g. a deregistered query)."""
        key = tuple(str(value) for value in values)
        with self._lock:
            self._children.pop(key, None)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child (counters and gauges only)."""
        self.labels().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        """Set the label-less gauge child."""
        self.labels().set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        """Observe into the label-less histogram child."""
        self.labels().observe(value)  # type: ignore[union-attr]

    def samples(self) -> List[str]:
        """Render this family's exposition block (``# HELP``/``# TYPE`` + samples)."""
        lines = [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key in sorted(self._children):
            child = self._children[key]
            labels = _label_string(self.labelnames, key)
            if isinstance(child, Histogram):
                for bound, cum in child.cumulative():
                    le = _label_string(
                        self.labelnames + ("le",), key + (format_value(bound),)
                    )
                    lines.append(f"{self.name}_bucket{le} {cum}")
                lines.append(f"{self.name}_sum{labels} {format_value(child.sum)}")
                lines.append(f"{self.name}_count{labels} {child.count}")
            else:
                lines.append(f"{self.name}{labels} {format_value(child.value)}")
        return lines


class MetricsRegistry:
    """A named collection of metric families rendered as one text exposition.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: re-requesting a
    family by name returns the existing one (and raises if the kind or
    label schema differs, which would corrupt the exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(name, help_text, kind, labelnames, buckets, lock=self._lock)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family with the given bucket bounds."""
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def render(self) -> str:
        """Render every family to Prometheus text exposition format 0.0.4."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.samples())
        return "\n".join(lines) + "\n" if lines else ""
