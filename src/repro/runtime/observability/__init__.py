"""Observability layer: metrics registry, Prometheus/health endpoints, structured logging.

Three dependency-free modules (stdlib only):

* :mod:`~repro.runtime.observability.registry` — counters, gauges and
  log-bucketed histograms grouped into labelled families, rendered to the
  Prometheus text exposition format; histogram/counter state round-trips
  through plain dicts so worker processes ship their numbers over the
  typed ``METRICS`` protocol frame and both backends export identically.
* :mod:`~repro.runtime.observability.logs` — per-component loggers under
  the ``repro`` namespace, text/JSON formatters that surface ``extra``
  fields, and operation IDs correlating multi-frame operations
  (migrate / split / recover) across coordinator and worker logs.
* :mod:`~repro.runtime.observability.server` — a stdlib ``http.server``
  thread exposing ``/metrics`` and ``/healthz`` for a running
  :class:`~repro.runtime.service.StreamingQueryService`.
"""

from .logs import (
    JsonFormatter,
    TextFormatter,
    configure_logging,
    get_logger,
    new_operation_id,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .server import CONTENT_TYPE_METRICS, ObservabilityServer

__all__ = [
    "CONTENT_TYPE_METRICS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "ObservabilityServer",
    "TextFormatter",
    "configure_logging",
    "get_logger",
    "new_operation_id",
]
