"""Observability layer: metrics, tracing, Prometheus/health endpoints, structured logging.

Four dependency-free modules (stdlib only):

* :mod:`~repro.runtime.observability.registry` — counters, gauges and
  log-bucketed histograms grouped into labelled families, rendered to the
  Prometheus text exposition format; histogram/counter state round-trips
  through plain dicts so worker processes ship their numbers over the
  typed ``METRICS`` protocol frame and both backends export identically.
* :mod:`~repro.runtime.observability.logs` — per-component loggers under
  the ``repro`` namespace, text/JSON formatters that surface ``extra``
  fields, and operation IDs correlating multi-frame operations
  (migrate / split / recover) across coordinator and worker logs.
* :mod:`~repro.runtime.observability.tracing` — distributed tracing:
  head-sampled span recording whose trace context rides the typed
  protocol frames, end-to-end event-latency stamps, and a Chrome
  trace-event renderer (Perfetto-loadable).
* :mod:`~repro.runtime.observability.server` — a stdlib ``http.server``
  thread exposing ``/metrics``, ``/healthz`` and ``/debug/traces`` for a
  running :class:`~repro.runtime.service.StreamingQueryService`.
"""

from .logs import (
    JsonFormatter,
    TextFormatter,
    configure_logging,
    get_logger,
    new_operation_id,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    histogram_quantiles,
    merge_histogram_states,
)
from .server import CONTENT_TYPE_METRICS, ObservabilityServer
from .tracing import (
    DEFAULT_TRACE_CAPACITY,
    SLOW_SPAN_SECONDS,
    Tracer,
    chrome_trace_events,
    connected_traces,
    make_context,
    parse_context,
    span_forest,
)

__all__ = [
    "CONTENT_TYPE_METRICS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "ObservabilityServer",
    "SLOW_SPAN_SECONDS",
    "TextFormatter",
    "Tracer",
    "chrome_trace_events",
    "configure_logging",
    "connected_traces",
    "get_logger",
    "histogram_quantiles",
    "make_context",
    "merge_histogram_states",
    "new_operation_id",
    "parse_context",
    "span_forest",
]
