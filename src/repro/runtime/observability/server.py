"""HTTP exposition: ``/metrics``, ``/healthz`` and ``/debug/traces`` on a daemon thread.

The server is deliberately thin: every endpoint calls *read-only*,
thread-safe methods on the owning
:class:`~repro.runtime.service.StreamingQueryService` —
``metrics_text()`` renders the coordinator-side registry under its lock,
``health()`` inspects worker transport liveness and sticky failures
without issuing any protocol frames, and ``traces_snapshot()`` copies
the tracer's lock-protected span ring.  The scrape thread therefore
never touches the (single-consumer) worker reply queues; fresh worker
snapshots (including the workers' drained spans) are pulled into the
registry by the coordinator thread itself on a time gate during
ingestion.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .logs import get_logger

__all__ = ["CONTENT_TYPE_METRICS", "ObservabilityServer"]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE_METRICS = "text/plain; version=0.0.4; charset=utf-8"

_LOG = get_logger("runtime.observability.server")


class _Handler(BaseHTTPRequestHandler):
    """Request handler serving ``/metrics``, ``/healthz`` and ``/debug/traces``."""

    server_version = "repro-observability/1.0"

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        """Serve one GET request."""
        path = self.path.split("?", 1)[0]
        service = self.server.service  # type: ignore[attr-defined]
        try:
            if path == "/metrics":
                body = service.metrics_text().encode("utf-8")
                self._respond(200, CONTENT_TYPE_METRICS, body)
            elif path == "/healthz":
                health = service.health()
                status = 200 if health.get("healthy") else 503
                body = (json.dumps(health, sort_keys=True) + "\n").encode("utf-8")
                self._respond(status, "application/json; charset=utf-8", body)
            elif path == "/debug/traces":
                spans = service.traces_snapshot()
                body = (json.dumps({"spans": spans}, sort_keys=True) + "\n").encode("utf-8")
                self._respond(200, "application/json; charset=utf-8", body)
            else:
                self._respond(404, "text/plain; charset=utf-8", b"not found\n")
        except Exception:  # pragma: no cover - defensive: a scrape must never kill the server
            _LOG.exception("error serving %s", path)
            try:
                self._respond(500, "text/plain; charset=utf-8", b"internal error\n")
            except OSError:
                pass

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002 - stdlib signature
        """Route per-request lines to the runtime logger at DEBUG."""
        _LOG.debug("%s - %s", self.address_string(), format % args)


class ObservabilityServer:
    """Serve a service's ``/metrics``, ``/healthz`` and ``/debug/traces`` from a daemon thread.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the actual
    bound port so tests and the CLI can report a scrapeable address.
    """

    def __init__(self, service: object, port: int = 0, host: str = "") -> None:
        self.service = service
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        """Whether the HTTP server is currently up."""
        return self._httpd is not None

    def start(self) -> int:
        """Bind, start serving on a daemon thread, and return the bound port."""
        if self._httpd is not None:
            return self.port
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-observability-{self.port}",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("observability endpoints on port %d (/metrics, /healthz, /debug/traces)", self.port)
        return self.port

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
