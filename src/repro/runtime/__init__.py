r"""Sharded parallel runtime: multi-worker execution subsystem for persistent RPQs.

The paper's algorithms are single-threaded per-query evaluators; this
package adds the execution layer that turns them into a scalable service.

Architecture — four cooperating pieces behind one facade::

    tuples ──> StreamRouter ──> per-shard bounded queues ──> ShardWorker (engine)
                  │                                             │
                  └─ ShardingPolicy places queries              └─ results
                                                                    │
    global result stream  <── timestamp-ordered k-way merge  <──────┘

* :mod:`~repro.runtime.config` — :class:`RuntimeConfig`: shard count,
  batch size, queue depth (backpressure bound), worker backend and
  sharding policy.
* :mod:`~repro.runtime.router` — :class:`StreamRouter` with pluggable
  :class:`ShardingPolicy` (``round_robin``, ``hash``, ``label_affinity``).
  Parallelism is per *query* by default — each query lives on exactly one
  shard, and a tuple is routed to every shard hosting a query whose
  alphabet contains the tuple's label (others cannot affect any result,
  §5.2) — and optionally *within* a query: one registered with
  ``partitions=K`` (or split live via
  :meth:`StreamingQueryService.split`) runs as ``K`` root-partition
  evaluators on distinct shards, whose streams merge back bit-exactly
  (:func:`merge_partition_events`).
* :mod:`~repro.runtime.protocol` — the typed wire protocol between the
  coordinator and its workers: control frames (``REGISTER`` / ``RESTORE``
  / ``DEREGISTER`` / ``RESULTS`` / ``PRESULTS`` / ``CHECKPOINT`` /
  ``MIGRATE`` / ``SUMMARY`` / ``METRICS`` / ``DRAIN`` / ``STOP``), batch
  frames and response frames (replies, live result events, failure
  reports), all with compact tuple-based encodings — no closures or rich
  objects ever cross a worker boundary.
* :mod:`~repro.runtime.worker` — :class:`ShardWorker`: a private
  :class:`~repro.core.engine.StreamingRPQEngine` per shard, fed batches
  from a bounded queue.  One serve loop, three transports:
  :class:`ThreadShardWorker` (``threading`` backend, GIL-bound, wins by
  label filtering), :class:`ProcessShardWorker` (``multiprocessing``
  backend, true CPU parallelism; shard state ships as serialized frames)
  and :class:`TcpShardWorker` (``tcp`` backend,
  :mod:`~repro.runtime.transport_tcp`: the coordinator dials
  ``repro worker --listen`` processes on remote hosts and the same frames
  flow over length-prefixed CRC-checked sockets — shards on other
  machines, recovered after a lost host by WAL replay; see
  ``docs/NETWORKING.md``).
* :mod:`~repro.runtime.merger` — lazy timestamp-ordered k-way merge of the
  per-query result streams into one global stream (shares the heap merge
  with :func:`repro.graph.stream.merge_streams`), plus the exact
  emission-key merge reassembling a partitioned query's streams.
* :mod:`~repro.runtime.rebalancer` — pluggable :class:`RebalancePolicy`
  (``manual``, ``load_aware``) proposing *live query migrations* between
  shards — and, for whale queries no migration can help, *live splits*
  (:class:`SplitPlan`) — from per-label routed-tuple loads.  The
  mechanisms are :meth:`StreamingQueryService.migrate` (drain the source
  shard, ship the evaluator as an order-exact checkpoint blob,
  ``MIGRATE`` -> ``RESTORE`` frames, re-route with an epoch bump) and
  :meth:`StreamingQueryService.split` (extract, partition the blob by
  tree root, restore each piece on its own shard) — the global result
  stream of a migrated or split run is bit-identical to an untouched one.
* :mod:`~repro.runtime.service` — :class:`StreamingQueryService`: lifecycle
  (``start`` / ``ingest`` / ``drain`` / ``stop``, also a context manager),
  dynamic ``register`` / ``deregister`` while running, aggregated
  per-shard metrics (:meth:`~service.StreamingQueryService.summary`) and
  coordinated checkpoint/restore of all shard engines
  (:meth:`~service.StreamingQueryService.checkpoint`, reusing
  :mod:`repro.core.checkpoint`).
* :mod:`~repro.runtime.durability` — crash safety:
  :class:`DurabilityManager` write-ahead-logs every routed tuple and
  topology change (one CRC-checked log per shard, written at routing
  time) and takes periodic *incremental* checkpoints (exact deltas
  against the last order-exact base, promoted to fresh bases so chain
  and log stay bounded); :class:`RecoveryManager` folds base + deltas,
  replays the per-shard WAL tails in parallel and hands back a service
  whose subsequent results are bit-identical to an uninterrupted run.
  Enable with ``RuntimeConfig(wal_dir=...)`` / ``serve --wal``; recover
  with ``repro recover``.
* :mod:`~repro.runtime.replication` — warm failover for the ``tcp``
  backend: with ``RuntimeConfig(standby_addresses=...)`` /
  ``serve --standby`` each shard keeps a *hot standby* on a second worker
  process — :class:`ReplicationManager` streams every logged record to a
  live-but-muted replica as it is written, and on primary loss the
  service *promotes* the standby (unmute at the exact acked LSN, adopt
  the session, re-arm in the background) instead of pausing for WAL
  replay: zero records replayed, bit-identical results.  See the
  replication section of ``docs/NETWORKING.md``.
* :mod:`~repro.runtime.observability` — the runtime's eyes:
  a dependency-free :class:`MetricsRegistry` (counters, gauges,
  log-bucketed histograms) that every service instruments itself into,
  rendered as Prometheus text exposition; structured logging
  (:func:`configure_logging`, text or JSON lines, operation-ID
  correlation across coordinator and workers for migrate / split /
  recover); and an :class:`ObservabilityServer` — a stdlib HTTP thread
  serving ``/metrics`` and ``/healthz`` when
  ``RuntimeConfig(metrics_port=...)`` / ``serve --metrics-port`` is set.
  Worker-side counters travel over the existing typed ``METRICS``
  frames, so both backends export identically-shaped series.  See
  ``docs/OBSERVABILITY.md``.

Because every shard sees its tuples in stream order — and a partitioned
query's members each see the query's full stream while owning disjoint
spanning trees — the service's output is tuple-for-tuple identical to the
single-threaded engine, verified by ``tests/test_runtime_service.py`` and
``tests/test_runtime_partition.py``.

Command-line interface::

    # evaluate one query through the sharded runtime, on real cores
    python -m repro run --query "a+" --input stream.csv --window 50 \
                        --shards 4 --batch-size 128 --backend multiprocessing

    # run a service with several persistent queries across shards
    python -m repro serve --input stream.csv --window 50 --shards 4 \
                          --query "chains=follows+" --query "pings=ping ping*" \
                          --policy label_affinity --checkpoint state.json

``serve`` flags: repeatable ``--query [name=]expr``, ``--shards``,
``--backend`` (worker backend), ``--batch-size``, ``--queue-depth``,
``--policy`` (sharding policy), ``--partitions`` (root partitions per
query), ``--rebalance`` / ``--rebalance-interval`` (live rebalancing),
``--semantics``, ``--deletions``, ``--limit``, ``--checkpoint PATH``
(write a coordinated checkpoint after draining), ``--show-results N``
(print the head of the merged global result stream).

Benchmarks: ``benchmarks/bench_runtime_scaling.py`` (backend × shard
count vs the single-threaded engine),
``benchmarks/bench_rebalancing.py`` (live migration vs a skewed
placement) and ``benchmarks/bench_partitioned_whale.py`` (whale splitting
vs a pinned placement); each emits a machine-readable
``results/BENCH_*.json`` record gated by
``benchmarks/check_regression.py``.
"""

from . import protocol
from .config import BACKENDS, FSYNC_POLICIES, REBALANCE_POLICIES, SHARDING_POLICIES, RuntimeConfig
from .durability import DurabilityManager, RecoveryManager, RecoveryResult
from .merger import (
    TaggedResultEvent,
    collect_results,
    merge_partition_events,
    merge_result_events,
    merge_result_streams,
)
from .observability import (
    MetricsRegistry,
    ObservabilityServer,
    configure_logging,
    get_logger,
    new_operation_id,
)
from .rebalancer import (
    LoadAwarePolicy,
    ManualPolicy,
    MigrationPlan,
    RebalancePlan,
    RebalancePolicy,
    ShardLoad,
    SplitPlan,
    make_rebalance_policy,
)
from .replication import ReplicationManager, StandbyReplica
from .router import (
    HashPolicy,
    LabelAffinityPolicy,
    RoundRobinPolicy,
    ShardingPolicy,
    ShardView,
    StreamRouter,
    make_policy,
)
from .service import StreamingQueryService
from .transport_tcp import TcpShardWorker, TcpWorkerServer
from .worker import (
    WORKER_BACKENDS,
    ProcessShardWorker,
    ShardEngineServer,
    ShardWorker,
    ThreadShardWorker,
    create_worker,
)

__all__ = [
    "BACKENDS",
    "FSYNC_POLICIES",
    "REBALANCE_POLICIES",
    "SHARDING_POLICIES",
    "WORKER_BACKENDS",
    "DurabilityManager",
    "HashPolicy",
    "LabelAffinityPolicy",
    "LoadAwarePolicy",
    "ManualPolicy",
    "MetricsRegistry",
    "MigrationPlan",
    "ObservabilityServer",
    "ProcessShardWorker",
    "RebalancePlan",
    "RebalancePolicy",
    "RecoveryManager",
    "RecoveryResult",
    "ReplicationManager",
    "RoundRobinPolicy",
    "RuntimeConfig",
    "ShardEngineServer",
    "ShardLoad",
    "ShardView",
    "ShardWorker",
    "ShardingPolicy",
    "SplitPlan",
    "StandbyReplica",
    "StreamRouter",
    "StreamingQueryService",
    "TaggedResultEvent",
    "TcpShardWorker",
    "TcpWorkerServer",
    "ThreadShardWorker",
    "collect_results",
    "configure_logging",
    "create_worker",
    "get_logger",
    "make_policy",
    "make_rebalance_policy",
    "merge_partition_events",
    "merge_result_events",
    "merge_result_streams",
    "new_operation_id",
    "protocol",
]
