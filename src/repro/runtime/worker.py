"""Shard workers: each owns a private engine and speaks the wire protocol.

A shard worker is the unit of parallelism of the runtime.  It owns a
private :class:`~repro.core.engine.StreamingRPQEngine` (no state is shared
between shards, in the spirit of per-core silos in main-memory DBMSs) and
communicates with the coordinator *exclusively* through the typed frames
of :mod:`repro.runtime.protocol`:

* **batches** of streaming graph tuples, processed in stream order;
* **control frames** — registration, checkpointing, result fetches and
  metric reads, executed on the worker against its engine, serialized
  with the surrounding batches;
* **response frames** — replies, live result events and failure reports
  flowing back on one multiplexed queue.

Three cooperating pieces implement this:

* :class:`ShardEngineServer` — the backend-agnostic server side: decodes
  frames, executes them against the engine, encodes the results.
* :func:`serve_shard` — the worker loop, identical for every backend; it
  pulls request frames and pushes response frames.  One code path, two
  transports.
* :class:`ShardWorker` — the coordinator-side proxy: typed methods
  (``register_query``, ``fetch_results``, ``checkpoint_query``, ...) that
  frame requests, await replies and re-raise worker errors.  Transports
  subclass it: :class:`ThreadShardWorker` runs :func:`serve_shard` on a
  daemon thread over ``queue.Queue``; :class:`ProcessShardWorker` runs it
  in a child process over ``multiprocessing.Queue``, escaping the GIL for
  CPU-bound workloads; :class:`~repro.runtime.transport_tcp.TcpShardWorker`
  dials a remote ``repro worker --listen`` process and runs the same loop
  over CRC-checked socket frames — shards on other machines.

The bounded request queue provides backpressure: ``submit`` blocks once
the worker is ``queue_depth`` batches behind.

Because every frame payload is plain scalars/bytes, shard state is
explicitly serializable: the process backend boots its child from replayed
``REGISTER``/``RESTORE`` frames and ships final state back at ``STOP``, so
a stopped worker can still be inspected (and arbitrary-semantics queries
even restarted) from the coordinator.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.checkpoint import canonical_bytes, decode_rapq, encode_rapq
from ..core.columnar import promote_evaluator
from ..core.columnar.batch import ColumnarBatch
from ..core.columnar.kernels import fastpath_name
from ..core.engine import StreamingRPQEngine
from ..core.results import ResultStream
from ..errors import RuntimeStateError, ShardWorkerError, WireProtocolError, WorkerUnavailableError
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..metrics.collectors import ThroughputMeter
from . import protocol
from .config import RuntimeConfig
from .observability.logs import configure_logging, get_logger
from .observability.registry import Histogram
from .observability.tracing import Tracer, parse_context

__all__ = [
    "ShardEngineServer",
    "ShardWorker",
    "ThreadShardWorker",
    "ProcessShardWorker",
    "WORKER_BACKENDS",
    "create_worker",
    "serve_shard",
]

#: Callback signature for live results: (query, source, target, timestamp).
ResultCallback = Callable[[str, Vertex, Vertex, int], None]

#: Seconds between liveness checks while awaiting a reply.
_REPLY_POLL_SECONDS = 1.0

#: Batches whose worker-CPU time exceeds this many seconds draw a WARNING
#: log record (rate-limited by :data:`SLOW_BATCH_WARN_INTERVAL`).
SLOW_BATCH_SECONDS = 1.0

#: Minimum wall-clock seconds between two slow-batch warnings per shard,
#: so a persistently slow shard warns periodically instead of flooding.
SLOW_BATCH_WARN_INTERVAL = 10.0

_LOG = get_logger("runtime.worker")


def _named_payload(payload) -> Tuple[str, Optional[str]]:
    """Split a name-addressed control payload into ``(name, operation_id)``.

    Older coordinators send the bare query name; newer ones may send a
    ``(name, operation_id)`` pair so worker-side log records share the
    coordinator's correlation ID.  Both decode here (version tolerance).
    """
    if isinstance(payload, tuple):
        return payload[0], (payload[1] if len(payload) > 1 else None)
    return payload, None


# --------------------------------------------------------------------- #
# Server side (runs wherever the engine lives)
# --------------------------------------------------------------------- #


class ShardEngineServer:
    """Executes protocol frames against a private engine.

    This is the *server* half of the worker protocol, shared verbatim by
    every backend: the threading transport runs it on a daemon thread, the
    multiprocessing transport in a child process, and a stopped worker
    executes control frames against it inline for assembly and inspection.
    """

    def __init__(self, shard_id: int, window: WindowSpec, config: RuntimeConfig) -> None:
        self.shard_id = shard_id
        self.window = window
        self.config = config
        self.engine = StreamingRPQEngine(window)
        self.meter = ThroughputMeter()
        self.batches_processed = 0
        self.batch_seconds = Histogram()
        self._last_slow_warning = float("-inf")
        # Tracing rides the config, so spawned/remote workers inherit the
        # sample rate through the shipped config dict (HELLO handshake,
        # _process_worker_main) with no extra plumbing.  The worker-side
        # tracer never flips coins — it only *continues* traces whose
        # context arrived on a frame — so ``sample_rate`` here merely
        # arms the buffer.
        self.tracer = Tracer(config.trace_sample_rate, process=f"worker-{shard_id}")
        # End-to-end event latency: routing-time stamp (rides the trace
        # context) to batch completion at this worker.
        self.event_latency = Histogram()

    # Batches ----------------------------------------------------------- #

    def process_batch(self, payload, collect_results: bool, ctx=None) -> Optional[Tuple]:
        """Process one ``BATCH`` payload; optionally collect live results.

        Returns the ``EVENTS`` payload (``(query, source, target, tau)``
        records) when ``collect_results`` and the batch produced any, else
        ``None``.

        ``ctx`` is the optional frame-borne trace context of a *sampled*
        batch: when present, evaluation is wrapped in a child span parented
        on the coordinator's ingest span, and the context's routing-time
        stamp closes the end-to-end event latency into
        :attr:`event_latency`.  The context never reaches the payload
        bytes, so evaluation is bit-identical with or without it.
        """
        parsed = parse_context(ctx)
        span = None
        if parsed is not None:
            trace_id, parent_id, stamp_wall = parsed
            span = self.tracer.start_span(
                "process_batch", trace_id=trace_id, parent_id=parent_id, shard=self.shard_id
            )
        # Busy time is *CPU* time of this worker's thread, not wall clock:
        # on a host with fewer cores than busy shards, wall clock charges
        # each batch for time other workers held the GIL/CPU, which would
        # make per-shard load (and the rebalancer's view of it) look worse
        # the more balanced the service is.
        started = time.thread_time()
        if ColumnarBatch.is_wire(payload):
            batch = ColumnarBatch.from_wire(payload)
            count = len(batch)
            produced = self.engine.process_batch(batch)
            events = list(produced) if collect_results and produced else None
        else:
            count = len(payload)
            events = [] if collect_results else None
            for wire in payload:
                tup = StreamingGraphTuple.from_wire(wire)
                produced = self.engine.process(tup)
                if events is not None and produced:
                    for name, pairs in produced.items():
                        for source, target in pairs:
                            events.append((name, source, target, tup.timestamp))
        elapsed = time.thread_time() - started
        self.meter.record_batch(count, elapsed)
        self.batch_seconds.observe(elapsed)
        self.batches_processed += 1
        if span is not None:
            # Event latency is wall clock across processes: the routing
            # stamp was taken by the coordinator, so the measurement is as
            # good as the hosts' clock alignment (exact in-process).
            self.event_latency.observe(max(time.time() - stamp_wall, 0.0))
            self.tracer.finish(span, tuples=count, events=len(events) if events else 0)
        if elapsed >= SLOW_BATCH_SECONDS:
            now = time.monotonic()
            if now - self._last_slow_warning >= SLOW_BATCH_WARN_INTERVAL:
                self._last_slow_warning = now
                _LOG.warning(
                    "slow batch: %d tuples took %.3fs of worker CPU (threshold %.2fs)",
                    count,
                    elapsed,
                    SLOW_BATCH_SECONDS,
                    extra={"shard": self.shard_id},
                )
        return protocol.encode_events(events) if events else None

    # Control frames ---------------------------------------------------- #

    def _log_op(self, op: str, name: str, operation_id: Optional[str]) -> None:
        """INFO-log one topology-changing control op, carrying the operation ID."""
        extra: Dict[str, object] = {"shard": self.shard_id}
        if operation_id is not None:
            extra["operation_id"] = operation_id
        _LOG.info("%s %r on shard %d", op.lower(), name, self.shard_id, extra=extra)

    def execute(self, op: str, payload):
        """Execute one control op and return its reply payload.

        Payload shapes are version-tolerant on the coordinator-to-worker
        direction: ``REGISTER``/``RESTORE`` accept an optional trailing
        operation-ID element and ``DEREGISTER``/``MIGRATE`` accept either
        a bare name or a ``(name, operation_id)`` pair (see
        :mod:`repro.runtime.protocol`).
        """
        if op == protocol.REGISTER:
            name, expression, semantics, max_nodes_per_tree, partition = payload[:5]
            op_id = payload[5] if len(payload) > 5 else None
            self._log_op(op, name, op_id)
            self.engine.register(name, expression, semantics, max_nodes_per_tree, partition)
            return None
        if op == protocol.RESTORE:
            name, semantics, blob = payload[:3]
            op_id = payload[3] if len(payload) > 3 else None
            self._log_op(op, name, op_id)
            # Promote restored evaluators onto the columnar fast path: the
            # checkpoint blob is the scalar format-2 form (shippable,
            # version-stable), and promotion is exact — the promoted
            # evaluator continues the stream bit-identically.
            self.engine.register_evaluator(name, promote_evaluator(decode_rapq(blob)), semantics)
            return None
        if op == protocol.DEREGISTER:
            name, op_id = _named_payload(payload)
            self._log_op(op, name, op_id)
            self.engine.deregister(name)
            return None
        if op == protocol.RESULTS:
            return self.engine.query(payload).results.to_wire()
        if op == protocol.PARTITION_RESULTS:
            registered = self.engine.query(payload)
            keys = getattr(registered.evaluator, "emission_keys", None)
            if keys is None:
                raise RuntimeStateError(
                    f"query {payload!r} on shard {self.shard_id} has no emission keys "
                    f"({registered.semantics!r} semantics); only RAPQ evaluators "
                    f"produce partition-mergeable streams"
                )
            return (registered.results.to_wire(), tuple(keys))
        if op == protocol.CHECKPOINT:
            # Bare name, or ``(name, trace_ctx)`` from a tracing coordinator.
            name, ctx = payload if isinstance(payload, tuple) else (payload, None)
            return self._traced("checkpoint", ctx, lambda: encode_rapq(self.engine.query(name).evaluator))
        if op == protocol.MIGRATE:
            name, op_id = _named_payload(payload)
            self._log_op(op, name, op_id)
            registered = self.engine.query(name)
            if registered.semantics != "arbitrary":
                # The same serialization restriction that stops a process
                # worker holding RSPQ state from restarting: positional node
                # identity cannot cross a shard boundary.
                raise RuntimeStateError(
                    f"query {name!r} cannot migrate off shard {self.shard_id}: queries "
                    f"with non-'arbitrary' semantics ({registered.semantics!r}) hold "
                    f"evaluator state that cannot be shipped between shards"
                )
            partition = getattr(registered.evaluator, "partition", None)
            wire_partition = None if partition is None else partition.to_wire()
            return (registered.semantics, wire_partition, encode_rapq(registered.evaluator))
        if op == protocol.SUMMARY:
            return self.engine.summary()
        if op == protocol.METRICS:
            return self.metrics()
        if op == protocol.DRAIN:
            # The reply itself is the barrier; the payload (historically
            # always ``None``) may carry a trace context, recording the
            # barrier as a span of the sampled trace.
            return self._traced("drain", payload, lambda: None)
        raise WireProtocolError(f"unknown control op {op!r}")

    def _traced(self, name: str, ctx, fn):
        """Run ``fn`` inside a child span when ``ctx`` is a trace context."""
        parsed = parse_context(ctx)
        if parsed is None:
            return fn()
        trace_id, parent_id, _ = parsed
        span = self.tracer.start_span(name, trace_id=trace_id, parent_id=parent_id, shard=self.shard_id)
        try:
            return fn()
        finally:
            self.tracer.finish(span)

    def metrics(self) -> Dict[str, object]:
        """Processing counters and per-query statistics of this shard.

        The reply is a plain dict riding the typed ``METRICS`` frame, so
        both backends export identical numbers.  Alongside the original
        scalar counters it carries the batch-latency and end-to-end
        event-latency histogram states (adoptable via
        :meth:`.observability.Histogram.load_state`), the tracer's drained
        span buffer (``"spans"``, only when non-empty) and a ``queries``
        sub-dict with per-query tuple/result counters, window-expiry
        totals and Δ-index sizes — consumers use ``.get()`` so either
        side may be older (version tolerance).
        """
        stats: Dict[str, object] = {
            "tuples": float(self.meter.tuples),
            "batches": float(self.batches_processed),
            "busy_seconds": self.meter.elapsed_seconds,
            "batch_seconds": self.batch_seconds.state(),
            "event_latency": self.event_latency.state(),
            "fastpath": fastpath_name(),
        }
        spans = self.tracer.drain()
        if spans:
            # Buffered spans ride the existing METRICS snapshot to the
            # coordinator (drained: each span ships exactly once).
            stats["spans"] = spans
        if self.meter.elapsed_seconds > 0:
            stats["throughput_eps"] = self.meter.edges_per_second()
        queries: Dict[str, Dict[str, float]] = {}
        for registered in self.engine.queries():
            evaluator_stats = dict(getattr(registered.evaluator, "stats", {}))
            index = registered.evaluator.index_size()
            queries[registered.name] = {
                "tuples_processed": float(evaluator_stats.get("tuples_processed", 0.0)),
                "events": float(len(registered.results)),
                "index_trees": float(index.get("trees", 0)),
                "index_nodes": float(index.get("nodes", 0)),
                "expiry_seconds": float(evaluator_stats.get("expiry_seconds", 0.0)),
                "expiry_runs": float(evaluator_stats.get("expiry_runs", 0.0)),
            }
        stats["queries"] = queries
        return stats

    # Replication (muted standby apply) --------------------------------- #

    def apply_replica_records(self, records, ctx=None) -> None:
        """Apply a run of replicated WAL records into this engine, muted.

        ``ctx`` is the optional trace context that rode the ``REPLICATE``
        frame: when present the apply run is recorded as a child span, so
        a sampled tuple's trace extends from the coordinator through the
        primary *into the standby* — after a promotion the standby ships
        those spans back via ``METRICS`` like any worker, which is what
        makes a failover trace connected end to end.

        This is the *standby* half of hot-standby replication
        (:mod:`repro.runtime.replication`): each record is the
        coordinator's WAL form ``(record_type, data)`` — tuple records
        carry the tuple's wire form, topology records the same payloads
        the WAL logs — and applying them maintains exactly the engine
        state the primary built from the same stream.  Results are
        *suppressed* (``collect_results=False``): the replica's evaluators
        accumulate their result streams internally, so a later promotion
        can serve ``RESULTS`` fetches bit-identically, but no ``EVENTS``
        frames are produced while the shard is a standby.  Unmuting
        happens at promotion: the serve loop takes over from the exact
        LSN the apply loop reached, so live emission resumes with the
        first post-promotion batch.

        Consecutive tuple records are batched into one engine pass —
        through the same columnar fast path the primary's ``BATCH``
        frames take (when ``wire_format`` is columnar), so a standby
        keeps up with a primary that evaluates vectorized batches;
        topology records are barriers (execution order), exactly as WAL
        replay orders them.
        """
        from .durability import wal as wal_mod

        return self._traced(
            "replicate_apply", ctx, lambda: self._apply_replica_records(records, wal_mod)
        )

    def _apply_replica_records(self, records, wal_mod) -> None:
        columnar = self.config.wire_format == "columnar"
        pending = []

        def flush() -> None:
            if not pending:
                return
            if columnar:
                rows = [StreamingGraphTuple.from_wire(wire) for wire in pending]
                self.process_batch(ColumnarBatch.from_tuples(rows).to_wire(), False)
            else:
                self.process_batch(tuple(pending), False)
            pending.clear()

        for record_type, data in records:
            if record_type == wal_mod.TUPLE:
                pending.append(tuple(data))
                continue
            flush()
            if record_type == wal_mod.REGISTER:
                name, expression, semantics, max_nodes, partition = data
                self.execute(
                    protocol.REGISTER,
                    (name, expression, semantics, max_nodes, tuple(partition) if partition else None),
                )
            elif record_type == wal_mod.RESTORE:
                name, semantics, state = data
                self.execute(protocol.RESTORE, (name, semantics, canonical_bytes(state)))
            elif record_type == wal_mod.DEREGISTER:
                self.execute(protocol.DEREGISTER, data)
            else:
                raise WireProtocolError(f"unknown replicated record type {record_type!r}")
        flush()

    # State shipping (process transport) -------------------------------- #

    def export_bootstrap(self) -> Tuple:
        """Replayable ``(op, payload)`` frames reconstructing this server.

        Arbitrary-semantics evaluators travel as encoded state (full
        fidelity even when restored from a checkpoint); other evaluators
        are stateless here pre-start, so their original registration is
        replayed instead.
        """
        frames = []
        for registered in self.engine.queries():
            if registered.semantics == "arbitrary":
                frames.append(
                    (protocol.RESTORE, (registered.name, "arbitrary", encode_rapq(registered.evaluator)))
                )
            else:
                frames.append(
                    (
                        protocol.REGISTER,
                        (
                            registered.name,
                            str(registered.analysis.expression),
                            registered.semantics,
                            getattr(registered.evaluator, "max_nodes_per_tree", None),
                            None,  # partitioned evaluators are arbitrary, shipped via RESTORE
                        ),
                    )
                )
        return tuple(frames)

    def export_state(self) -> Tuple:
        """Final shard state shipped in the ``STOP`` reply.

        Arbitrary evaluators ship their full encoded state; others ship
        their result events only (their tree state cannot be serialized,
        see :mod:`repro.core.checkpoint`).
        """
        queries = []
        for registered in self.engine.queries():
            blob = events = None
            if registered.semantics == "arbitrary":
                blob = encode_rapq(registered.evaluator)
            else:
                events = registered.results.to_wire()
            queries.append(
                (
                    registered.name,
                    registered.semantics,
                    str(registered.analysis.expression),
                    blob,
                    events,
                )
            )
        return (self.metrics(), self.batches_processed, tuple(queries))

    def apply_state(self, state: Tuple) -> Tuple[str, ...]:
        """Adopt a peer server's :meth:`export_state`; returns degraded names.

        Degraded queries are non-arbitrary ones on a shard that processed
        any batch: their results are replayed faithfully, but the
        evaluator's window and tree state could not cross the wire, so
        they can be inspected but not resumed.  The batch count is a
        conservative proxy — a relevant tuple may have reached the
        evaluator without producing a result yet, and resuming from an
        emptied window would silently diverge from the engine.
        """
        metrics, batches, queries = state
        self.meter.tuples = int(metrics.get("tuples", 0))
        self.meter.elapsed_seconds = float(metrics.get("busy_seconds", 0.0))
        self.batches_processed = int(batches)
        histogram_state = metrics.get("batch_seconds")
        if histogram_state:
            self.batch_seconds.load_state(histogram_state)
        event_state = metrics.get("event_latency")
        if event_state:
            self.event_latency.load_state(event_state)
        spans = metrics.get("spans")
        if spans:
            # Final spans shipped at STOP re-buffer here, so the next
            # coordinator metrics read still harvests them.
            self.tracer.ingest(spans)
        self.engine = StreamingRPQEngine(self.window)
        degraded = []
        for name, semantics, expression, blob, events in queries:
            if blob is not None:
                self.engine.register_evaluator(name, promote_evaluator(decode_rapq(blob)), semantics)
            else:
                registered = self.engine.register(name, expression, semantics)
                if events:
                    registered.evaluator.results = ResultStream.from_wire(events)
                if batches:
                    degraded.append(name)
        return tuple(degraded)


def serve_shard(
    server: ShardEngineServer,
    requests,
    responses,
    emit_results: bool,
    ship_state_on_stop: bool,
) -> None:
    """The worker loop — identical for every backend (one code path).

    Pulls request frames from ``requests`` and pushes response frames to
    ``responses`` until a ``STOP`` control frame arrives.  A batch failure
    poisons the shard: the failure is reported once via a ``FAILURE``
    frame and later batches are consumed but discarded, so producers
    blocked on the bounded request queue are always released.
    """
    failed = False
    while True:
        frame = requests.get()
        kind = frame[0]
        if kind == protocol.BATCH:
            if failed:
                continue
            try:
                # Optional third element: trace context of a sampled batch.
                events = server.process_batch(
                    frame[1], emit_results, frame[2] if len(frame) > 2 else None
                )
            except BaseException as exc:  # noqa: BLE001 - reported to coordinator
                failed = True
                responses.put((protocol.FAILURE, protocol.encode_exception(exc)))
            else:
                if events:
                    responses.put((protocol.EVENTS, events))
        elif kind == protocol.CONTROL:
            _, seq, op, payload = frame
            if op == protocol.STOP:
                final = server.export_state() if ship_state_on_stop else None
                responses.put((protocol.REPLY, seq, final))
                return
            try:
                result = server.execute(op, payload)
            except BaseException as exc:  # noqa: BLE001 - reported to coordinator
                responses.put((protocol.ERROR, seq, protocol.encode_exception(exc)))
            else:
                responses.put((protocol.REPLY, seq, result))
        else:  # pragma: no cover - coordinator never sends other kinds
            responses.put(
                (
                    protocol.FAILURE,
                    protocol.encode_exception(WireProtocolError(f"unknown frame kind {kind!r}")),
                )
            )
            failed = True


# --------------------------------------------------------------------- #
# Coordinator side (proxy + transports)
# --------------------------------------------------------------------- #


class ShardWorker:
    """Coordinator-side proxy for one shard, speaking the wire protocol.

    Lifecycle: ``start()`` -> any number of ``submit()`` / typed control
    calls / ``drain()`` -> ``stop()``.  Before ``start`` (and after
    ``stop``), control calls execute inline against a local
    :class:`ShardEngineServer` so a service can be assembled, checkpointed
    and inspected without running workers.

    Args:
        shard_id: position of this worker in the service's shard list.
        window: window specification shared by every query on the shard.
        config: runtime configuration (queue depth is read from it).
        on_result: optional live-result callback, invoked from the
            coordinator thread (while it pumps response frames) as
            ``on_result(query_name, source, target, timestamp)`` for every
            newly reported pair.
    """

    #: Backend name as accepted by :class:`~repro.runtime.RuntimeConfig`.
    backend = "abstract"

    def __init__(
        self,
        shard_id: int,
        window: WindowSpec,
        config: RuntimeConfig,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        self.shard_id = shard_id
        self.window = window
        self.config = config
        self.on_result = on_result
        self._server = ShardEngineServer(shard_id, window, config)
        self._requests = None
        self._responses = None
        self._seq = 0
        self._failure: Optional[BaseException] = None
        self._degraded: Tuple[str, ...] = ()

    # Transport hooks ---------------------------------------------------- #

    #: Whether the ``STOP`` reply must carry final shard state back (the
    #: transport's memory does not outlive the worker).
    ship_state_on_stop = False

    def _make_channels(self) -> Tuple:
        """Return the ``(requests, responses)`` queue pair."""
        raise NotImplementedError

    def _launch(self) -> None:
        """Start the transport running :func:`serve_shard`."""
        raise NotImplementedError

    def _transport_alive(self) -> bool:
        """Whether the transport is still able to produce replies."""
        raise NotImplementedError

    def _join(self) -> None:
        """Wait for the transport to terminate and release its resources."""
        raise NotImplementedError

    def transport_stats(self) -> Optional[Dict[str, object]]:
        """Connection-level counters of a networked transport, or ``None``.

        In-process transports have no connection to report on; the tcp
        backend returns address, connectedness, reconnect counts and frame
        byte/latency counters.  Safe from any thread (plain attribute
        reads) — the observability refresh calls it even for a worker
        whose engine-side ``metrics()`` would raise.
        """
        return None

    # Lifecycle ---------------------------------------------------------- #

    @property
    def running(self) -> bool:
        """Whether the transport is started and still able to serve."""
        return self._requests is not None and self._transport_alive()

    @property
    def failure(self) -> Optional[BaseException]:
        """The sticky failure that poisoned this shard, or ``None``.

        A plain attribute read — safe from any thread (the health endpoint
        reads it), unlike the control-frame methods which are
        coordinator-thread only.
        """
        return self._failure

    @property
    def engine(self) -> StreamingRPQEngine:
        """The local engine (authoritative only while the worker is stopped)."""
        return self._server.engine

    def start(self) -> None:
        """Create the channels and launch the transport's serve loop."""
        if self.running:
            raise RuntimeStateError(f"shard {self.shard_id} is already running")
        self._check_failure()  # a poisoned shard cannot be restarted
        if self._degraded:
            raise RuntimeStateError(
                f"shard {self.shard_id} cannot restart: queries {sorted(self._degraded)} use "
                f"non-'arbitrary' semantics whose engine state could not be shipped back from "
                f"the previous {self.backend!r} run"
            )
        self._requests, self._responses = self._make_channels()
        try:
            self._launch()
        except BaseException:
            self._requests = None
            self._responses = None
            raise

    def submit(self, batch: Sequence[StreamingGraphTuple], trace_ctx=None) -> None:
        """Enqueue one batch; blocks when the worker is too far behind.

        ``trace_ctx`` (when the batch carries a sampled tuple) rides the
        frame as an optional trailing element — beside the payload, never
        inside it, so the encoded batch bytes are identical either way.
        The frame tuple is built once: the tcp transport's partial-send
        resume keys on object identity.
        """
        self._pump()
        self._check_failure()
        if not self.running:
            self._check_transport_death()
            raise RuntimeStateError(f"shard {self.shard_id} is not running; call start() first")
        if self.config.wire_format == "columnar":
            frame = (protocol.BATCH, protocol.encode_batch_columnar(batch))
        else:
            frame = (protocol.BATCH, protocol.encode_batch(batch))
        if trace_ctx is not None:
            frame += (trace_ctx,)
        # Bounded put with liveness polling: a worker that dies while its
        # queue is full must surface as an error, not wedge the coordinator.
        while True:
            try:
                self._requests.put(frame, timeout=_REPLY_POLL_SECONDS)
                return
            except queue.Full:
                self._pump()
                self._check_failure()
                self._check_transport_death()

    def request(self, op: str, payload=None):
        """Send one control frame and return its reply payload.

        Executed inline against the local server when the worker is not
        running; otherwise framed onto the request queue, serialized with
        in-flight batches.
        """
        self._check_failure()
        if not self.running:
            self._check_transport_death()
            return self._server.execute(op, payload)
        self._seq += 1
        seq = self._seq
        self._requests.put((protocol.CONTROL, seq, op, payload))
        result = self._await_reply(seq)
        self._check_failure()
        return result

    def replay_batch(self, batch: Sequence[StreamingGraphTuple]) -> None:
        """Feed one batch to the local engine of a *stopped* worker.

        The durability subsystem's recovery path uses this to replay a
        shard's WAL tail: records execute against the same
        :class:`ShardEngineServer` (through the same batch encoding) the
        live serve loop uses, so replayed work is metered in the shard's
        counters exactly like live work.

        Raises:
            RuntimeStateError: the worker is running — live batches must
                go through :meth:`submit` so they serialize with control
                frames on the request queue.
        """
        if self.running:
            raise RuntimeStateError(
                f"shard {self.shard_id} is running; replay_batch is only for "
                f"stopped workers (recovery replay) — use submit() instead"
            )
        self._check_failure()
        self._server.process_batch(protocol.encode_batch(batch), False)

    def drain(self, trace_ctx=None) -> None:
        """Block until every batch submitted so far has been processed.

        The ``DRAIN`` payload (historically always ``None``) optionally
        carries a trace context so the barrier shows up as a span of the
        sampled trace.
        """
        self.request(protocol.DRAIN, trace_ctx)

    def stop(self) -> None:
        """Terminate the serve loop with ``STOP`` and adopt shipped state."""
        if self.running:
            self._seq += 1
            seq = self._seq
            self._requests.put((protocol.CONTROL, seq, protocol.STOP, self.ship_state_on_stop))
            final = self._await_reply(seq)
            self._join()
            self._requests = None
            self._responses = None
            if final is not None:
                self._degraded = self._server.apply_state(final)
        else:
            try:
                self._check_transport_death()  # a crash must not pass as a clean stop
            finally:
                self._requests = None
                self._responses = None
        self._check_failure()

    def bootstrap_frames(self) -> Tuple:
        """Replayable ``(op, payload)`` frames reconstructing this worker's engine.

        Authoritative only while the worker is stopped (before ``start``
        or after ``stop``), when the local server holds the engine.  The
        tcp transport ships these in its ``HELLO`` handshake; the
        replication layer ships the same frames when arming a hot standby.
        """
        return self._server.export_bootstrap()

    # Typed control calls (the service speaks only these) ---------------- #

    def register_query(
        self,
        name: str,
        expression: str,
        semantics: str = "arbitrary",
        max_nodes_per_tree: Optional[int] = None,
        partition: Optional[Tuple[int, int]] = None,
        operation_id: Optional[str] = None,
    ) -> None:
        """Register a persistent query (or one root partition of one)."""
        payload: Tuple = (name, expression, semantics, max_nodes_per_tree, partition)
        if operation_id is not None:
            payload += (operation_id,)
        self.request(protocol.REGISTER, payload)

    def restore_query(
        self,
        name: str,
        blob: bytes,
        semantics: str = "arbitrary",
        operation_id: Optional[str] = None,
    ) -> None:
        """Adopt an :func:`~repro.core.checkpoint.encode_rapq` evaluator blob."""
        payload: Tuple = (name, semantics, blob)
        if operation_id is not None:
            payload += (operation_id,)
        self.request(protocol.RESTORE, payload)

    def deregister_query(self, name: str, operation_id: Optional[str] = None) -> None:
        """Remove a query (its accumulated results are discarded)."""
        self.request(protocol.DEREGISTER, name if operation_id is None else (name, operation_id))

    def fetch_results(self, name: str) -> ResultStream:
        """A consistent point-in-time copy of one query's result stream."""
        return ResultStream.from_wire(self.request(protocol.RESULTS, name))

    def fetch_partition_results(self, name: str) -> Tuple[Tuple, Tuple[int, ...]]:
        """One partition's ``(event wire forms, emission keys)`` pair.

        The keys are what :func:`~repro.runtime.merger.merge_partition_events`
        needs to reassemble sibling partitions' streams into the exact
        unpartitioned stream; fetching them with the events (one control
        frame) keeps the pair consistent under concurrent batches.
        """
        events, keys = self.request(protocol.PARTITION_RESULTS, name)
        return events, keys

    def checkpoint_query(self, name: str, trace_ctx=None) -> bytes:
        """Encode one query's evaluator state (bytes out, ships anywhere)."""
        return self.request(protocol.CHECKPOINT, name if trace_ctx is None else (name, trace_ctx))

    def migrate_query(
        self, name: str, operation_id: Optional[str] = None
    ) -> Tuple[str, Optional[Tuple[int, int]], bytes]:
        """Extract one query's shippable form: ``(semantics, partition, blob)``.

        Unlike ``CHECKPOINT`` (whose non-arbitrary failure is a raw
        ``TypeError`` from deep inside the encoder), ``MIGRATE`` refuses
        unshippable semantics with a typed error, and its reply names the
        semantics and root partition authoritatively — the worker, not the
        coordinator's bookkeeping, knows what is registered.  The reply
        barrier drains this shard up to the extraction point; the query
        stays registered here until the coordinator confirms the blob
        landed on the target shard and sends ``DEREGISTER``.
        """
        semantics, partition, blob = self.request(
            protocol.MIGRATE, name if operation_id is None else (name, operation_id)
        )
        return semantics, partition, blob

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-query summary of this shard's engine."""
        return self.request(protocol.SUMMARY)

    def metrics(self) -> Dict[str, object]:
        """Processing counters and per-query statistics of this shard."""
        if self.running:
            return self.request(protocol.METRICS)
        return self._server.metrics()

    def queue_depth(self) -> int:
        """Best-effort depth (in batches) of the request queue.

        Reports ``0`` when the worker is not running or the platform's
        ``multiprocessing.Queue`` does not implement ``qsize`` (macOS).
        Safe to call from any thread — it never touches the reply queue.
        """
        if self._requests is None:
            return 0
        try:
            return self._requests.qsize()
        except NotImplementedError:  # pragma: no cover - platform-dependent
            return 0

    # Response pumping --------------------------------------------------- #

    def _await_reply(self, seq: int):
        """Block until the reply for ``seq`` arrives, dispatching events."""
        while True:
            try:
                frame = self._responses.get(timeout=_REPLY_POLL_SECONDS)
            except queue.Empty:
                if not self._transport_alive():
                    self._failure = self._failure or ShardWorkerError(
                        f"shard {self.shard_id} worker died without replying", self.shard_id
                    )
                    self._check_failure()
                continue
            kind = frame[0]
            if kind == protocol.EVENTS:
                self._dispatch_events(frame[1])
            elif kind == protocol.FAILURE:
                self._record_failure(frame[1])
            elif kind == protocol.ERROR:
                _, error_seq, wire = frame
                if error_seq == seq:
                    raise protocol.decode_exception(wire)
            else:  # REPLY
                _, reply_seq, payload = frame
                if reply_seq == seq:
                    return payload

    def _pump(self) -> None:
        """Drain pending response frames without blocking."""
        if self._responses is None:
            return
        while True:
            try:
                frame = self._responses.get_nowait()
            except queue.Empty:
                return
            kind = frame[0]
            if kind == protocol.EVENTS:
                self._dispatch_events(frame[1])
            elif kind == protocol.FAILURE:
                self._record_failure(frame[1])
            # stray REPLY/ERROR frames cannot occur: control calls always
            # consume their reply before the coordinator continues

    def _dispatch_events(self, payload) -> None:
        if self.on_result is None:
            return
        for name, source, target, timestamp in protocol.decode_events(payload):
            self.on_result(name, source, target, timestamp)

    def _record_failure(self, wire) -> None:
        if self._failure is None:
            self._failure = protocol.decode_exception(wire)

    def _check_transport_death(self) -> None:
        """Report a transport that died without a STOP handshake as a failure."""
        if self._requests is not None and not self._transport_alive():
            # Drain any queued FAILURE report first: it carries the precise
            # error (e.g. a WorkerUnavailableError naming the disconnect
            # reason) where the fallback below can only say "died".
            self._pump()
            if self._failure is None:
                self._failure = ShardWorkerError(
                    f"shard {self.shard_id} worker died unexpectedly", self.shard_id
                )
            self._check_failure()

    def _check_failure(self) -> None:
        # The failure is sticky: once a batch failed, the engine's window is
        # missing tuples and every result it would produce is suspect, so the
        # shard stays poisoned and every later interaction re-raises.
        if self._failure is not None:
            # A lost-connection failure keeps its distinct type so callers
            # (and health()) can tell "the worker's host went away" — which
            # WAL replay onto a fresh worker recovers — from an engine error.
            wrapper = (
                WorkerUnavailableError
                if isinstance(self._failure, WorkerUnavailableError)
                else ShardWorkerError
            )
            raise wrapper(
                f"shard {self.shard_id} failed while processing: {self._failure}", self.shard_id
            ) from self._failure


class ThreadShardWorker(ShardWorker):
    """Shard worker backed by a daemon ``threading.Thread``.

    The serve loop shares the proxy's :class:`ShardEngineServer` object, so
    post-stop state is naturally current and ``STOP`` ships no state.
    Python threads share the GIL: this backend wins by label filtering
    (each shard only touches tuples its queries can use), not CPU
    parallelism — use :class:`ProcessShardWorker` for that.
    """

    backend = "threading"
    ship_state_on_stop = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._thread: Optional[threading.Thread] = None

    def _make_channels(self):
        return queue.Queue(maxsize=self.config.queue_depth), queue.Queue()

    def _launch(self) -> None:
        self._thread = threading.Thread(
            target=serve_shard,
            args=(
                self._server,
                self._requests,
                self._responses,
                self.on_result is not None,
                self.ship_state_on_stop,
            ),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()

    def _transport_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _join(self) -> None:
        if self._thread is not None:
            self._thread.join()
        self._thread = None


def _mp_context():
    """Fork when the platform offers it (cheap, no re-import); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _process_worker_main(
    shard_id: int,
    window_args: Tuple[int, int],
    config_state: Dict[str, object],
    bootstrap: Tuple,
    requests,
    responses,
    emit_results: bool,
) -> None:
    """Child-process entry point: rebuild the server, replay, serve.

    Spawned children start with fresh logging state, so the runtime log
    configuration is re-applied here from the shipped config (forked
    children inherit the parent's handlers and simply reconfigure to the
    same settings).
    """
    config = RuntimeConfig.from_dict(config_state)
    configure_logging(config.log_level, config.log_format)
    server = ShardEngineServer(
        shard_id, WindowSpec(size=window_args[0], slide=window_args[1]), config
    )
    for op, payload in bootstrap:
        server.execute(op, payload)
    serve_shard(server, requests, responses, emit_results, ship_state_on_stop=True)


class ProcessShardWorker(ShardWorker):
    """Shard worker backed by a ``multiprocessing.Process`` — escapes the GIL.

    The child is bootstrapped from replayed ``REGISTER``/``RESTORE`` frames
    (shard state is explicitly serializable), and ``STOP`` ships the final
    state back so a stopped worker remains inspectable — and, for
    arbitrary-semantics queries, restartable — at the coordinator.  Result
    streams, metrics and checkpoints all travel the same typed frames as
    the threading backend; only the queue implementation differs.
    """

    backend = "multiprocessing"
    ship_state_on_stop = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ctx = _mp_context()
        self._process: Optional[multiprocessing.process.BaseProcess] = None

    def _make_channels(self):
        return self._ctx.Queue(maxsize=self.config.queue_depth), self._ctx.Queue()

    def _launch(self) -> None:
        self._process = self._ctx.Process(
            target=_process_worker_main,
            args=(
                self.shard_id,
                (self.window.size, self.window.slide),
                self.config.to_dict(),
                self._server.export_bootstrap(),
                self._requests,
                self._responses,
                self.on_result is not None,
            ),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._process.start()

    def _transport_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def _join(self) -> None:
        if self._process is not None:
            self._process.join()
            for channel in (self._requests, self._responses):
                channel.close()
                channel.join_thread()
        self._process = None


#: Registry of concurrency backends, keyed by ``RuntimeConfig.backend``.
WORKER_BACKENDS = {
    ThreadShardWorker.backend: ThreadShardWorker,
    ProcessShardWorker.backend: ProcessShardWorker,
}


def create_worker(
    shard_id: int,
    window: WindowSpec,
    config: RuntimeConfig,
    on_result: Optional[ResultCallback] = None,
) -> ShardWorker:
    """Build a shard worker using the backend named in ``config``."""
    if config.backend == "tcp" and config.backend not in WORKER_BACKENDS:
        # The tcp transport registers itself on import; import lazily so
        # this module stays socket-free for the in-process backends.
        from . import transport_tcp  # noqa: F401 - imported for registration

    try:
        backend = WORKER_BACKENDS[config.backend]
    except KeyError:
        raise ValueError(
            f"unknown worker backend {config.backend!r}; expected one of {sorted(WORKER_BACKENDS)}"
        ) from None
    return backend(shard_id, window, config, on_result=on_result)
