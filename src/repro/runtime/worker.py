"""Shard workers: each owns a private engine and consumes batches from a queue.

A :class:`ShardWorker` is the unit of parallelism of the runtime.  It owns
a private :class:`~repro.core.engine.StreamingRPQEngine` (no state is
shared between shards, in the spirit of per-core silos in main-memory
DBMSs) and consumes work from a bounded queue:

* **batches** of streaming graph tuples, processed in stream order;
* **control calls** — arbitrary functions executed *on the worker's
  thread* against its engine.  Registration, checkpointing and metric
  reads all travel through the queue, so the engine is only ever touched
  from one thread and calls are serialized with the surrounding batches.

The queue bound provides backpressure: ``submit`` blocks once the worker
is ``queue_depth`` batches behind.

The built-in backend runs each worker on a ``threading.Thread``.  The API
is deliberately process-shaped — only picklable batches and the
coordination points of a message queue — so a ``multiprocessing`` backend
can be slotted in behind :func:`create_worker` without changing the
service layer.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.engine import StreamingRPQEngine
from ..errors import RuntimeStateError, ShardWorkerError
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..metrics.collectors import ThroughputMeter
from .config import RuntimeConfig

__all__ = ["ShardWorker", "ThreadShardWorker", "WORKER_BACKENDS", "create_worker"]

#: Callback signature for live results: (query, source, target, timestamp).
ResultCallback = Callable[[str, Vertex, Vertex, int], None]


class ShardWorker:
    """Abstract shard worker API (see the module docstring).

    Lifecycle: ``start()`` → any number of ``submit()`` / ``call()`` /
    ``drain()`` → ``stop()``.  Before ``start`` (and after ``stop``),
    ``call`` executes inline so a service can be assembled, checkpointed
    and inspected without running threads.
    """

    def __init__(self, shard_id: int, window: WindowSpec, config: RuntimeConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        self.engine = StreamingRPQEngine(window)
        self.meter = ThroughputMeter()
        self.batches_processed = 0

    def start(self) -> None:
        raise NotImplementedError

    def submit(self, batch: Sequence[StreamingGraphTuple]) -> None:
        """Enqueue one batch; blocks when the worker is too far behind."""
        raise NotImplementedError

    def call(self, fn: Callable[[StreamingRPQEngine], object]) -> object:
        """Run ``fn(engine)`` on the worker, after all queued work; return its result."""
        raise NotImplementedError

    def drain(self) -> None:
        """Block until every batch submitted so far has been processed."""
        self.call(lambda engine: None)

    def stop(self) -> None:
        raise NotImplementedError

    def metrics(self) -> Dict[str, float]:
        """Processing counters of this shard (tuples, batches, throughput)."""
        stats: Dict[str, float] = {
            "tuples": float(self.meter.tuples),
            "batches": float(self.batches_processed),
            "busy_seconds": self.meter.elapsed_seconds,
        }
        if self.meter.elapsed_seconds > 0:
            stats["throughput_eps"] = self.meter.edges_per_second()
        return stats


class _ControlCall:
    """A function to run on the worker thread, with a box for the outcome."""

    __slots__ = ("fn", "result", "error", "done")

    def __init__(self, fn: Callable[[StreamingRPQEngine], object]) -> None:
        self.fn = fn
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()

    def wait(self) -> object:
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.result


_STOP = object()


class ThreadShardWorker(ShardWorker):
    """Shard worker backed by a daemon ``threading.Thread``.

    Args:
        shard_id: position of this worker in the service's shard list.
        window: window specification shared by every query on the shard.
        config: runtime configuration (queue depth is read from it).
        on_result: optional live-result callback, invoked from the worker
            thread as ``on_result(query_name, source, target, timestamp)``
            for every newly reported pair; it must be thread-safe.
    """

    def __init__(
        self,
        shard_id: int,
        window: WindowSpec,
        config: RuntimeConfig,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        super().__init__(shard_id, window, config)
        self.on_result = on_result
        self._queue: "queue.Queue" = queue.Queue(maxsize=config.queue_depth)
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise RuntimeStateError(f"shard {self.shard_id} is already running")
        self._check_failure()  # a poisoned shard cannot be restarted
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{self.shard_id}", daemon=True
        )
        self._thread.start()

    def submit(self, batch: Sequence[StreamingGraphTuple]) -> None:
        self._check_failure()
        if not self.running:
            raise RuntimeStateError(f"shard {self.shard_id} is not running; call start() first")
        self._queue.put(("batch", list(batch)))

    def call(self, fn: Callable[[StreamingRPQEngine], object]) -> object:
        self._check_failure()
        if not self.running:
            # Inline execution keeps assembly/inspection usable without threads.
            return fn(self.engine)
        request = _ControlCall(fn)
        self._queue.put(("call", request))
        result = request.wait()
        self._check_failure()
        return result

    def stop(self) -> None:
        if self.running:
            self._queue.put(_STOP)
            self._thread.join()
        self._thread = None
        self._check_failure()

    # ------------------------------------------------------------------ #
    # Worker thread
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            kind, payload = item
            if kind == "call":
                self._handle_call(payload)
            elif self._failure is None:
                # After a failure, batches are consumed and discarded so
                # producers blocked on the bounded queue are released; the
                # failure itself is re-raised at the next coordination point.
                try:
                    self._process_batch(payload)
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    self._failure = exc

    def _handle_call(self, request: _ControlCall) -> None:
        try:
            request.result = request.fn(self.engine)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            request.error = exc
        finally:
            request.done.set()

    def _process_batch(self, batch: List[StreamingGraphTuple]) -> None:
        started = time.perf_counter()
        if self.on_result is None:
            for tup in batch:
                self.engine.process(tup)
        else:
            for tup in batch:
                for name, pairs in self.engine.process(tup).items():
                    for source, target in pairs:
                        self.on_result(name, source, target, tup.timestamp)
        self.meter.record_batch(len(batch), time.perf_counter() - started)
        self.batches_processed += 1

    def _check_failure(self) -> None:
        # The failure is sticky: once a batch failed, the engine's window is
        # missing tuples and every result it would produce is suspect, so the
        # shard stays poisoned and every later interaction re-raises.
        if self._failure is not None:
            raise ShardWorkerError(
                f"shard {self.shard_id} failed while processing: {self._failure}", self.shard_id
            ) from self._failure


#: Registry of concurrency backends, keyed by ``RuntimeConfig.backend``.
WORKER_BACKENDS = {"threading": ThreadShardWorker}


def create_worker(
    shard_id: int,
    window: WindowSpec,
    config: RuntimeConfig,
    on_result: Optional[ResultCallback] = None,
) -> ShardWorker:
    """Build a shard worker using the backend named in ``config``."""
    try:
        backend = WORKER_BACKENDS[config.backend]
    except KeyError:
        raise ValueError(
            f"unknown worker backend {config.backend!r}; expected one of {sorted(WORKER_BACKENDS)}"
        ) from None
    return backend(shard_id, window, config, on_result=on_result)
