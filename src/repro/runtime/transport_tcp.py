"""TCP transport: shard workers on remote hosts, same typed protocol.

This is the runtime's third transport.  The frames of
:mod:`repro.runtime.protocol` are unchanged — ``REGISTER`` / ``BATCH`` /
``MIGRATE`` / ``METRICS`` / ... travel exactly as they do over the
``threading`` and ``multiprocessing`` queues — only the byte pipe differs:
each frame is serialized by a small tagged binary codec and shipped as one
length-prefixed, CRC-checked unit over a TCP connection.

Wire framing
============

Every frame on the wire is::

    <payload length : uint32 LE> <crc32(payload) : uint32 LE> <payload>

The payload is the typed frame tuple encoded by :func:`encode_value` — a
tagged, self-delimiting binary form covering exactly the value shapes the
protocol promises (``None``, bools, ints, floats, ``str``, ``bytes``,
tuples, lists and dicts; never closures or rich objects).  A CRC mismatch
or torn frame surfaces as :class:`~repro.errors.WorkerUnavailableError`,
never as silently corrupt state.

Handshake
=========

The coordinator dials out (workers never call home).  On connect the
client sends one ``HELLO`` frame::

    ("HELLO", version, shard_id, window_size, window_slide,
     config_dict, bootstrap_frames, emit_results)

carrying everything the worker process needs to rebuild the shard server —
the same ``(op, payload)`` bootstrap replay the multiprocessing backend
ships to its child.  Two optional trailing elements — ``role`` and
``base_lsn`` — request a *standby* session instead (see
:mod:`repro.runtime.replication`): the worker applies replicated WAL
records into a muted replica until it is promoted, at which point the
session falls through into the normal serve loop on the same socket.
The worker answers ``("WELCOME", version)`` — or ``("BUSY", version,
reason)`` when it already hosts a session, which the dialer retries with
the connect backoff schedule — and then runs the standard
:func:`~repro.runtime.worker.serve_shard` loop over the socket.  ``STOP``
ships final shard state back in its reply, exactly like the process
transport, so a cleanly stopped remote worker remains inspectable at the
coordinator.

Failure semantics
=================

* Dialing retries ``tcp_connect_attempts`` times with exponential backoff
  before raising :class:`~repro.errors.WorkerUnavailableError`.
* A read that stalls *mid-frame* for ``tcp_read_timeout`` seconds, a torn
  frame, a CRC mismatch or a peer reset all poison the shard with a sticky
  :class:`~repro.errors.WorkerUnavailableError` surfaced through
  ``service.health()``.  An *idle* connection (no frame in flight) is
  legal indefinitely — workers are silent unless spoken to.
* Backpressure is the transport itself: the worker reads requests into a
  bounded queue, so a slow shard fills the kernel socket buffers and the
  coordinator's ``submit`` blocks, mirroring the bounded-queue semantics
  of the in-process backends.
* A lost worker is recovered by replaying its per-shard WAL onto a fresh
  one via :class:`~repro.runtime.durability.RecoveryManager` (see
  ``docs/NETWORKING.md`` for the failover walkthrough).
"""

from __future__ import annotations

import queue
import select
import socket
import struct
import threading
import time
import zlib
from typing import Dict, Optional, Tuple

from ..errors import (
    ConfigError,
    ReplicationError,
    RuntimeStateError,
    WireProtocolError,
    WorkerUnavailableError,
)
from ..graph.window import WindowSpec
from . import protocol
from .config import RuntimeConfig, parse_worker_address
from .observability.logs import configure_logging, get_logger
from .observability.registry import Histogram
from .worker import WORKER_BACKENDS, ShardEngineServer, ShardWorker, serve_shard

__all__ = [
    "TcpShardWorker",
    "TcpWorkerServer",
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "encode_value",
    "decode_value",
    "encode_frame",
    "recv_frame",
]

#: Version stamped on the ``HELLO`` / ``WELCOME`` handshake frames; bumped
#: only when the framing or codec itself changes (protocol-frame evolution
#: rides the existing version-tolerant payload rules instead).
WIRE_VERSION = 1

#: Hard upper bound on one frame's payload, guarding against a corrupt
#: length prefix allocating unbounded memory.
MAX_FRAME_BYTES = 1 << 30

#: Seconds a freshly accepted connection may take to produce its HELLO.
HANDSHAKE_TIMEOUT_SECONDS = 30.0

#: Upper bound of the exponential connect backoff.
_BACKOFF_CAP_SECONDS = 2.0

#: Longest single ``select`` wait; short slices keep every wait loop
#: responsive to socket closure (closing an fd does not reliably wake a
#: blocked ``select`` on it).
_SELECT_SLICE_SECONDS = 0.5

_HEADER = struct.Struct("<II")
_INT64 = struct.Struct("<q")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

_LOG = get_logger("runtime.transport")


# --------------------------------------------------------------------- #
# Value codec (tagged binary, no pickle)
# --------------------------------------------------------------------- #


def encode_value(value) -> bytes:
    """Encode one protocol value into its tagged binary form.

    Covers exactly the shapes :mod:`repro.runtime.protocol` promises for
    frame payloads: ``None``, bools, ints (arbitrary width), floats,
    ``str``, ``bytes``-likes, tuples, lists and dicts, nested freely.

    Raises:
        WireProtocolError: the value (or something nested inside it) is of
            a type the protocol does not allow on the wire.
    """
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value) -> None:
    """Append one value's tagged encoding to ``out`` (recursive)."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int or (isinstance(value, int) and not isinstance(value, bool)):
        if -(1 << 63) <= value < (1 << 63):
            out += b"i"
            out += _INT64.pack(value)
        else:
            digits = str(value).encode("ascii")
            out += b"I"
            out += _U32.pack(len(digits))
            out += digits
    elif isinstance(value, float):
        out += b"f"
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += b"b"
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, tuple):
        out += b"t"
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, list):
        out += b"l"
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out += b"d"
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise WireProtocolError(
            f"value of type {type(value).__name__} cannot cross the tcp transport; "
            f"protocol payloads are plain scalars/str/bytes/tuples/lists/dicts"
        )


def decode_value(data: bytes):
    """Decode :func:`encode_value` output (strict inverse).

    Raises:
        WireProtocolError: the bytes are truncated, carry an unknown tag,
            or leave trailing garbage after the value.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise WireProtocolError(f"{len(data) - offset} trailing bytes after decoded value")
    return value


def _take(data: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    """Slice ``count`` bytes at ``offset`` or raise on truncation."""
    end = offset + count
    if end > len(data):
        raise WireProtocolError(
            f"truncated value: needed {count} bytes at offset {offset}, have {len(data) - offset}"
        )
    return data[offset:end], end


def _decode_from(data: bytes, offset: int):
    """Decode one tagged value at ``offset``; returns ``(value, new_offset)``."""
    tag, offset = _take(data, offset, 1)
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        raw, offset = _take(data, offset, _INT64.size)
        return _INT64.unpack(raw)[0], offset
    if tag == b"I":
        raw, offset = _take(data, offset, _U32.size)
        digits, offset = _take(data, offset, _U32.unpack(raw)[0])
        return int(digits.decode("ascii")), offset
    if tag == b"f":
        raw, offset = _take(data, offset, _F64.size)
        return _F64.unpack(raw)[0], offset
    if tag == b"s":
        raw, offset = _take(data, offset, _U32.size)
        text, offset = _take(data, offset, _U32.unpack(raw)[0])
        return text.decode("utf-8"), offset
    if tag == b"b":
        raw, offset = _take(data, offset, _U32.size)
        blob, offset = _take(data, offset, _U32.unpack(raw)[0])
        return blob, offset
    if tag in (b"t", b"l"):
        raw, offset = _take(data, offset, _U32.size)
        count = _U32.unpack(raw)[0]
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (tuple(items) if tag == b"t" else items), offset
    if tag == b"d":
        raw, offset = _take(data, offset, _U32.size)
        count = _U32.unpack(raw)[0]
        mapping = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            item, offset = _decode_from(data, offset)
            mapping[key] = item
        return mapping, offset
    raise WireProtocolError(f"unknown value tag {tag!r} at offset {offset - 1}")


# --------------------------------------------------------------------- #
# Socket framing helpers (non-blocking sockets + select throughout)
# --------------------------------------------------------------------- #


def _wait_ready(sock: socket.socket, timeout: Optional[float], for_write: bool) -> bool:
    """Wait until ``sock`` is readable/writable; ``False`` on timeout.

    Waits in short slices so a concurrently closed socket is noticed
    promptly (``fileno() == -1`` raises ``OSError``) even though closing
    an fd does not wake a ``select`` blocked on it.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        if sock.fileno() < 0:
            raise OSError("socket closed")
        if deadline is None:
            wait = _SELECT_SLICE_SECONDS
        else:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            wait = min(remaining, _SELECT_SLICE_SECONDS)
        try:
            if for_write:
                _, ready, _ = select.select([], [sock], [], wait)
            else:
                ready, _, _ = select.select([sock], [], [], wait)
        except (ValueError, OSError):
            raise OSError("socket closed during wait") from None
        if ready:
            return True


def _recv_exact(
    sock: socket.socket, count: int, timeout: float, idle_until_first_byte: bool
) -> Optional[bytes]:
    """Read exactly ``count`` bytes from a non-blocking socket.

    Returns ``None`` on a clean EOF before the first byte (a legal close
    at a frame boundary).  With ``idle_until_first_byte`` the wait for the
    first byte is unbounded (idle connections are legal); once any byte
    arrived, a stall of ``timeout`` seconds is a torn frame.

    Raises:
        WorkerUnavailableError: EOF or a stalled read mid-way through the
            requested bytes.
        OSError: the socket was closed or errored.
    """
    buf = bytearray()
    while len(buf) < count:
        wait = None if (idle_until_first_byte and not buf) else timeout
        if not _wait_ready(sock, wait, for_write=False):
            raise WorkerUnavailableError(
                f"read stalled for {timeout:.1f}s after {len(buf)} of {count} bytes"
            )
        try:
            chunk = sock.recv(count - len(buf))
        except (BlockingIOError, InterruptedError):
            continue
        except OSError as exc:
            raise WorkerUnavailableError(f"connection error while reading: {exc}") from exc
        if not chunk:
            if not buf:
                return None
            raise WorkerUnavailableError(
                f"connection closed mid-frame after {len(buf)} of {count} bytes"
            )
        buf += chunk
    return bytes(buf)


def recv_frame(
    sock: socket.socket, read_timeout: float, idle_ok: bool = False
) -> Optional[Tuple[object, int]]:
    """Receive one framed protocol value; ``(frame, wire_bytes)`` or ``None``.

    ``None`` means the peer closed cleanly at a frame boundary.  With
    ``idle_ok`` the wait for a frame to *begin* is unbounded; a frame that
    began but stalls for ``read_timeout`` seconds is always an error.

    Raises:
        WorkerUnavailableError: torn frame, mid-frame stall or CRC
            mismatch.
        WireProtocolError: a frame longer than :data:`MAX_FRAME_BYTES` or
            an undecodable payload.
        OSError: the socket was closed or errored.
    """
    header = _recv_exact(sock, _HEADER.size, read_timeout, idle_until_first_byte=idle_ok)
    if header is None:
        return None
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length, read_timeout, idle_until_first_byte=False)
    if payload is None:
        raise WorkerUnavailableError(f"connection closed between header and {length}-byte payload")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise WorkerUnavailableError(
            f"frame CRC mismatch (expected {crc:#010x}, got {zlib.crc32(payload) & 0xFFFFFFFF:#010x})"
        )
    return decode_value(payload), _HEADER.size + length


def encode_frame(frame) -> bytes:
    """Serialize one protocol frame into its length-prefixed wire bytes."""
    payload = encode_value(frame)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def _send_all(sock: socket.socket, data: bytes, stall_timeout: float) -> None:
    """Send all of ``data``; a zero-progress stall is a dead peer.

    Raises:
        WorkerUnavailableError: no byte could be written for
            ``stall_timeout`` seconds, or the connection errored.
    """
    view = memoryview(data)
    offset = 0
    while offset < len(data):
        try:
            if not _wait_ready(sock, stall_timeout, for_write=True):
                raise WorkerUnavailableError(f"send stalled for {stall_timeout:.1f}s")
            sent = sock.send(view[offset:])
        except (BlockingIOError, InterruptedError):
            continue
        except OSError as exc:
            raise WorkerUnavailableError(f"connection error while sending: {exc}") from exc
        offset += sent


# --------------------------------------------------------------------- #
# Coordinator side: connection, channels, worker proxy
# --------------------------------------------------------------------- #


class _WorkerConnection:
    """One coordinator->worker TCP connection plus its reader thread.

    The reader thread turns received frames into the standard response
    queue the :class:`~repro.runtime.worker.ShardWorker` proxy already
    pumps; a connection failure is reported exactly like an in-process
    worker crash — one synthesized ``FAILURE`` frame (carrying a
    :class:`~repro.errors.WorkerUnavailableError`) followed by
    ``_transport_alive()`` turning false.
    """

    def __init__(self, sock: socket.socket, address: str, read_timeout: float) -> None:
        self.sock = sock
        self.address = address
        self.read_timeout = read_timeout
        self.responses: "queue.Queue" = queue.Queue()
        self.dead = False
        #: Set before a clean STOP so the server's close is not a failure.
        self.expect_close = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.send_seconds = Histogram()
        self._lock = threading.Lock()
        self._reader: Optional[threading.Thread] = None

    def start_reader(self, shard_id: int) -> None:
        """Start the response-reader thread for this connection."""
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-tcp-reader-{shard_id}", daemon=True
        )
        self._reader.start()

    def fail(self, reason: str) -> None:
        """Mark the connection dead (idempotent) and wake any waiter.

        Enqueues the ``FAILURE`` sentinel (unless the close was expected),
        then closes the socket — which wakes a reader or sender blocked in
        a ``select`` slice loop.
        """
        with self._lock:
            if self.dead:
                return
            self.dead = True
            notify = not self.expect_close
        if notify:
            wire = protocol.encode_exception(WorkerUnavailableError(reason))
            self.responses.put((protocol.FAILURE, wire))
            _LOG.warning("tcp worker connection failed: %s", reason)
        self.close_socket()

    def close_socket(self) -> None:
        """Close the socket, swallowing errors from an already-closed fd."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def join_reader(self, timeout: Optional[float] = None) -> None:
        """Join the reader thread (bounded when ``timeout`` is given)."""
        if self._reader is not None:
            self._reader.join(timeout)

    def _read_loop(self) -> None:
        """Pump received frames onto the response queue until the pipe ends."""
        while True:
            try:
                got = recv_frame(self.sock, self.read_timeout, idle_ok=True)
            except (WorkerUnavailableError, WireProtocolError, OSError) as exc:
                self.fail(f"worker {self.address}: {exc}")
                return
            if got is None:
                if self.expect_close or self.dead:
                    self.close_socket()
                else:
                    self.fail(f"worker {self.address} closed the connection unexpectedly")
                return
            frame, nbytes = got
            self.bytes_received += nbytes
            self.frames_received += 1
            self.responses.put(frame)


class _SocketRequestChannel:
    """Request-queue facade over a connection: ``put()`` frames the socket.

    Satisfies the channel contract of
    :meth:`~repro.runtime.worker.ShardWorker._make_channels`:

    * ``put(frame, timeout=...)`` raises :class:`queue.Full` when the send
      could not *complete* in time — and, because the proxy's ``submit``
      retries with the *same frame object*, the partially sent bytes are
      kept and resumed, never re-sent (which would corrupt the framing).
    * a blocking ``put(frame)`` (control frames) is bounded by the
      connection's zero-progress stall cap instead of hanging forever on a
      half-open peer.
    * ``qsize()`` raises ``NotImplementedError`` — the kernel socket
      buffer has no frame-granular depth — which ``queue_depth()`` already
      treats as "report 0".
    """

    def __init__(self, conn: _WorkerConnection) -> None:
        self._conn = conn
        self._pending_frame = None
        self._pending_data: Optional[memoryview] = None
        self._pending_offset = 0
        self._pending_started = 0.0

    def put(self, frame, timeout: Optional[float] = None) -> None:
        """Send one frame; resumable on timeout, failing-clean on error."""
        conn = self._conn
        if conn.dead:
            # The proxy notices on its next pump / liveness check; mirroring
            # how a queue to a dead process accepts writes without erroring.
            self._clear_pending()
            return
        if frame is not self._pending_frame:
            self._pending_frame = frame
            self._pending_data = memoryview(encode_frame(frame))
            self._pending_offset = 0
            self._pending_started = time.monotonic()
        deadline = None if timeout is None else time.monotonic() + timeout
        stall_deadline = time.monotonic() + conn.read_timeout
        while self._pending_offset < len(self._pending_data):
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise queue.Full
            if now >= stall_deadline:
                conn.fail(
                    f"worker {conn.address}: send made no progress for "
                    f"{conn.read_timeout:.1f}s (peer stalled or half-open)"
                )
                self._clear_pending()
                return
            wait = stall_deadline - now if deadline is None else min(deadline, stall_deadline) - now
            try:
                if not _wait_ready(conn.sock, min(wait, _SELECT_SLICE_SECONDS), for_write=True):
                    continue
                sent = conn.sock.send(self._pending_data[self._pending_offset :])
            except (BlockingIOError, InterruptedError):
                continue
            except (WorkerUnavailableError, OSError) as exc:
                conn.fail(f"worker {conn.address}: connection lost while sending: {exc}")
                self._clear_pending()
                return
            if sent:
                self._pending_offset += sent
                stall_deadline = time.monotonic() + conn.read_timeout
        conn.bytes_sent += len(self._pending_data)
        conn.frames_sent += 1
        conn.send_seconds.observe(time.monotonic() - self._pending_started)
        self._clear_pending()

    def qsize(self) -> int:
        """Socket buffers have no frame-granular depth."""
        raise NotImplementedError("tcp request channel has no measurable queue depth")

    def _clear_pending(self) -> None:
        self._pending_frame = None
        self._pending_data = None
        self._pending_offset = 0


class TcpShardWorker(ShardWorker):
    """Shard worker proxy whose serve loop runs in a remote process over TCP.

    The coordinator dials the address configured for this shard in
    ``config.worker_addresses`` (``host:port``, one per shard), ships the
    shard's bootstrap in the ``HELLO`` handshake, and then speaks the
    unchanged typed protocol over length-prefixed CRC-checked frames.
    Like the multiprocessing backend, ``STOP`` ships final shard state
    back, so a cleanly stopped remote worker remains inspectable (and
    arbitrary-semantics queries restartable) at the coordinator.

    Dial failures retry with exponential backoff and surface as
    :class:`~repro.errors.WorkerUnavailableError`; mid-stream failures
    poison the shard with the same sticky error, visible through
    ``service.health()``.
    """

    backend = "tcp"
    ship_state_on_stop = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        addresses = self.config.worker_addresses or ()
        if self.shard_id >= len(addresses):
            raise ConfigError(
                f"tcp backend has no worker address for shard {self.shard_id}: "
                f"worker_addresses={list(addresses)!r} (need one host:port per shard)"
            )
        self._address = addresses[self.shard_id]
        self._conn: Optional[_WorkerConnection] = None
        self._connects_total = 0
        self._connect_attempts_total = 0

    # Transport hooks ---------------------------------------------------- #

    def _dial(self) -> socket.socket:
        """Connect to the worker address with bounded retry + backoff."""
        host, port = parse_worker_address(self._address)
        last_error: Optional[OSError] = None
        for attempt in range(self.config.tcp_connect_attempts):
            self._connect_attempts_total += 1
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.config.tcp_connect_timeout
                )
            except OSError as exc:
                last_error = exc
                if attempt + 1 < self.config.tcp_connect_attempts:
                    backoff = self.config.tcp_connect_backoff * (2**attempt)
                    time.sleep(min(backoff, _BACKOFF_CAP_SECONDS))
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            self._connects_total += 1
            return sock
        raise WorkerUnavailableError(
            f"shard {self.shard_id}: cannot connect to worker at {self._address} "
            f"after {self.config.tcp_connect_attempts} attempts: {last_error}",
            self.shard_id,
        )

    def _make_channels(self):
        """Dial, handshake, and return the socket-backed channel pair.

        A ``BUSY`` handshake reply (the worker already hosts a session —
        e.g. a standby that has not been released yet, or the previous
        session's teardown racing this redial) is retried with the same
        backoff schedule as a refused connect, then surfaced as
        :class:`~repro.errors.WorkerUnavailableError`.
        """
        busy_reason: Optional[str] = None
        for attempt in range(self.config.tcp_connect_attempts):
            if attempt:
                backoff = self.config.tcp_connect_backoff * (2 ** (attempt - 1))
                time.sleep(min(backoff, _BACKOFF_CAP_SECONDS))
            result = self._handshake()
            if not isinstance(result, str):
                return result
            busy_reason = result
        raise WorkerUnavailableError(
            f"shard {self.shard_id}: worker at {self._address} is busy with another "
            f"session after {self.config.tcp_connect_attempts} attempts ({busy_reason}); "
            f"a worker process hosts one coordinator session at a time",
            self.shard_id,
        )

    def _handshake(self):
        """One dial + HELLO attempt; returns channels or a BUSY reason string."""
        sock = self._dial()
        conn = _WorkerConnection(sock, self._address, self.config.tcp_read_timeout)
        hello = (
            "HELLO",
            WIRE_VERSION,
            self.shard_id,
            self.window.size,
            self.window.slide,
            self.config.to_dict(),
            self._server.export_bootstrap(),
            self.on_result is not None,
        )
        try:
            _send_all(sock, encode_frame(hello), self.config.tcp_read_timeout)
            got = recv_frame(sock, self.config.tcp_connect_timeout, idle_ok=False)
        except (WorkerUnavailableError, WireProtocolError, OSError) as exc:
            conn.close_socket()
            raise WorkerUnavailableError(
                f"shard {self.shard_id}: handshake with worker at {self._address} failed: {exc}",
                self.shard_id,
            ) from exc
        if got is None:
            conn.close_socket()
            raise WorkerUnavailableError(
                f"shard {self.shard_id}: worker at {self._address} closed during handshake",
                self.shard_id,
            )
        welcome = got[0]
        if isinstance(welcome, tuple) and welcome and welcome[0] == "BUSY":
            conn.close_socket()
            return str(welcome[2]) if len(welcome) > 2 else "no reason given"
        if not (isinstance(welcome, tuple) and len(welcome) >= 2 and welcome[0] == "WELCOME"):
            conn.close_socket()
            raise WireProtocolError(
                f"shard {self.shard_id}: worker at {self._address} answered the handshake "
                f"with {welcome!r} instead of WELCOME"
            )
        if welcome[1] != WIRE_VERSION:
            conn.close_socket()
            raise WireProtocolError(
                f"shard {self.shard_id}: worker at {self._address} speaks wire version "
                f"{welcome[1]!r}, this coordinator speaks {WIRE_VERSION}"
            )
        self._conn = conn
        return _SocketRequestChannel(conn), conn.responses

    def _launch(self) -> None:
        self._conn.start_reader(self.shard_id)

    def _transport_alive(self) -> bool:
        return self._conn is not None and not self._conn.dead

    def _join(self) -> None:
        conn = self._conn
        if conn is None:
            return
        conn.expect_close = True
        # After the STOP reply the server closes its end; the reader sees the
        # EOF and exits.  Bound the wait, then force the issue by closing —
        # which the reader's sliced select loop notices promptly.
        conn.join_reader(timeout=self.config.tcp_read_timeout)
        conn.close_socket()
        conn.join_reader()
        # Keep self._conn: transport_stats() stays readable after stop.

    # Lifecycle extensions ------------------------------------------------ #

    def adopt_session(self, sock: socket.socket) -> None:
        """Take over a live, already-handshaken serve loop on ``sock``.

        The promotion path: after
        :meth:`~repro.runtime.replication.ReplicationManager.promote` the
        promoted standby is *already* running ``serve_shard`` on this
        socket, positioned at the promotion LSN.  Dialing or sending
        another ``HELLO`` would be wrong — this proxy just wraps the
        socket in the usual connection + channel pair and starts its
        reader, after which it is indistinguishable from a worker that
        went through :meth:`start`.
        """
        if self.running:
            raise RuntimeStateError(f"shard {self.shard_id} is already running")
        self._check_failure()
        conn = _WorkerConnection(sock, self._address, self.config.tcp_read_timeout)
        self._conn = conn
        self._connects_total += 1
        self._requests = _SocketRequestChannel(conn)
        self._responses = conn.responses
        conn.start_reader(self.shard_id)

    def abandon(self) -> None:
        """Release a dead session's transport resources without a STOP.

        The promotion path's counterpart for the *old* primary: it is
        unreachable, so there is no serve loop left to stop — closing the
        socket and joining the reader is all that remains.  The proxy
        keeps its sticky failure (callers that still hold it see the
        original :class:`~repro.errors.WorkerUnavailableError`), and the
        service drops its reference.
        """
        conn = self._conn
        self._requests = None
        self._responses = None
        if conn is None:
            return
        conn.expect_close = True
        conn.close_socket()
        conn.join_reader()

    def stop(self) -> None:
        """Stop the remote serve loop; the server closing is expected here."""
        conn = self._conn
        if self.running and conn is not None:
            conn.expect_close = True
        super().stop()

    def transport_stats(self) -> Optional[Dict[str, object]]:
        """Connection-level counters for the observability layer."""
        conn = self._conn
        connected = conn is not None and not conn.dead and self._requests is not None
        stats: Dict[str, object] = {
            "address": self._address,
            "connected": 1.0 if connected else 0.0,
            "connects_total": float(self._connects_total),
            "connect_attempts_total": float(self._connect_attempts_total),
            "bytes_sent": float(conn.bytes_sent if conn else 0),
            "bytes_received": float(conn.bytes_received if conn else 0),
            "frames_sent": float(conn.frames_sent if conn else 0),
            "frames_received": float(conn.frames_received if conn else 0),
        }
        if conn is not None:
            stats["send_seconds"] = conn.send_seconds.state()
        return stats


# --------------------------------------------------------------------- #
# Worker side: the standalone server (``repro worker --listen``)
# --------------------------------------------------------------------- #


class _SocketResponseWriter:
    """Response-queue facade of a worker session: ``put()`` frames the socket.

    Once a send fails the writer goes dead and silently discards later
    frames — the coordinator is gone; the session reader will notice the
    matching EOF/reset and wind the serve loop down via a synthesized
    ``STOP``.
    """

    def __init__(self, sock: socket.socket, stall_timeout: float) -> None:
        self._sock = sock
        self._stall_timeout = stall_timeout
        self.dead = False

    def put(self, frame) -> None:
        """Send one response frame, going dead (not raising) on failure."""
        if self.dead:
            return
        try:
            _send_all(self._sock, encode_frame(frame), self._stall_timeout)
        except (WorkerUnavailableError, OSError) as exc:
            self.dead = True
            _LOG.warning("tcp worker session: dropping responses, send failed: %s", exc)


def _session_reader(
    sock: socket.socket, requests: "queue.Queue", read_timeout: float, done: threading.Event
) -> None:
    """Feed received request frames into the session's bounded queue.

    The bounded ``put`` is the backpressure mechanism: a slow shard stops
    reading, the kernel buffers fill, and the coordinator's send blocks —
    the TCP equivalent of the in-process bounded request queue.  An
    abnormal disconnect synthesizes a ``STOP`` control frame so the serve
    loop terminates instead of waiting forever on a dead pipe.
    """
    while True:
        try:
            got = recv_frame(sock, read_timeout, idle_ok=True)
        except (WorkerUnavailableError, WireProtocolError, OSError) as exc:
            if not done.is_set():
                _LOG.warning("tcp worker session: coordinator link failed: %s", exc)
            got = None
        if got is None:
            if not done.is_set():
                try:
                    requests.put_nowait((protocol.CONTROL, -1, protocol.STOP, False))
                except queue.Full:  # pragma: no cover - serve loop is draining
                    pass
            return
        frame = got[0]
        while True:
            try:
                requests.put(frame, timeout=_SELECT_SLICE_SECONDS)
                break
            except queue.Full:
                if done.is_set():
                    return


def replication_mod():
    """Late import of :mod:`repro.runtime.replication` (it imports us)."""
    from . import replication

    return replication


class TcpWorkerServer:
    """Standalone shard-worker server: accept a coordinator, serve a shard.

    This is what ``repro worker --listen HOST:PORT`` runs.  Sessions are
    logically sequential — one coordinator at a time owns the worker —
    and each session is self-describing: the ``HELLO`` frame carries the
    shard id, window, runtime config and bootstrap frames, so one worker
    process can serve successive coordinators (e.g. a recovery run after
    a crash) without restarting.  A dial that arrives *while a session is
    active* (the worker hosts another coordinator's shard or standby) is
    rejected explicitly with a ``("BUSY", version, reason)`` handshake
    reply and counted in ``sessions_rejected`` — an error at the dialer,
    never a silent hang in the backlog.

    Args:
        host: interface to bind.
        port: port to bind; ``0`` binds an ephemeral port — read the
            chosen one back from :meth:`start`'s return value (or the
            ``port`` attribute after it ran).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.sessions_served = 0
        self.sessions_rejected = 0
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._active_lock = threading.Lock()
        self._active_sock: Optional[socket.socket] = None
        self._active_desc = "a session"
        self._session_thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and listen; returns the bound port (resolves ``port=0``)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1)
        listener.settimeout(_SELECT_SLICE_SECONDS)
        self._listener = listener
        self.port = listener.getsockname()[1]
        _LOG.info("tcp worker listening on %s:%d", self.host, self.port)
        return self.port

    def serve_forever(self) -> None:
        """Accept and serve coordinator sessions until :meth:`stop`.

        Each accepted session runs on its own thread so the accept loop
        stays responsive while a session is active — not for parallelism
        (sessions stay one-at-a-time) but so a second dial can be told
        ``BUSY`` immediately instead of parking in the listen backlog
        until the first session ends.
        """
        if self._listener is None:
            self.start()
        while not self._stopping.is_set():
            try:
                sock, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._active_lock:
                session = self._session_thread
                busy = session is not None and session.is_alive()
                if not busy:
                    if session is not None:
                        session.join()
                    self._active_sock = sock
                    self._active_desc = f"a session from {peer}"
                    # Counted at accept, not teardown: a coordinator whose
                    # dial succeeded must observe the increment even though
                    # its stop() returns before this side finishes tearing
                    # the session down.
                    self.sessions_served += 1
                    self._session_thread = threading.Thread(
                        target=self._run_session,
                        args=(sock, peer),
                        name=f"repro-tcp-server-{self.port}-session",
                        daemon=True,
                    )
                    self._session_thread.start()
            if busy:
                self._reject_session(sock, peer)
        session = self._session_thread
        if session is not None:
            session.join()

    def _run_session(self, sock: socket.socket, peer) -> None:
        try:
            self._serve_session(sock, peer)
        finally:
            with self._active_lock:
                self._active_sock = None

    def _reject_session(self, sock: socket.socket, peer) -> None:
        """Tell a dialer the worker is taken, explicitly, then hang up.

        The HELLO is consumed first so closing the socket after the
        ``BUSY`` reply sends a clean FIN (unread data would trigger a
        reset that could destroy the reply in flight).
        """
        self.sessions_rejected += 1
        with self._active_lock:
            reason = f"worker at {self.host}:{self.port} already hosts {self._active_desc}"
        _LOG.warning("session from %s rejected: %s", peer, reason)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            try:
                recv_frame(sock, 2 * _SELECT_SLICE_SECONDS, idle_ok=False)
            except (WorkerUnavailableError, WireProtocolError, OSError):
                pass
            _send_all(
                sock,
                encode_frame(("BUSY", WIRE_VERSION, reason)),
                2 * _SELECT_SLICE_SECONDS,
            )
        except (WorkerUnavailableError, OSError):
            pass  # the dialer vanished; nothing to tell it
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def start_in_background(self) -> int:
        """Run :meth:`serve_forever` on a daemon thread; returns the port."""
        port = self.start() if self._listener is None else self.port
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"repro-tcp-worker-{port}", daemon=True
        )
        self._thread.start()
        return port

    def stop(self) -> None:
        """Close the listener and any in-flight session, then join."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        with self._active_lock:
            if self._active_sock is not None:
                try:
                    self._active_sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        session = self._session_thread
        if session is not None:
            session.join()
            self._session_thread = None

    def _serve_session(self, sock: socket.socket, peer) -> None:
        """Handshake one coordinator and run its shard's serve loop."""
        done = threading.Event()
        reader: Optional[threading.Thread] = None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            got = recv_frame(sock, HANDSHAKE_TIMEOUT_SECONDS, idle_ok=False)
            if got is None:
                return
            hello = got[0]
            if not (isinstance(hello, tuple) and len(hello) >= 8 and hello[0] == "HELLO"):
                raise WireProtocolError(f"expected a HELLO handshake frame, got {hello!r}")
            if hello[1] != WIRE_VERSION:
                raise WireProtocolError(
                    f"coordinator speaks wire version {hello[1]!r}, this worker speaks {WIRE_VERSION}"
                )
            _, _, shard_id, size, slide, config_state, bootstrap, emit_results = hello[:8]
            role = hello[8] if len(hello) > 8 else "primary"
            base_lsn = hello[9] if len(hello) > 9 else 0
            config = RuntimeConfig.from_dict(config_state)
            configure_logging(config.log_level, config.log_format)
            server = ShardEngineServer(shard_id, WindowSpec(size=size, slide=slide), config)
            for op, payload in bootstrap:
                server.execute(op, payload)
            _send_all(sock, encode_frame(("WELCOME", WIRE_VERSION)), config.tcp_read_timeout)
            with self._active_lock:
                self._active_desc = f"shard {shard_id}'s {role} session"
            if role == replication_mod().STANDBY_ROLE:
                # A distinct trace lane: the standby's apply spans (and,
                # after a promotion, its batch spans) must be tellable
                # apart from the dead primary's ``worker-<shard>`` lane.
                server.tracer.process = f"standby-{shard_id}"
                _LOG.info(
                    "session from %s: standby for shard %d from LSN %d", peer, shard_id, base_lsn
                )
                handoff = replication_mod().serve_standby(
                    server, sock, config.tcp_read_timeout, base_lsn
                )
                if handoff is None:
                    _LOG.info("session from %s: standby for shard %d released", peer, shard_id)
                    return
                emit_results = handoff.emit_results
                with self._active_lock:
                    self._active_desc = f"shard {shard_id}'s promoted session"
                _LOG.info(
                    "session from %s: standby for shard %d promoted at LSN %d",
                    peer,
                    shard_id,
                    handoff.lsn,
                )
            _LOG.info("session from %s: serving shard %d", peer, shard_id)
            requests: "queue.Queue" = queue.Queue(maxsize=config.queue_depth)
            writer = _SocketResponseWriter(sock, config.tcp_read_timeout)
            reader = threading.Thread(
                target=_session_reader,
                args=(sock, requests, config.tcp_read_timeout, done),
                name=f"repro-tcp-session-{shard_id}",
                daemon=True,
            )
            reader.start()
            serve_shard(server, requests, writer, emit_results, ship_state_on_stop=True)
            _LOG.info("session from %s: shard %d stopped", peer, shard_id)
        except (WorkerUnavailableError, WireProtocolError, ReplicationError, OSError) as exc:
            _LOG.warning("session from %s aborted: %s", peer, exc)
        finally:
            done.set()
            # Close BEFORE joining: the reader may be idling in its select
            # slice loop and only exits once the fd goes away.
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            if reader is not None:
                reader.join()


WORKER_BACKENDS.setdefault(TcpShardWorker.backend, TcpShardWorker)
