"""Incremental checkpoints: exact deltas between order-exact evaluator states.

A full coordinated checkpoint scales with the window and the result
history; taking one every few thousand tuples would dwarf the stream
itself.  This module computes *deltas* between two order-exact (format 2)
evaluator checkpoints of the same query so the periodic checkpoint only
stores what changed: new trees and newly grown tree suffixes, expired
trees, snapshot-edge churn, and the appended tail of the append-only
result stream.

Exactness is the contract — and it is enforced, not assumed.  Checkpoint
format 2 records every iteration order the algorithms observe, so a delta
must reproduce the base's *lists* (not just their sets) bit-for-bit.
:func:`evaluator_delta` therefore verifies each candidate section diff by
applying it and comparing against the real current section; any section
the ordered diff cannot reproduce exactly (say, an edge re-inserted after
expiry, which moves it to the end of its adjacency list) silently falls
back to a full-section rewrite.  ``apply(base, delta) == current`` holds
for every delta this module emits, by construction.

Section strategies
==================

* **append-only** (``results`` + ``emission``): store the appended tail;
* **keyed ordered lists** (``snapshot`` grouped by source vertex,
  ``trees`` keyed by root, ``reverse_index`` keyed by vertex,
  ``in_adjacency`` keyed by target): store removed keys, changed values
  (in place), and appended pairs — reproducing Python's dict-order
  semantics that the live structures follow (deletion keeps relative
  order, insertion appends);
* **trees, grown**: a tree whose base node list is a prefix of its
  current one stores only the suffix (the common case between two
  checkpoints: tree growth without expiry);
* **scalars** (clock, stats): always stored, they are tiny.

The service-level wrappers :func:`service_delta` /
:func:`apply_service_delta` lift the per-evaluator diff to whole
coordinated checkpoints (one entry per partition member, keyed by
``(name, partition index)``), which is what the durability manager writes
as ``delta-<id>.json`` files and recovery folds back together.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple

from ...core.checkpoint import canonical_bytes
from ...errors import CheckpointError
from ..observability.logs import get_logger

_LOG = get_logger("runtime.durability.incremental")

__all__ = [
    "evaluator_delta",
    "apply_evaluator_delta",
    "service_delta",
    "apply_service_delta",
    "encoded_size",
]

#: Layout version of the delta dicts this module produces.
DELTA_FORMAT = 1

#: Evaluator-state fields that may not change between two deltas of one
#: chain; they are copied from the base on apply.
_IMMUTABLE_FIELDS = ("format", "query", "window", "result_semantics", "partition")

#: The keyed-ordered-list sections and how to key them.
_KEYED_SECTIONS = ("snapshot", "trees", "reverse_index", "in_adjacency")


def encoded_size(state: object) -> int:
    """Byte size of a JSON-compatible object in its canonical encoding."""
    return len(canonical_bytes(state))


# --------------------------------------------------------------------- #
# Ordered keyed-list diffing
# --------------------------------------------------------------------- #


def _assoc_diff(base_pairs: List, cur_pairs: List) -> Dict:
    """Diff two ordered ``(key, value)`` lists under dict-order semantics."""
    base_map = {key: value for key, value in base_pairs}
    cur_keys = {key for key, _ in cur_pairs}
    return {
        "removed": [key for key, _ in base_pairs if key not in cur_keys],
        "changed": [[key, value] for key, value in cur_pairs if key in base_map and base_map[key] != value],
        "appended": [[key, value] for key, value in cur_pairs if key not in base_map],
    }


def _assoc_apply(base_pairs: List, diff: Dict) -> List:
    """Apply an :func:`_assoc_diff` result back onto the base pair list."""
    removed = set(diff["removed"])
    changed = {key: value for key, value in diff["changed"]}
    result = []
    for key, value in base_pairs:
        if key in removed:
            continue
        result.append([key, changed[key] if key in changed else value])
    result.extend([key, value] for key, value in diff["appended"])
    return result


# --------------------------------------------------------------------- #
# Section <-> keyed pair list conversions
# --------------------------------------------------------------------- #


def _snapshot_to_pairs(rows: List) -> List:
    """Group flat snapshot edge rows by source vertex, preserving order."""
    pairs: List = []
    current_key = object()
    for row in rows:
        source = row[0]
        if not pairs or source != current_key:
            pairs.append([source, []])
            current_key = source
        pairs[-1][1].append(row)
    return pairs


def _snapshot_from_pairs(pairs: List) -> List:
    """Flatten grouped snapshot rows back into the checkpoint's edge list."""
    return [row for _, rows in pairs for row in rows]


def _trees_diff(base_trees: List[Dict], cur_trees: List[Dict]) -> Dict:
    """Diff two canonical-order tree lists, with grown-suffix compression."""
    base_map = {tree["root"]: tree for tree in base_trees}
    cur_roots = {tree["root"] for tree in cur_trees}
    grown, changed, appended = [], [], []
    for tree in cur_trees:
        root = tree["root"]
        base_tree = base_map.get(root)
        if base_tree is None:
            appended.append(tree)
            continue
        if base_tree == tree:
            continue
        base_nodes, cur_nodes = base_tree["nodes"], tree["nodes"]
        if len(base_nodes) <= len(cur_nodes) and cur_nodes[: len(base_nodes)] == base_nodes:
            grown.append([root, tree["root_cycle_reported"], cur_nodes[len(base_nodes) :]])
        else:
            changed.append(tree)
    return {
        "removed": [tree["root"] for tree in base_trees if tree["root"] not in cur_roots],
        "grown": grown,
        "changed": changed,
        "appended": appended,
    }


def _trees_apply(base_trees: List[Dict], diff: Dict) -> List[Dict]:
    """Apply a :func:`_trees_diff` result back onto the base tree list."""
    removed = set(diff["removed"])
    grown = {root: (flag, suffix) for root, flag, suffix in diff["grown"]}
    changed = {tree["root"]: tree for tree in diff["changed"]}
    result = []
    for tree in base_trees:
        root = tree["root"]
        if root in removed:
            continue
        if root in grown:
            flag, suffix = grown[root]
            result.append(
                {"root": root, "root_cycle_reported": flag, "nodes": list(tree["nodes"]) + list(suffix)}
            )
        elif root in changed:
            result.append(changed[root])
        else:
            result.append(tree)
    result.extend(diff["appended"])
    return result


def _section_pairs(section: str, value: List) -> List:
    """The ``(key, value)`` pair form of one keyed section's list."""
    if section == "snapshot":
        return _snapshot_to_pairs(value)
    return value  # reverse_index / in_adjacency already are [key, value] lists


def _section_from_pairs(section: str, pairs: List) -> List:
    """Rebuild one keyed section's list from its pair form."""
    if section == "snapshot":
        return _snapshot_from_pairs(pairs)
    return pairs


# --------------------------------------------------------------------- #
# Evaluator-level delta
# --------------------------------------------------------------------- #


def evaluator_delta(base: Dict, current: Dict) -> Dict:
    """Compute an exact delta from ``base`` to ``current``.

    Both must be format-2 checkpoints of the same query with identical
    window, semantics and partition membership.  The returned dict
    satisfies ``apply_evaluator_delta(base, delta) == current`` exactly
    (verified per section at diff time, with a full-section fallback).

    Raises:
        ValueError: the states differ in a field a delta cannot change
            (query, window, semantics, partition) or are not format 2 —
            the caller should store a full checkpoint instead.
    """
    for field in _IMMUTABLE_FIELDS:
        if base.get(field) != current.get(field):
            raise ValueError(
                f"cannot delta across a change of {field!r} "
                f"({base.get(field)!r} -> {current.get(field)!r}); store a full checkpoint"
            )
    if base.get("format") != 2:
        raise ValueError(f"deltas require format-2 checkpoints, got format {base.get('format')!r}")

    delta: Dict = {
        "delta_format": DELTA_FORMAT,
        "query": current["query"],
        "scalars": {
            "current_time": current.get("current_time"),
            "last_expiry_boundary": current.get("last_expiry_boundary"),
            "stats": dict(current.get("stats", {})),
            "emission_seq": current["emission"]["seq"],
        },
    }

    for section in _KEYED_SECTIONS:
        base_value, cur_value = base[section], current[section]
        if base_value == cur_value:
            continue
        base_pairs = _section_pairs(section, base_value)
        cur_pairs = _section_pairs(section, cur_value)
        if section == "trees":
            diff = _trees_diff(base_value, cur_value)
            reproduced = _trees_apply(base_value, diff)
        else:
            diff = _assoc_diff(base_pairs, cur_pairs)
            reproduced = _section_from_pairs(section, _assoc_apply(base_pairs, diff))
        if reproduced == cur_value and encoded_size(diff) < encoded_size(cur_value):
            delta[section] = {"diff": diff}
        else:
            # The ordered diff cannot reproduce the section exactly (or
            # would not be smaller); fall back to a verbatim rewrite.
            delta[section] = {"full": cur_value}

    base_events, cur_events = base["results"], current["results"]
    base_keys, cur_keys = base["emission"]["keys"], current["emission"]["keys"]
    if cur_events[: len(base_events)] == base_events and cur_keys[: len(base_keys)] == base_keys:
        if len(cur_events) > len(base_events) or len(cur_keys) > len(base_keys):
            delta["results"] = {
                "appended": cur_events[len(base_events) :],
                "keys_appended": cur_keys[len(base_keys) :],
            }
    else:  # pragma: no cover - the result stream is append-only by design
        delta["results"] = {"full": cur_events, "keys": cur_keys}
    return delta


def apply_evaluator_delta(base: Dict, delta: Dict) -> Dict:
    """Rebuild the full state ``delta`` was computed against.

    Raises:
        CheckpointError: the delta names a different query or layout
            version than the base, or references structure the base does
            not hold.
    """
    if delta.get("delta_format") != DELTA_FORMAT:
        raise CheckpointError(
            f"unsupported evaluator delta format {delta.get('delta_format')!r} "
            f"(this build reads format {DELTA_FORMAT})"
        )
    if delta.get("query") != base.get("query"):
        raise CheckpointError(
            f"evaluator delta for query {delta.get('query')!r} applied to a "
            f"checkpoint of {base.get('query')!r}"
        )
    state = {field: base[field] for field in _IMMUTABLE_FIELDS if field in base}
    scalars = delta["scalars"]
    state["current_time"] = scalars["current_time"]
    state["last_expiry_boundary"] = scalars["last_expiry_boundary"]
    state["stats"] = dict(scalars["stats"])

    try:
        for section in _KEYED_SECTIONS:
            entry = delta.get(section)
            if entry is None:
                state[section] = base[section]
            elif "full" in entry:
                state[section] = entry["full"]
            elif section == "trees":
                state[section] = _trees_apply(base[section], entry["diff"])
            else:
                pairs = _assoc_apply(_section_pairs(section, base[section]), entry["diff"])
                state[section] = _section_from_pairs(section, pairs)

        results = delta.get("results")
        if results is None:
            state["results"] = base["results"]
            keys = base["emission"]["keys"]
        elif "full" in results:
            state["results"] = results["full"]
            keys = results["keys"]
        else:
            state["results"] = list(base["results"]) + list(results["appended"])
            keys = list(base["emission"]["keys"]) + list(results["keys_appended"])
    except (KeyError, TypeError, IndexError) as exc:
        raise CheckpointError(
            f"corrupt evaluator delta for query {delta.get('query')!r}: "
            f"{type(exc).__name__} while applying sections ({exc})"
        ) from exc
    state["emission"] = {"seq": scalars["emission_seq"], "keys": keys}
    # Reassemble in checkpoint_rapq's field order so re-encoded bytes of a
    # recovered chain match a directly taken checkpoint.
    ordered = {
        "format": state["format"],
        "query": state["query"],
        "window": state["window"],
        "result_semantics": state["result_semantics"],
        "current_time": state["current_time"],
        "last_expiry_boundary": state["last_expiry_boundary"],
        "stats": state["stats"],
        "snapshot": state["snapshot"],
        "trees": state["trees"],
        "reverse_index": state["reverse_index"],
        "in_adjacency": state["in_adjacency"],
        "results": state["results"],
        "emission": state["emission"],
    }
    if state.get("partition") is not None:
        ordered["partition"] = state["partition"]
    return ordered


# --------------------------------------------------------------------- #
# Service-level delta (one coordinated checkpoint vs the previous)
# --------------------------------------------------------------------- #


def _member_key(entry: Dict) -> Tuple[str, Optional[int]]:
    """Identity of one coordinated-checkpoint entry: name + partition index."""
    partition = entry["state"].get("partition")
    return (entry["name"], None if partition is None else partition["index"])


def service_delta(base_state: Dict, current_state: Dict) -> Dict:
    """Delta between two coordinated service checkpoints of one chain.

    Per partition member: an evaluator delta when the member existed in
    the base (falling back to its full state if the member cannot be
    delta'd, e.g. it was re-registered under the same name), its full
    state when it is new.  Members absent from ``current_state`` are
    listed as removed.
    """
    base_members = {_member_key(entry): entry for entry in base_state["queries"]}
    current_members = {_member_key(entry) for entry in current_state["queries"]}
    entries = []
    for entry in current_state["queries"]:
        key = _member_key(entry)
        record = {"name": entry["name"], "partition": key[1], "shard": entry["shard"]}
        base_entry = base_members.get(key)
        if base_entry is not None:
            try:
                record["delta"] = evaluator_delta(base_entry["state"], entry["state"])
                entries.append(record)
                continue
            except ValueError:
                pass  # incompatible states (e.g. re-registered name): ship full
        record["state"] = entry["state"]
        entries.append(record)
    removed = [list(key) for key in base_members if key not in current_members]
    if _LOG.isEnabledFor(logging.DEBUG):
        deltad = sum(1 for record in entries if "delta" in record)
        _LOG.debug(
            "service delta at %d tuples: %d member(s) delta'd, %d shipped full, %d removed",
            current_state.get("tuples_ingested", 0),
            deltad,
            len(entries) - deltad,
            len(removed),
        )
    return {
        "kind": "delta",
        "delta_format": DELTA_FORMAT,
        "tuples_ingested": current_state.get("tuples_ingested", 0),
        "queries": entries,
        "removed": removed,
    }


def apply_service_delta(base_state: Dict, delta: Dict) -> Dict:
    """Fold a :func:`service_delta` dict onto the service state it diffed.

    Raises:
        CheckpointError: the delta's layout version is unknown or an
            entry's evaluator delta does not match its base.
    """
    if delta.get("delta_format") != DELTA_FORMAT:
        raise CheckpointError(
            f"unsupported service delta format {delta.get('delta_format')!r} "
            f"(this build reads format {DELTA_FORMAT})"
        )
    base_members = {_member_key(entry): entry for entry in base_state["queries"]}
    removed = {tuple(key) for key in delta.get("removed", [])}
    queries = []
    for record in delta["queries"]:
        key = (record["name"], record["partition"])
        if "state" in record:
            state = record["state"]
        else:
            base_entry = base_members.get(key)
            if base_entry is None:
                raise CheckpointError(
                    f"service delta references query {record['name']!r} "
                    f"(partition {record['partition']!r}) absent from its base checkpoint"
                )
            state = apply_evaluator_delta(base_entry["state"], record["delta"])
        queries.append({"name": record["name"], "shard": record["shard"], "state": state})
    surviving = {_member_key(entry) for entry in queries}
    for key, entry in base_members.items():
        if key not in surviving and key not in removed:
            raise CheckpointError(
                f"corrupt service delta: query {key[0]!r} (partition {key[1]!r}) is "
                f"neither carried forward nor listed as removed"
            )
    return {
        "format": base_state["format"],
        "window": base_state["window"],
        "config": base_state["config"],
        "tuples_ingested": delta.get("tuples_ingested", 0),
        "queries": queries,
    }
