"""Durability subsystem: write-ahead logs, incremental checkpoints, recovery.

The runtime's coordinated checkpoints make planned shutdowns safe; this
package makes *crashes* safe.  Three cooperating pieces (the shape of Wu
et al.'s per-core logging with parallel replay, PAPERS.md), all driven by
the coordinator — shard workers are untouched:

* :mod:`~repro.runtime.durability.wal` — one append-only, length-prefixed,
  CRC-checked log per shard, written at routing time.  Tuple records
  reuse the worker protocol's wire forms; topology records (register /
  restore / deregister) make each shard's log a complete, independently
  replayable history of that shard's engine — so replay parallelizes
  across shards with no coordination, and migrations and splits survive
  a crash.
* :mod:`~repro.runtime.durability.incremental` — exact deltas between two
  order-exact (format 2) checkpoints: appended result tails, grown tree
  suffixes, keyed-section churn.  Every delta is verified at diff time
  (``apply(base, delta) == current``) with a per-section full-rewrite
  fallback, so chain folding is bit-exact by construction.
* :mod:`~repro.runtime.durability.manager` —
  :class:`~repro.runtime.durability.manager.DurabilityManager`, the piece
  inside a running service: logs every routed tuple and topology change,
  schedules periodic delta checkpoints (promoted to fresh bases so chain
  and WAL stay bounded), and maintains the atomically-replaced manifest.
* :mod:`~repro.runtime.durability.recovery` —
  :class:`~repro.runtime.durability.recovery.RecoveryManager`: fold base
  + deltas, replay each shard's WAL tail, reconcile topology (crashed
  mid-migration/split), heal torn tails, and hand back a service whose
  subsequent results are bit-identical to an uninterrupted run.

Enable it with :class:`~repro.runtime.config.RuntimeConfig`
(``wal_dir=...``, plus ``wal_fsync`` / ``checkpoint_interval`` /
``checkpoint_keep_deltas``) or ``repro serve --wal DIR``; recover with
``repro recover --wal DIR`` or the API::

    from repro.runtime.durability import RecoveryManager

    result = RecoveryManager("state/").recover()
    service = result.service          # stopped, ready to start()
    # resume the input from result.next_index (1-based ingest indices)
"""

from .incremental import (
    apply_evaluator_delta,
    apply_service_delta,
    evaluator_delta,
    service_delta,
)
from .manager import DurabilityManager, read_manifest
from .recovery import RecoveryManager, RecoveryResult
from .wal import WalRecord, WalWriter, read_wal

__all__ = [
    "DurabilityManager",
    "RecoveryManager",
    "RecoveryResult",
    "WalRecord",
    "WalWriter",
    "apply_evaluator_delta",
    "apply_service_delta",
    "evaluator_delta",
    "read_manifest",
    "read_wal",
    "service_delta",
]
