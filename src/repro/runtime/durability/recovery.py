"""Crash recovery: rebuild a service from base + deltas + WAL replay.

:class:`RecoveryManager` turns a durability directory — the base
checkpoint, its delta chain and the per-shard write-ahead logs written by
:class:`~repro.runtime.durability.manager.DurabilityManager` — back into a
:class:`~repro.runtime.service.StreamingQueryService` whose subsequent
result stream is bit-identical to an uninterrupted run's.

The recovery protocol (per Wu et al.'s parallel per-core replay):

1. **Fold the chain** — load the newest base checkpoint, verify its CRC
   digest, apply each delta in order.  A delta that is missing, torn or
   digest-mismatched ends the chain early: recovery falls back to the
   last good checkpoint and simply replays more WAL (the log subsumes
   every checkpoint taken after it).
2. **Restore** — rebuild the service from the folded state with
   durability disabled (replay must not be re-logged), workers stopped:
   control frames and batches execute inline against each shard's local
   engine.
3. **Replay, shard-parallel** — each shard's log is an independent,
   faithful history of that shard's engine (tuples *and* topology
   changes, in execution order), so the logs replay with no cross-shard
   coordination, starting after the chain's per-shard horizon LSNs.
4. **Reconcile** — rebuild the service-level bookkeeping (router
   placement, partition maps) from what the engines actually hold.  A
   crash inside a migration or split can leave a query transiently on
   two shards, or a partition group incomplete; the logged global
   topology-op counter resolves duplicates (newest adoption wins) and
   incomplete partition groups are dropped exactly as the live rollback
   would have dropped them.
5. **Heal lagging tails** (machine-crash case) — when one shard's log
   tore earlier than the others', tuples it lost that *other* shards
   logged are re-delivered to it in ingest order.  Tuples routed only to
   the torn shard are unrecoverable by construction (the information no
   longer exists); ``fsync="always"`` bounds that loss to the single
   in-flight tuple.

The caller resumes ingestion at :attr:`RecoveryResult.next_index` — the
first global ingest index the recovered state does *not* cover — and the
recovered service then emits exactly what the uninterrupted run would
have (order, content, deletions included, partitioned queries included).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ...core.checkpoint import canonical_bytes, decode_state, state_digest
from ...errors import CheckpointError
from ...graph.tuples import StreamingGraphTuple
from .. import protocol
from ..config import RuntimeConfig
from ..observability.logs import get_logger, new_operation_id
from ..router import StreamRouter
from . import wal as wal_mod
from .incremental import apply_service_delta
from .manager import DurabilityManager, read_manifest

__all__ = ["RecoveryManager", "RecoveryResult"]

_LOG = get_logger("runtime.recovery")


@dataclass
class RecoveryResult:
    """What :meth:`RecoveryManager.recover` rebuilt and how.

    Attributes:
        service: the recovered (stopped) service, ready to ``start()``.
        next_index: first global ingest index *not* covered by the
            recovered state; resume feeding the stream from here (for a
            list, ``stream[next_index - 1:]`` — indices are 1-based).
        checkpoint_id: id of the last chain checkpoint that was folded in.
        replayed_tuples: per-shard count of WAL tuple records replayed.
        replayed_ops: per-shard count of WAL topology records replayed.
        healed_tuples: tuples re-delivered to shards with torn log tails.
        dropped_queries: engine-level names dropped by reconciliation
            (crashed-mid-move duplicates, incomplete partition groups).
        skipped_checkpoints: chain entries that could not be used
            (missing / torn / digest mismatch) and were replaced by
            longer WAL replay, as ``(id, problem)`` pairs.
        operation_id: correlation ID stamped on every log record this
            recovery run emitted (grep it to see the whole run).
        phase_seconds: wall-clock seconds spent in each recovery phase
            (``fold`` / ``restore`` / ``replay`` / ``reconcile`` /
            ``heal``).
    """

    service: object
    next_index: int
    checkpoint_id: int
    replayed_tuples: Dict[int, int] = field(default_factory=dict)
    replayed_ops: Dict[int, int] = field(default_factory=dict)
    healed_tuples: int = 0
    dropped_queries: List[str] = field(default_factory=list)
    skipped_checkpoints: List[Tuple[int, str]] = field(default_factory=list)
    operation_id: str = ""
    phase_seconds: Dict[str, float] = field(default_factory=dict)


class RecoveryManager:
    """Rebuilds a service from a durability directory.

    Args:
        directory: the durability directory a previous service's
            :class:`~repro.runtime.durability.manager.DurabilityManager`
            wrote.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def recover(
        self,
        backend: Optional[str] = None,
        resume: bool = False,
        worker_addresses: Optional[Tuple[str, ...]] = None,
    ) -> RecoveryResult:
        """Run the full recovery protocol; returns the rebuilt service.

        Args:
            backend: optionally override the worker backend of the
                recovered service (checkpoints are backend-portable).
            resume: re-arm durability on the recovered service — its
                ``start()`` will reset this directory with a fresh base
                checkpoint (the recovered state) and log onward into it.
            worker_addresses: fresh ``host:port`` worker addresses for a
                ``tcp``-backend recovery.  A checkpointed tcp config
                records the *crashed* run's addresses — after a lost host
                the replacement workers listen elsewhere, so recovery
                onto tcp normally passes the new fleet here.

        Raises:
            CheckpointError: the directory has no usable manifest or its
                base checkpoint is unreadable.
        """
        op_id = new_operation_id("recover")
        extra = {"operation_id": op_id}
        phases: Dict[str, float] = {}
        _LOG.info("recovering durability directory %s", self.directory, extra=extra)
        started = time.perf_counter()
        manifest = read_manifest(self.directory)
        state, last_entry, skipped = self._fold_chain(manifest)
        phases["fold"] = time.perf_counter() - started
        _LOG.info(
            "folded checkpoint chain up to id %d (%d entries skipped) in %.3fs",
            last_entry["id"],
            len(skipped),
            phases["fold"],
            extra=extra,
        )
        config = RuntimeConfig.from_dict(state["config"])
        if backend is not None:
            config = config.with_backend(backend, worker_addresses=worker_addresses)
        elif worker_addresses is not None:
            config = config.with_backend(config.backend, worker_addresses=worker_addresses)
        # Imported here (not at module top) to avoid a service <-> durability
        # import cycle: the service package imports the manager at class level.
        from ..service import StreamingQueryService

        started = time.perf_counter()
        service = StreamingQueryService.restore(state, config=config.without_wal())
        phases["restore"] = time.perf_counter() - started
        result = RecoveryResult(
            service=service,
            next_index=0,
            checkpoint_id=last_entry["id"],
            skipped_checkpoints=skipped,
            operation_id=op_id,
            phase_seconds=phases,
        )
        started = time.perf_counter()
        creations, tuples_by_idx, last_idx = self._replay(service, last_entry, result)
        phases["replay"] = time.perf_counter() - started
        _LOG.info(
            "replayed WAL tails in %.3fs: %d tuples, %d topology ops",
            phases["replay"],
            sum(result.replayed_tuples.values()),
            sum(result.replayed_ops.values()),
            extra=extra,
        )
        started = time.perf_counter()
        self._reconcile(service, creations, result)
        phases["reconcile"] = time.perf_counter() - started
        if result.dropped_queries:
            _LOG.info(
                "reconciliation dropped %d engine-level entries: %s",
                len(result.dropped_queries),
                result.dropped_queries,
                extra=extra,
            )
        started = time.perf_counter()
        self._heal(service, tuples_by_idx, last_idx, result)
        phases["heal"] = time.perf_counter() - started
        if result.healed_tuples:
            _LOG.info("healed %d tuples on lagging shards", result.healed_tuples, extra=extra)
        max_idx = max([int(state.get("tuples_ingested", 0))] + list(last_idx.values()))
        service._tuples_ingested = max_idx
        result.next_index = max_idx + 1
        _LOG.info(
            "recovery complete in %.3fs; resume ingestion at index %d",
            sum(phases.values()),
            result.next_index,
            extra=extra,
        )
        if resume:
            # Re-arm durability at the directory we actually recovered
            # from — not whatever path the crashed run's config recorded
            # (it may be relative to a different cwd, or the operator may
            # have moved the directory before recovering).
            config = replace(config, wal_dir=str(self.directory))
            service.config = config
            service._durability = DurabilityManager(
                self.directory,
                shards=config.shards,
                fsync=config.wal_fsync,
                segment_bytes=config.wal_segment_bytes,
                interval=config.checkpoint_interval,
                keep_deltas=config.checkpoint_keep_deltas,
                registry=service.metrics_registry,
            )
            service._durability.reset_on_attach = True
        return result

    # ------------------------------------------------------------------ #
    # Step 1: fold the checkpoint chain
    # ------------------------------------------------------------------ #

    def _fold_chain(self, manifest: Dict) -> Tuple[Dict, Dict, List[Tuple[int, str]]]:
        """Load base + deltas into one service state; tolerate a bad tail."""
        chain = manifest.get("checkpoints", [])
        if not chain or chain[0].get("kind") != "base":
            raise CheckpointError(
                f"durability manifest in {self.directory} lists no base checkpoint; "
                f"the directory is unrecoverable"
            )
        state = self._load_entry(chain[0])
        last_entry = chain[0]
        skipped: List[Tuple[int, str]] = []
        for entry in chain[1:]:
            try:
                delta = self._load_entry(entry)
                state = apply_service_delta(state, delta)
            except (OSError, CheckpointError) as exc:
                # A torn chain tail: everything this delta (and its
                # successors) covered is still in the WAL, so stop folding
                # and let replay start from the last good horizon.
                skipped.append((entry.get("id", -1), str(exc)))
                rest = chain[chain.index(entry) + 1 :]
                skipped.extend((later.get("id", -1), "follows a skipped delta") for later in rest)
                break
            last_entry = entry
        return state, last_entry, skipped

    def _load_entry(self, entry: Dict) -> Dict:
        """Read one chain file and verify its recorded digest."""
        path = self.directory / entry["file"]
        payload = decode_state(path.read_bytes(), what=f"checkpoint file {path}")
        digest = entry.get("digest")
        if digest is not None and state_digest(payload) != digest:
            raise CheckpointError(
                f"checkpoint file {path} does not match its manifest digest "
                f"(expected {digest}, got {state_digest(payload)})"
            )
        return payload

    # ------------------------------------------------------------------ #
    # Step 3: shard-parallel WAL replay
    # ------------------------------------------------------------------ #

    def _replay(
        self, service, last_entry: Dict, result: RecoveryResult
    ) -> Tuple[Dict, Dict[int, Tuple], Dict[int, int]]:
        """Replay each shard's log tail into its (stopped) worker engine.

        Returns the creation-op map for reconciliation, every replayed
        tuple keyed by global ingest index (for healing), and each
        shard's last logged index.
        """
        horizons = {int(shard): int(lsn) for shard, lsn in last_entry.get("wal", {}).items()}
        creations: Dict[Tuple[int, str], int] = {}
        tuples_by_idx: Dict[int, Tuple] = {}
        last_idx: Dict[int, int] = {}
        batch_size = service.config.batch_size
        for shard, worker in enumerate(service.workers):
            log_dir = wal_mod.shard_log_dir(self.directory / "wal", shard)
            pending: List[StreamingGraphTuple] = []
            replayed = ops = 0
            shard_last = 0

            def flush() -> None:
                if pending:
                    worker.replay_batch(pending)
                    pending.clear()

            for record in wal_mod.read_wal(log_dir, start_lsn=horizons.get(shard, 0)):
                shard_last = max(shard_last, record.idx)
                if record.type == wal_mod.TUPLE:
                    tuples_by_idx.setdefault(record.idx, tuple(record.data))
                    pending.append(protocol.decode_tuple(record.data))
                    replayed += 1
                    if len(pending) >= batch_size:
                        flush()
                    continue
                # Topology records are barriers: the engine must hold the
                # preceding tuples before the op applies (execution order).
                flush()
                ops += 1
                if record.type == wal_mod.REGISTER:
                    name, expression, semantics, max_nodes, partition = record.data
                    worker.register_query(
                        name, expression, semantics, max_nodes, tuple(partition) if partition else None
                    )
                    creations[(shard, name)] = record.op
                elif record.type == wal_mod.RESTORE:
                    name, semantics, state = record.data
                    worker.restore_query(name, canonical_bytes(state), semantics)
                    creations[(shard, name)] = record.op
                else:  # DEREGISTER
                    worker.deregister_query(record.data)
                    creations.pop((shard, record.data), None)
            flush()
            result.replayed_tuples[shard] = replayed
            result.replayed_ops[shard] = ops
            last_idx[shard] = shard_last
        return creations, tuples_by_idx, last_idx

    # ------------------------------------------------------------------ #
    # Step 4: rebuild service bookkeeping from the engines
    # ------------------------------------------------------------------ #

    def _reconcile(self, service, creations: Dict, result: RecoveryResult) -> None:
        """Make the service-level maps agree with the replayed engines."""
        placements: Dict[str, List[Tuple[int, object, int]]] = {}
        for shard, worker in enumerate(service.workers):
            for registered in worker.engine.queries():
                placements.setdefault(registered.name, []).append(
                    (shard, registered, creations.get((shard, registered.name), 0))
                )

        def drop(name: str, shard: int) -> None:
            service.workers[shard].deregister_query(name)
            result.dropped_queries.append(f"{name}@shard{shard}")

        # Crashed mid-move: one routed name on several shards.  The newest
        # adoption (highest logged topology op) is the move's destination.
        for name, copies in list(placements.items()):
            if len(copies) > 1:
                copies.sort(key=lambda item: item[2])
                for shard, _, _ in copies[:-1]:
                    drop(name, shard)
                placements[name] = [copies[-1]]

        # Crashed mid-split / mid-partitioned-register: a partition group
        # is authoritative only when complete and its origin query is gone.
        groups: Dict[str, List[str]] = {}
        for name in placements:
            base, sep, _ = name.partition("::")
            if sep:
                groups.setdefault(base, []).append(name)
        for base, members in groups.items():
            counts = set()
            indices = set()
            for member in members:
                partition = getattr(placements[member][0][1].evaluator, "partition", None)
                if partition is not None:
                    counts.add(partition.count)
                    indices.add(partition.index)
            complete = len(counts) == 1 and indices == set(range(next(iter(counts), 0)))
            if base in placements or not complete:
                for member in members:
                    shard, _, _ = placements.pop(member)[0]
                    drop(member, shard)

        service.router = StreamRouter(service.config.shards, service.config.sharding)
        service._semantics = {}
        service._partitions = {}
        service._member_base = {}
        for name in sorted(placements):
            shard, registered, _ = placements[name][0]
            service.router.assign_to(name, registered.analysis, shard)
            base, sep, _ = name.partition("::")
            if not sep:
                service._semantics[name] = registered.semantics
                continue
            partition = registered.evaluator.partition
            members = service._partitions.setdefault(base, [None] * partition.count)
            members[partition.index] = name
            service._member_base[name] = base
            service._semantics[base] = "arbitrary"

    # ------------------------------------------------------------------ #
    # Step 5: heal shards whose log tore earlier than the others'
    # ------------------------------------------------------------------ #

    def _heal(
        self,
        service,
        tuples_by_idx: Dict[int, Tuple],
        last_idx: Dict[int, int],
        result: RecoveryResult,
    ) -> None:
        """Re-deliver tuples a torn shard lost but sibling logs kept."""
        if not tuples_by_idx:
            return
        global_last = max(tuples_by_idx)
        lagging = [shard for shard, last in last_idx.items() if last < global_last]
        if not lagging:
            return
        ordered = sorted(tuples_by_idx.items())
        for shard in lagging:
            worker = service.workers[shard]
            pending: List[StreamingGraphTuple] = []
            for idx, wire in ordered:
                if idx <= last_idx[shard]:
                    continue
                tup = protocol.decode_tuple(wire)
                if shard in service.router.route(tup):
                    pending.append(tup)
            if pending:
                worker.replay_batch(pending)
                result.healed_tuples += len(pending)
