"""The coordinator-side durability manager: logs, checkpoints, manifest.

:class:`DurabilityManager` is the piece of the durability subsystem that
rides *inside* a running :class:`~repro.runtime.service.StreamingQueryService`.
The service calls into it at four points:

* ``attach`` at :meth:`~repro.runtime.service.StreamingQueryService.start`
  — initialize the directory, write the base checkpoint covering every
  query registered so far, open one :class:`~repro.runtime.durability.wal.WalWriter`
  per shard;
* ``log_*`` at every routed tuple and every engine-level topology change
  (register / restore / deregister), *before* the corresponding worker
  call for tuples (write-ahead) and right after success for topology ops
  (so the log never claims an op that did not happen);
* ``maybe_checkpoint`` after each ingested tuple — the periodic
  incremental-checkpoint scheduler (`checkpoint_interval` tuples per
  delta, deltas promoted to a fresh base every `checkpoint_keep_deltas`
  so the chain and the WAL stay bounded);
* ``checkpoint(reason="stop")`` + ``close`` at shutdown — the final
  coordinated checkpoint that makes a *graceful* stop recoverable without
  any WAL replay.

Directory layout::

    <wal_dir>/
      MANIFEST.json                  # chain index, atomically replaced
      checkpoints/base-0000000001.json
      checkpoints/delta-0000000002.json
      ...
      wal/shard-0/seg-0000000001.wal
      wal/shard-1/...

The manifest lists the retained checkpoint chain (one base plus its
deltas), each entry carrying the per-shard WAL horizons (the LSN each
shard's log had reached at the coordinated cut) and a CRC digest of the
checkpoint file.  Every file is written to a temporary name, fsynced and
renamed, and the manifest is replaced last — so a crash at any point
leaves the previous chain fully intact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ...core.checkpoint import canonical_bytes, decode_state, state_digest
from ...errors import CheckpointError, RuntimeStateError
from .. import protocol
from ..observability.logs import get_logger
from . import wal as wal_mod
from .incremental import service_delta

__all__ = ["DurabilityManager", "read_manifest", "MANIFEST_NAME"]

_LOG = get_logger("runtime.durability")

#: File name of the chain index inside a durability directory.
MANIFEST_NAME = "MANIFEST.json"

#: Layout version of the manifest this build writes.
_MANIFEST_FORMAT = 1


def read_manifest(directory: Path) -> Dict:
    """Load and validate a durability directory's manifest.

    Raises:
        CheckpointError: there is no manifest (not a durability
            directory), it is unreadable, or its layout version is
            unknown.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(
            f"{directory} is not a durability directory: no {MANIFEST_NAME} found"
        ) from None
    manifest = decode_state(blob, what=f"durability manifest {path}")
    if not isinstance(manifest, dict) or manifest.get("format") != _MANIFEST_FORMAT:
        raise CheckpointError(
            f"unsupported durability manifest format "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r} in {path} "
            f"(this build reads format {_MANIFEST_FORMAT})"
        )
    return manifest


def _fsync_file(path: Path) -> None:
    """fsync one file by path (used after writing temporaries)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """fsync a directory so renames inside it are durable (best effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not supported on this platform
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a temporary file + fsync + rename."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(blob)
    _fsync_file(tmp)
    tmp.replace(path)
    _fsync_dir(path.parent)


class DurabilityManager:
    """Per-service durability: write-ahead logs plus a checkpoint chain.

    Constructed by the service when its config names a ``wal_dir``; inert
    (every ``log_*`` call is a no-op) until :meth:`attach` opens the
    directory, which the service does as part of ``start()``.

    Args:
        directory: the durability directory.
        shards: shard count of the owning service (one WAL per shard).
        fsync: WAL fsync policy, one of
            :data:`~repro.runtime.config.FSYNC_POLICIES`.
        segment_bytes: WAL segment rotation threshold.
        interval: take a delta checkpoint every this many logged tuples
            (0 = only the final checkpoint at stop).
        keep_deltas: promote the next checkpoint to a full base once this
            many deltas follow the current base.
        registry: optional
            :class:`~repro.runtime.observability.MetricsRegistry`; when
            given, the manager publishes WAL append/fsync latencies,
            appended bytes, segment rotations and checkpoint
            size/duration/delta-ratio metrics into it.
    """

    def __init__(
        self,
        directory: Path,
        shards: int,
        fsync: str = "batch",
        segment_bytes: int = 4_000_000,
        interval: int = 0,
        keep_deltas: int = 4,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.shards = shards
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.interval = interval
        self.keep_deltas = keep_deltas
        self._instruments = self._build_instruments(registry)
        self._last_base_bytes = 0
        self._writers: Optional[List[wal_mod.WalWriter]] = None
        self._op = 0
        self._tuples_since_checkpoint = 0
        self._chain: List[Dict] = []
        self._next_id = 1
        self._deltas_since_base = 0
        self._last_states: Optional[Dict] = None  # the chain's folded service state
        #: Set by recovery: the next attach may wipe the directory it just
        #: recovered from (a fresh base supersedes the old chain).
        self.reset_on_attach = False

    def _build_instruments(self, registry) -> Optional[Dict[str, object]]:
        """Create the durability metric families in ``registry`` (or None)."""
        if registry is None:
            return None
        return {
            "append_seconds": registry.histogram(
                "repro_wal_append_seconds", "WAL record write+flush latency in seconds", ("shard",)
            ),
            "fsync_seconds": registry.histogram(
                "repro_wal_fsync_seconds", "WAL fsync latency in seconds", ("shard",)
            ),
            "appended_bytes": registry.counter(
                "repro_wal_appended_bytes_total", "Bytes appended to the WAL (headers included)", ("shard",)
            ),
            "rotations": registry.counter(
                "repro_wal_segment_rotations_total", "WAL segment rotations", ("shard",)
            ),
            "checkpoint_seconds": registry.histogram(
                "repro_checkpoint_seconds", "Coordinated checkpoint duration in seconds"
            ),
            "checkpoint_bytes": registry.gauge(
                "repro_checkpoint_bytes", "Size of the most recent checkpoint file", ("kind",)
            ),
            "checkpoints": registry.counter(
                "repro_checkpoints_total", "Coordinated checkpoints taken", ("kind",)
            ),
            "delta_ratio": registry.gauge(
                "repro_checkpoint_delta_ratio",
                "Most recent delta checkpoint's size relative to the chain's base",
            ),
        }

    def _shard_instruments(self, shard: int) -> Optional[wal_mod.WalInstruments]:
        """Labelled WAL instruments for one shard's writer (or None)."""
        if self._instruments is None:
            return None
        return wal_mod.WalInstruments(
            append_seconds=self._instruments["append_seconds"].labels(shard),
            fsync_seconds=self._instruments["fsync_seconds"].labels(shard),
            appended_bytes=self._instruments["appended_bytes"].labels(shard),
            rotations=self._instruments["rotations"].labels(shard),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def attached(self) -> bool:
        """Whether the directory is open and logging is live."""
        return self._writers is not None

    @property
    def wal_root(self) -> Path:
        """Root of the per-shard WAL directories."""
        return self.directory / "wal"

    @property
    def checkpoint_dir(self) -> Path:
        """Directory holding the checkpoint chain's files."""
        return self.directory / "checkpoints"

    def attach(self, service, reset: bool = False) -> None:
        """Open the directory and write the base checkpoint of ``service``.

        Args:
            service: the owning (not yet running) service; its current
                state becomes the chain's base.
            reset: wipe an existing log first.  Recovery passes ``True``
                when re-arming durability over the directory it just
                recovered from; a plain ``start()`` never does, so
                pointing a fresh service at a populated directory fails
                instead of silently destroying the evidence.

        Raises:
            RuntimeStateError: already attached, or the directory holds a
                previous service's log and ``reset`` is false.
        """
        if self.attached:
            raise RuntimeStateError(f"durability directory {self.directory} is already attached")
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            if not reset:
                raise RuntimeStateError(
                    f"durability directory {self.directory} already holds a log; "
                    f"recover it with `repro recover --wal {self.directory}` (or the "
                    f"RecoveryManager API), or point --wal at a fresh directory"
                )
            self._wipe()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._writers = [
            wal_mod.WalWriter(
                wal_mod.shard_log_dir(self.wal_root, shard),
                fsync=self.fsync,
                segment_bytes=self.segment_bytes,
                instruments=self._shard_instruments(shard),
            )
            for shard in range(self.shards)
        ]
        self._chain = []
        self._next_id = 1
        self._deltas_since_base = 0
        self._last_states = None
        self._tuples_since_checkpoint = 0
        self.checkpoint(service, reason="attach")

    def _wipe(self) -> None:
        """Remove every file a previous attachment left behind."""
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists():
            manifest.unlink()
        if self.checkpoint_dir.is_dir():
            for path in self.checkpoint_dir.glob("*.json"):
                path.unlink()
        if self.wal_root.is_dir():
            for shard_dir in self.wal_root.iterdir():
                if shard_dir.is_dir():
                    for segment in shard_dir.glob("*.wal"):
                        segment.unlink()

    def close(self, resettable: bool = False) -> None:
        """Close every WAL writer (final sync per policy).

        Args:
            resettable: the shutdown was clean (final checkpoint taken),
                so when the *same* service object starts again the next
                :meth:`attach` may wipe this manager's own completed log
                and write a fresh base.  An error-path close must pass
                ``False``: the directory is then crash evidence, and a
                retried ``start()`` is refused instead of wiping what
                recovery needs.  A different manager instance (a new
                process finding a populated directory) is refused either
                way.
        """
        if self._writers is not None:
            for writer in self._writers:
                writer.close()
            self._writers = None
            self.reset_on_attach = resettable

    # ------------------------------------------------------------------ #
    # Logging (called by the service on its coordinator thread)
    # ------------------------------------------------------------------ #

    def log_tuple(self, idx: int, tup, shards) -> Optional[Dict[int, int]]:
        """Write-ahead-log one routed tuple to every shard it routes to.

        Returns the per-shard LSN each append landed at (``None`` when
        durability is detached) — the replication layer fans the same
        record out to hot standbys and adopts these LSNs, keeping the
        shipped stream numerically identical to the on-disk WAL.
        """
        if self._writers is None:
            return None
        wire = protocol.encode_tuple(tup)
        lsns = {
            shard: self._writers[shard].append(wal_mod.TUPLE, idx, 0, wire) for shard in shards
        }
        self._tuples_since_checkpoint += 1
        return lsns

    def log_register(
        self,
        shard: int,
        idx: int,
        name: str,
        expression: str,
        semantics: str,
        max_nodes_per_tree: Optional[int],
        partition: Optional[Tuple[int, int]],
    ) -> Optional[int]:
        """Log a successful engine-level registration on ``shard``.

        Returns the record's WAL LSN, or ``None`` when detached.
        """
        if self._writers is None:
            return None
        self._op += 1
        return self._writers[shard].append(
            wal_mod.REGISTER,
            idx,
            self._op,
            [name, expression, semantics, max_nodes_per_tree, list(partition) if partition else None],
        )

    def log_restore(
        self, shard: int, idx: int, name: str, semantics: str, state: Dict
    ) -> Optional[int]:
        """Log a successful engine-level state adoption on ``shard``.

        Returns the record's WAL LSN, or ``None`` when detached.
        """
        if self._writers is None:
            return None
        self._op += 1
        return self._writers[shard].append(wal_mod.RESTORE, idx, self._op, [name, semantics, state])

    def log_deregister(self, shard: int, idx: int, name: str) -> Optional[int]:
        """Log a successful engine-level removal on ``shard``.

        Returns the record's WAL LSN, or ``None`` when detached.
        """
        if self._writers is None:
            return None
        self._op += 1
        return self._writers[shard].append(wal_mod.DEREGISTER, idx, self._op, name)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def maybe_checkpoint(self, service) -> bool:
        """Take the periodic incremental checkpoint when it is due."""
        if self._writers is None or self.interval <= 0:
            return False
        if self._tuples_since_checkpoint < self.interval:
            return False
        self.checkpoint(service, reason="interval")
        return True

    def checkpoint(self, service, reason: str = "manual") -> Dict:
        """Take one coordinated checkpoint (base or delta) and index it.

        Drains the service (via ``service.checkpoint()``), syncs every
        WAL writer (the ``"batch"`` fsync commit point), writes the
        checkpoint file atomically, and appends the manifest entry whose
        per-shard WAL horizons tell recovery where replay must start.
        Every ``keep_deltas`` deltas the checkpoint is promoted to a
        fresh full base, the older chain files are deleted and WAL
        segments behind the new base are pruned.

        Returns the manifest entry written.
        """
        if self._writers is None:
            raise RuntimeStateError("durability manager is not attached")
        started = time.perf_counter()
        state = service.checkpoint()
        for writer in self._writers:
            writer.sync()
        horizons = {str(shard): writer.lsn for shard, writer in enumerate(self._writers)}
        checkpoint_id = self._next_id
        self._next_id += 1
        make_base = self._last_states is None or self._deltas_since_base >= self.keep_deltas
        if make_base:
            kind, payload = "base", state
        else:
            kind, payload = "delta", service_delta(self._last_states, state)
        filename = f"{kind}-{checkpoint_id:010d}.json"
        blob = canonical_bytes(payload)
        _atomic_write(self.checkpoint_dir / filename, blob)
        entry = {
            "id": checkpoint_id,
            "kind": kind,
            "file": f"checkpoints/{filename}",
            "digest": state_digest(payload),
            "wal": horizons,
            "tuples_ingested": state.get("tuples_ingested", 0),
            "op": self._op,
            "reason": reason,
        }
        if make_base:
            stale = list(self._chain)
            self._chain = [entry]
            self._deltas_since_base = 0
            self._write_manifest(state)
            for old in stale:
                old_path = self.directory / old["file"]
                if old_path.exists():
                    old_path.unlink()
            for shard, writer in enumerate(self._writers):
                wal_mod.prune_segments(
                    wal_mod.shard_log_dir(self.wal_root, shard), int(horizons[str(shard)])
                )
        else:
            self._chain.append(entry)
            self._deltas_since_base += 1
            self._write_manifest(state)
        self._last_states = state
        self._tuples_since_checkpoint = 0
        elapsed = time.perf_counter() - started
        if make_base:
            self._last_base_bytes = len(blob)
        if self._instruments is not None:
            self._instruments["checkpoint_seconds"].observe(elapsed)
            self._instruments["checkpoint_bytes"].labels(kind).set(float(len(blob)))
            self._instruments["checkpoints"].labels(kind).inc()
            if not make_base and self._last_base_bytes > 0:
                self._instruments["delta_ratio"].set(len(blob) / self._last_base_bytes)
        _LOG.info(
            "%s checkpoint %d (%s): %d bytes in %.3fs at %d tuples",
            kind,
            checkpoint_id,
            reason,
            len(blob),
            elapsed,
            entry["tuples_ingested"],
        )
        return entry

    def _write_manifest(self, state: Dict) -> None:
        """Atomically replace the manifest with the current chain index."""
        manifest = {
            "format": _MANIFEST_FORMAT,
            "window": state["window"],
            "config": state["config"],
            "shards": self.shards,
            "checkpoints": self._chain,
        }
        _atomic_write(self.directory / MANIFEST_NAME, json.dumps(manifest, indent=2).encode("utf-8"))
